//! Rendering recorder state in the Prometheus text exposition format
//! (version 0.0.4): `# HELP` / `# TYPE` headers, cumulative `le=` histogram
//! buckets with a closing `+Inf`, and escaped label values.

use easeml_obs::{Component, Histogram, InMemoryRecorder, TimeSeriesSnapshot};
use std::fmt::Write as _;

/// Renders the full `/metrics` payload from an in-memory recorder plus an
/// optional time-series snapshot (per-tenant regret/cost/arm-pull series
/// are only available when one is attached).
pub fn render_metrics(recorder: &InMemoryRecorder, series: Option<&TimeSeriesSnapshot>) -> String {
    let mut out = String::new();

    write_header(
        &mut out,
        "easeml_events_total",
        "counter",
        "Total structured events recorded.",
    );
    let _ = writeln!(out, "easeml_events_total {}", recorder.num_events());

    let by_type = recorder.event_counts();
    if !by_type.is_empty() {
        write_header(
            &mut out,
            "easeml_events_by_type_total",
            "counter",
            "Structured events recorded, by variant.",
        );
        for (name, count) in &by_type {
            let _ = writeln!(
                out,
                "easeml_events_by_type_total{{type=\"{}\"}} {count}",
                escape_label(name)
            );
        }
    }

    let counters = recorder.counters();
    if !counters.is_empty() {
        write_header(
            &mut out,
            "easeml_counter_total",
            "counter",
            "Named monotonic counters.",
        );
        for (name, value) in &counters {
            let _ = writeln!(
                out,
                "easeml_counter_total{{name=\"{}\"}} {value}",
                escape_label(name)
            );
        }
    }

    let gauges = recorder.gauges();
    if !gauges.is_empty() {
        write_header(&mut out, "easeml_gauge", "gauge", "Named gauges.");
        for (name, value) in &gauges {
            let _ = writeln!(
                out,
                "easeml_gauge{{name=\"{}\"}} {}",
                escape_label(name),
                fmt_f64(*value)
            );
        }
    }

    render_latency_histograms(&mut out, recorder);

    if let Some(snap) = series {
        render_series(&mut out, snap);
    }

    out
}

fn render_latency_histograms(out: &mut String, recorder: &InMemoryRecorder) {
    let populated: Vec<(Component, Histogram)> = Component::ALL
        .iter()
        .map(|&c| (c, recorder.timing(c)))
        .filter(|(_, h)| h.count() > 0)
        .collect();
    if populated.is_empty() {
        return;
    }
    write_header(
        out,
        "easeml_component_latency_ns",
        "histogram",
        "Per-component wall-clock latency in nanoseconds.",
    );
    for (component, hist) in &populated {
        let label = escape_label(component.name());
        let mut cumulative = 0u64;
        for (i, &count) in hist.buckets().iter().enumerate() {
            cumulative += count;
            // Trim the long tail of empty buckets past the observed max,
            // but keep every populated edge so quantiles reconstruct.
            if cumulative == 0 && count == 0 {
                continue;
            }
            let Some(upper) = Histogram::bucket_upper_ns(i) else {
                break; // the overflow bucket is covered by +Inf below
            };
            let _ = writeln!(
                out,
                "easeml_component_latency_ns_bucket{{component=\"{label}\",le=\"{upper}\"}} {cumulative}",
            );
            if cumulative == hist.count() {
                break;
            }
        }
        let _ = writeln!(
            out,
            "easeml_component_latency_ns_bucket{{component=\"{label}\",le=\"+Inf\"}} {}",
            hist.count()
        );
        let _ = writeln!(
            out,
            "easeml_component_latency_ns_sum{{component=\"{label}\"}} {}",
            hist.sum_ns()
        );
        let _ = writeln!(
            out,
            "easeml_component_latency_ns_count{{component=\"{label}\"}} {}",
            hist.count()
        );
    }
}

fn render_series(out: &mut String, snap: &TimeSeriesSnapshot) {
    write_header(
        out,
        "easeml_sim_clock",
        "gauge",
        "Simulated clock: cumulative cost across all completed runs.",
    );
    let _ = writeln!(out, "easeml_sim_clock {}", fmt_f64(snap.clock));

    write_header(
        out,
        "easeml_rounds_total",
        "counter",
        "Completed training runs.",
    );
    let _ = writeln!(out, "easeml_rounds_total {}", snap.rounds);

    write_header(
        out,
        "easeml_failed_rounds_total",
        "counter",
        "Failed (censored) training runs: charged but unobserved.",
    );
    let _ = writeln!(out, "easeml_failed_rounds_total {}", snap.failed_rounds);

    write_header(
        out,
        "easeml_scheduler_decisions_total",
        "counter",
        "Scheduler user-picking decisions.",
    );
    let _ = writeln!(out, "easeml_scheduler_decisions_total {}", snap.decisions);

    write_header(
        out,
        "easeml_fallback_active",
        "gauge",
        "1 once the hybrid scheduler has switched to round robin.",
    );
    let _ = writeln!(
        out,
        "easeml_fallback_active {}",
        u8::from(snap.fallback_active)
    );

    write_header(
        out,
        "easeml_fallback_rate",
        "gauge",
        "Fraction of scheduler decisions taken in fallback mode.",
    );
    let _ = writeln!(
        out,
        "easeml_fallback_rate {}",
        fmt_f64(snap.fallback_rate())
    );

    if snap.users.is_empty() {
        return;
    }

    write_header(
        out,
        "easeml_user_regret",
        "gauge",
        "Per-tenant regret: target quality minus best quality reached.",
    );
    for (user, series) in &snap.users {
        let _ = writeln!(
            out,
            "easeml_user_regret{{user=\"{user}\"}} {}",
            fmt_f64(series.regret())
        );
    }

    write_header(
        out,
        "easeml_user_best_quality",
        "gauge",
        "Per-tenant best model quality reached so far.",
    );
    for (user, series) in &snap.users {
        let _ = writeln!(
            out,
            "easeml_user_best_quality{{user=\"{user}\"}} {}",
            fmt_f64(series.best_quality)
        );
    }

    write_header(
        out,
        "easeml_user_cost_total",
        "counter",
        "Per-tenant cumulative training cost.",
    );
    for (user, series) in &snap.users {
        let _ = writeln!(
            out,
            "easeml_user_cost_total{{user=\"{user}\"}} {}",
            fmt_f64(series.cumulative_cost)
        );
    }

    write_header(
        out,
        "easeml_user_served_total",
        "counter",
        "Per-tenant completed training runs.",
    );
    for (user, series) in &snap.users {
        let _ = writeln!(
            out,
            "easeml_user_served_total{{user=\"{user}\"}} {}",
            series.served
        );
    }

    write_header(
        out,
        "easeml_user_failed_runs_total",
        "counter",
        "Per-tenant failed (censored) training runs.",
    );
    for (user, series) in &snap.users {
        let _ = writeln!(
            out,
            "easeml_user_failed_runs_total{{user=\"{user}\"}} {}",
            series.failed
        );
    }

    write_header(
        out,
        "easeml_user_arm_pulls_total",
        "counter",
        "Per-tenant training runs per model (arm).",
    );
    for (user, series) in &snap.users {
        for (arm, pulls) in &series.arm_pulls {
            let _ = writeln!(
                out,
                "easeml_user_arm_pulls_total{{user=\"{user}\",arm=\"{arm}\"}} {pulls}"
            );
        }
    }
}

fn write_header(out: &mut String, name: &str, kind: &str, help: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

/// Escapes a Prometheus label value: backslash, double quote, newline.
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Prometheus float formatting: finite values via Rust's shortest form,
/// non-finite as `NaN` / `+Inf` / `-Inf`.
fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easeml_obs::{Event, Recorder, TimeSeriesRecorder};

    fn sample_recorder() -> InMemoryRecorder {
        let r = InMemoryRecorder::new();
        r.record(Event::TrainingCompleted {
            user: 0,
            model: 2,
            cost: 1.5,
            quality: 0.7,
            parent: 0,
        });
        r.add_counter("rounds", 3);
        r.set_gauge("budget-left", 0.25);
        r.record_timing(Component::SchedulerPick, 900);
        r.record_timing(Component::SchedulerPick, 5_000);
        r
    }

    #[test]
    fn metrics_cover_events_counters_gauges() {
        let text = render_metrics(&sample_recorder(), None);
        assert!(text.contains("easeml_events_total 1"), "{text}");
        assert!(
            text.contains("easeml_events_by_type_total{type=\"TrainingCompleted\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("easeml_counter_total{name=\"rounds\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("easeml_gauge{name=\"budget-left\"} 0.25"),
            "{text}"
        );
        // Every exposed metric family carries HELP/TYPE headers.
        for family in [
            "easeml_events_total",
            "easeml_counter_total",
            "easeml_gauge",
            "easeml_component_latency_ns",
        ] {
            assert!(text.contains(&format!("# HELP {family} ")), "{family}");
            assert!(text.contains(&format!("# TYPE {family} ")), "{family}");
        }
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_close_with_inf() {
        let text = render_metrics(&sample_recorder(), None);
        // 900ns lands in [512,1024), 5000ns in [4096,8192): the le="1024"
        // bucket holds 1 cumulative sample, le="8192" both.
        assert!(
            text.contains(
                "easeml_component_latency_ns_bucket{component=\"sched/pick\",le=\"1024\"} 1"
            ),
            "{text}"
        );
        assert!(
            text.contains(
                "easeml_component_latency_ns_bucket{component=\"sched/pick\",le=\"8192\"} 2"
            ),
            "{text}"
        );
        assert!(
            text.contains(
                "easeml_component_latency_ns_bucket{component=\"sched/pick\",le=\"+Inf\"} 2"
            ),
            "{text}"
        );
        assert!(
            text.contains("easeml_component_latency_ns_sum{component=\"sched/pick\"} 5900"),
            "{text}"
        );
        assert!(
            text.contains("easeml_component_latency_ns_count{component=\"sched/pick\"} 2"),
            "{text}"
        );
        // Untimed components are omitted entirely.
        assert!(!text.contains("cholesky/factor"), "{text}");
    }

    #[test]
    fn series_metrics_expose_per_user_regret() {
        let ts = TimeSeriesRecorder::new();
        ts.set_target(0, 0.9);
        ts.fold(&Event::TrainingCompleted {
            user: 0,
            model: 2,
            cost: 1.0,
            quality: 0.4, // 0.9 - 0.4 is exactly representable (0.5)
            parent: 0,
        });
        ts.fold(&Event::TrainingCompleted {
            user: 1,
            model: 0,
            cost: 2.0,
            quality: 0.75,
            parent: 0,
        });
        ts.fold(&Event::TrainingFailed {
            user: 1,
            model: 0,
            cost: 0.5,
            kind: "timeout".into(),
            attempt: 1,
            parent: 0,
        });
        let text = render_metrics(&InMemoryRecorder::new(), Some(&ts.snapshot()));
        assert!(
            text.contains("easeml_user_regret{user=\"0\"} 0.5"),
            "{text}"
        );
        assert!(
            text.contains("easeml_user_regret{user=\"1\"} 0.25"),
            "{text}"
        );
        assert!(
            text.contains("easeml_user_cost_total{user=\"1\"} 2.5"),
            "{text}"
        );
        assert!(text.contains("easeml_failed_rounds_total 1"), "{text}");
        assert!(
            text.contains("easeml_user_failed_runs_total{user=\"1\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("easeml_user_arm_pulls_total{user=\"0\",arm=\"2\"} 1"),
            "{text}"
        );
        assert!(text.contains("easeml_sim_clock 3.5"), "{text}");
        assert!(text.contains("easeml_fallback_active 0"), "{text}");
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(escape_label("plain/name"), "plain/name");
        assert_eq!(escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn float_formatting_is_prometheus_compatible() {
        assert_eq!(fmt_f64(0.25), "0.25");
        assert_eq!(fmt_f64(3.0), "3");
        assert_eq!(fmt_f64(f64::NAN), "NaN");
        assert_eq!(fmt_f64(f64::INFINITY), "+Inf");
        assert_eq!(fmt_f64(f64::NEG_INFINITY), "-Inf");
    }
}
