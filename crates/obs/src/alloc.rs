//! Opt-in allocation accounting: a counting wrapper over the system
//! allocator plus the thread-local counters the profiler snapshots at span
//! boundaries.
//!
//! Nothing in this module is active by default. A binary that wants
//! allocation attribution installs the wrapper as its global allocator:
//!
//! ```no_run
//! use easeml_obs::CountingAlloc;
//!
//! #[global_allocator]
//! static ALLOC: CountingAlloc = CountingAlloc::system();
//! ```
//!
//! Every allocation and deallocation then bumps plain thread-local `Cell`
//! counters — no atomics, no locks, a handful of instructions per call —
//! and [`thread_alloc_stats`] reads them back. The profiler
//! (`crate::profile`) snapshots the counters when a span opens and closes,
//! so each call-tree node can report the allocations attributed to its
//! self-time. Binaries that do *not* install the wrapper (the
//! `obs_overhead` noop-path benchmark, notably) pay nothing and simply
//! read zeros.
//!
//! Caveats, by construction:
//!
//! * counters are per-thread: memory allocated on one thread and freed on
//!   another shows as live on the allocating thread forever (`live_bytes`
//!   saturates at zero on the freeing thread);
//! * `peak_bytes` is a high-water mark of this thread's live bytes; the
//!   profiler rewinds it around spans so each node sees the peak *growth*
//!   during its own calls, children included;
//! * the profiler pauses counting while it updates its own tree, so its
//!   bookkeeping allocations are not attributed to the profiled code.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};

/// Set on the first counted allocation; lets callers distinguish "zero
/// allocations" from "no counting allocator installed".
static COUNTING: AtomicBool = AtomicBool::new(false);

struct Counters {
    allocs: Cell<u64>,
    frees: Cell<u64>,
    bytes: Cell<u64>,
    live: Cell<u64>,
    peak: Cell<u64>,
    paused: Cell<bool>,
}

thread_local! {
    static TL: Counters = const {
        Counters {
            allocs: Cell::new(0),
            frees: Cell::new(0),
            bytes: Cell::new(0),
            live: Cell::new(0),
            peak: Cell::new(0),
            paused: Cell::new(false),
        }
    };
}

#[inline]
fn note_alloc(size: usize) {
    if !COUNTING.load(Ordering::Relaxed) {
        COUNTING.store(true, Ordering::Relaxed);
    }
    // `try_with` guards the TLS-teardown window: allocations made while
    // the thread's locals are being destroyed are simply not counted.
    let _ = TL.try_with(|c| {
        if c.paused.get() {
            return;
        }
        c.allocs.set(c.allocs.get() + 1);
        c.bytes.set(c.bytes.get() + size as u64);
        let live = c.live.get() + size as u64;
        c.live.set(live);
        if live > c.peak.get() {
            c.peak.set(live);
        }
    });
}

#[inline]
fn note_dealloc(size: usize) {
    let _ = TL.try_with(|c| {
        if c.paused.get() {
            return;
        }
        c.frees.set(c.frees.get() + 1);
        // Cross-thread frees (allocated elsewhere) saturate rather than
        // underflow this thread's live-byte estimate.
        c.live.set(c.live.get().saturating_sub(size as u64));
    });
}

/// A counting `#[global_allocator]` wrapper: forwards every call to the
/// wrapped allocator (the system allocator via [`CountingAlloc::system`])
/// and maintains the thread-local counters behind
/// [`thread_alloc_stats`].
///
/// Opt-in by design: only binaries that install it pay the (small,
/// lock-free) per-allocation cost, and only those binaries get non-zero
/// allocation columns in profiles.
pub struct CountingAlloc<A = System> {
    inner: A,
}

impl CountingAlloc<System> {
    /// The counting wrapper over the system allocator — the configuration
    /// every profiling binary uses.
    pub const fn system() -> Self {
        CountingAlloc { inner: System }
    }
}

impl<A> CountingAlloc<A> {
    /// Wraps an arbitrary inner allocator.
    pub const fn new(inner: A) -> Self {
        CountingAlloc { inner }
    }
}

// SAFETY: every method forwards verbatim to the wrapped allocator; the
// counter updates never allocate (plain `Cell` arithmetic) and never touch
// the pointers being managed, so the wrapper upholds exactly the contract
// of its inner allocator.
unsafe impl<A: GlobalAlloc> GlobalAlloc for CountingAlloc<A> {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = self.inner.alloc(layout);
        if !ptr.is_null() {
            note_alloc(layout.size());
        }
        ptr
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = self.inner.alloc_zeroed(layout);
        if !ptr.is_null() {
            note_alloc(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        self.inner.dealloc(ptr, layout);
        note_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let out = self.inner.realloc(ptr, layout, new_size);
        if !out.is_null() {
            note_dealloc(layout.size());
            note_alloc(new_size);
        }
        out
    }
}

/// A snapshot of this thread's allocation counters. All zeros unless the
/// binary installed [`CountingAlloc`] as its global allocator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Allocations made on this thread (including the alloc half of
    /// reallocs).
    pub allocs: u64,
    /// Deallocations made on this thread.
    pub frees: u64,
    /// Total bytes ever allocated on this thread (monotone).
    pub bytes: u64,
    /// Bytes currently live by this thread's accounting.
    pub live_bytes: u64,
    /// High-water mark of `live_bytes` since the last profiler rewind.
    pub peak_bytes: u64,
}

/// Reads this thread's allocation counters.
pub fn thread_alloc_stats() -> AllocStats {
    TL.try_with(|c| AllocStats {
        allocs: c.allocs.get(),
        frees: c.frees.get(),
        bytes: c.bytes.get(),
        live_bytes: c.live.get(),
        peak_bytes: c.peak.get(),
    })
    .unwrap_or_default()
}

/// Whether a [`CountingAlloc`] has counted at least one allocation in this
/// process — i.e. whether allocation columns in profiles are meaningful.
pub fn counting_allocator_active() -> bool {
    COUNTING.load(Ordering::Relaxed)
}

/// Rewinds this thread's peak to the current live bytes and returns the
/// previous peak — called by the profiler when a span opens, so the span
/// measures its own peak growth.
pub(crate) fn reset_peak() -> u64 {
    TL.try_with(|c| {
        let prev = c.peak.get();
        c.peak.set(c.live.get());
        prev
    })
    .unwrap_or(0)
}

/// This thread's current peak (since the last [`reset_peak`]).
pub(crate) fn current_peak() -> u64 {
    TL.try_with(|c| c.peak.get()).unwrap_or(0)
}

/// Restores a peak saved by [`reset_peak`]: the thread's peak becomes the
/// max of the saved value and whatever the span reached.
pub(crate) fn restore_peak(saved: u64) {
    let _ = TL.try_with(|c| {
        if saved > c.peak.get() {
            c.peak.set(saved);
        }
    });
}

/// Runs `f` with counting paused on this thread — the profiler wraps its
/// own tree updates in this so bookkeeping allocations are not attributed
/// to profiled code.
pub(crate) fn with_counting_paused<T>(f: impl FnOnce() -> T) -> T {
    let was = TL.try_with(|c| c.paused.replace(true)).unwrap_or(false);
    let out = f();
    let _ = TL.try_with(|c| c.paused.set(was));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // These tests run without the global allocator installed, so they
    // exercise the counter plumbing directly.

    #[test]
    fn counters_accumulate_and_peak_rewinds() {
        note_alloc(100);
        note_alloc(50);
        let s = thread_alloc_stats();
        assert!(s.allocs >= 2 && s.bytes >= 150 && s.live_bytes >= 150);
        assert!(s.peak_bytes >= s.live_bytes);

        note_dealloc(50);
        let after = thread_alloc_stats();
        assert_eq!(after.live_bytes, s.live_bytes - 50);
        // Peak survives the free...
        assert_eq!(after.peak_bytes, s.peak_bytes);
        // ...until rewound, then grows again from the live level.
        let saved = reset_peak();
        assert_eq!(saved, s.peak_bytes);
        assert_eq!(current_peak(), after.live_bytes);
        note_alloc(10);
        assert_eq!(current_peak(), after.live_bytes + 10);
        restore_peak(saved);
        assert_eq!(current_peak(), saved.max(after.live_bytes + 10));
        note_dealloc(10);
        note_dealloc(100);
    }

    #[test]
    fn cross_thread_frees_saturate() {
        std::thread::spawn(|| {
            note_dealloc(1 << 40);
            assert_eq!(thread_alloc_stats().live_bytes, 0);
            assert_eq!(thread_alloc_stats().frees, 1);
        })
        .join()
        .unwrap();
    }

    #[test]
    fn paused_counting_is_invisible() {
        let before = thread_alloc_stats();
        with_counting_paused(|| {
            note_alloc(1234);
            note_dealloc(1234);
        });
        let after = thread_alloc_stats();
        assert_eq!(before.allocs, after.allocs);
        assert_eq!(before.live_bytes, after.live_bytes);
    }
}
