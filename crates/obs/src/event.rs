//! The structured event vocabulary of the instrumentation layer.

use crate::json::{self, Json};
use serde::Serialize;

/// A structured observation emitted by an instrumented component.
///
/// Events capture the *decisions* of the system — who was scheduled, which
/// arm a tenant pulled, when the hybrid scheduler fell back to round robin —
/// rather than raw log lines, so traces can be joined, replayed, and
/// asserted on. Every variant serializes to one self-describing JSON object
/// (`{"VariantName": {fields...}}`) and parses back via [`Event::from_json`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum Event {
    /// The user-picking phase chose a tenant to serve this round.
    SchedulerDecision {
        /// Global scheduling round (0-based).
        round: u64,
        /// Index of the tenant chosen to be served.
        user: usize,
        /// Canonical name of the picking strategy (e.g. `"greedy(max-gap)"`,
        /// `"hybrid"`, `"round-robin"`); matches
        /// `UserPicker::name` / `SchedulerKind::name`.
        rule: String,
        /// Per-tenant scores the decision was based on, indexed by tenant.
        /// Empty for strategies that do not score (FCFS, round robin).
        scores: Vec<f64>,
    },
    /// The model-picking phase chose an arm for the served tenant.
    ArmChosen {
        /// Index of the tenant whose policy ran.
        user: usize,
        /// Index of the chosen arm (model).
        arm: usize,
        /// The winning arm's upper confidence bound.
        ucb: f64,
        /// The βₜ₊₁ exploration coefficient used for the bound.
        beta: f64,
        /// The cost the bound was scaled by (1 when cost-oblivious).
        cost: f64,
    },
    /// The hybrid scheduler permanently switched from greedy to round robin.
    HybridFallback {
        /// Human-readable account of what triggered the switch.
        reason: String,
    },
    /// A training run finished on the cluster.
    TrainingCompleted {
        /// Index of the tenant the run belonged to.
        user: usize,
        /// Index of the trained model.
        model: usize,
        /// Cost charged for the run (GPU-hours in the simulations).
        cost: f64,
        /// Observed quality (accuracy) of the trained model.
        quality: f64,
    },
    /// A tenant's GP posterior absorbed a new observation.
    PosteriorUpdated {
        /// Index of the observed arm.
        arm: usize,
        /// The reward the posterior was updated with.
        reward: f64,
        /// Total observations in the posterior after the update.
        num_obs: usize,
    },
}

impl Event {
    /// The variant name, as it appears as the JSON object key.
    pub fn name(&self) -> &'static str {
        match self {
            Event::SchedulerDecision { .. } => "SchedulerDecision",
            Event::ArmChosen { .. } => "ArmChosen",
            Event::HybridFallback { .. } => "HybridFallback",
            Event::TrainingCompleted { .. } => "TrainingCompleted",
            Event::PosteriorUpdated { .. } => "PosteriorUpdated",
        }
    }

    /// The tenant the event concerns, when it concerns one.
    pub fn user(&self) -> Option<usize> {
        match self {
            Event::SchedulerDecision { user, .. }
            | Event::ArmChosen { user, .. }
            | Event::TrainingCompleted { user, .. } => Some(*user),
            Event::HybridFallback { .. } | Event::PosteriorUpdated { .. } => None,
        }
    }

    /// Serializes the event as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        json::to_string(self)
    }

    /// Parses an event back from the JSON produced by [`Event::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntactic or structural problem:
    /// malformed JSON, an unknown variant, or a missing/mistyped field.
    pub fn from_json(line: &str) -> Result<Event, String> {
        let value = json::parse(line)?;
        let Json::Object(entries) = value else {
            return Err(format!("expected a JSON object, got {value:?}"));
        };
        let [(variant, Json::Object(fields))] = entries.as_slice() else {
            return Err("expected exactly one {variant: {fields}} entry".into());
        };
        match variant.as_str() {
            "SchedulerDecision" => Ok(Event::SchedulerDecision {
                round: get_u64(fields, "round")?,
                user: get_usize(fields, "user")?,
                rule: get_str(fields, "rule")?,
                scores: get_f64_array(fields, "scores")?,
            }),
            "ArmChosen" => Ok(Event::ArmChosen {
                user: get_usize(fields, "user")?,
                arm: get_usize(fields, "arm")?,
                ucb: get_f64(fields, "ucb")?,
                beta: get_f64(fields, "beta")?,
                cost: get_f64(fields, "cost")?,
            }),
            "HybridFallback" => Ok(Event::HybridFallback {
                reason: get_str(fields, "reason")?,
            }),
            "TrainingCompleted" => Ok(Event::TrainingCompleted {
                user: get_usize(fields, "user")?,
                model: get_usize(fields, "model")?,
                cost: get_f64(fields, "cost")?,
                quality: get_f64(fields, "quality")?,
            }),
            "PosteriorUpdated" => Ok(Event::PosteriorUpdated {
                arm: get_usize(fields, "arm")?,
                reward: get_f64(fields, "reward")?,
                num_obs: get_usize(fields, "num_obs")?,
            }),
            other => Err(format!("unknown event variant {other:?}")),
        }
    }
}

fn get<'a>(fields: &'a [(String, Json)], key: &str) -> Result<&'a Json, String> {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing field {key:?}"))
}

fn get_f64(fields: &[(String, Json)], key: &str) -> Result<f64, String> {
    match get(fields, key)? {
        Json::Number(n) => Ok(*n),
        // Non-finite floats serialize as null; map them back to NaN.
        Json::Null => Ok(f64::NAN),
        other => Err(format!("field {key:?}: expected a number, got {other:?}")),
    }
}

fn get_u64(fields: &[(String, Json)], key: &str) -> Result<u64, String> {
    let n = get_f64(fields, key)?;
    if n.fract() == 0.0 && (0.0..9.0e15).contains(&n) {
        Ok(n as u64)
    } else {
        Err(format!("field {key:?}: {n} is not an unsigned integer"))
    }
}

fn get_usize(fields: &[(String, Json)], key: &str) -> Result<usize, String> {
    Ok(get_u64(fields, key)? as usize)
}

fn get_str(fields: &[(String, Json)], key: &str) -> Result<String, String> {
    match get(fields, key)? {
        Json::String(s) => Ok(s.clone()),
        other => Err(format!("field {key:?}: expected a string, got {other:?}")),
    }
}

fn get_f64_array(fields: &[(String, Json)], key: &str) -> Result<Vec<f64>, String> {
    match get(fields, key)? {
        Json::Array(items) => items
            .iter()
            .map(|item| match item {
                Json::Number(n) => Ok(*n),
                Json::Null => Ok(f64::NAN),
                other => Err(format!("field {key:?}: non-number element {other:?}")),
            })
            .collect(),
        other => Err(format!("field {key:?}: expected an array, got {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Event> {
        vec![
            Event::SchedulerDecision {
                round: 42,
                user: 3,
                rule: "greedy(max-gap)".into(),
                scores: vec![0.1, 0.25, -0.5, 1.75e-3],
            },
            Event::ArmChosen {
                user: 3,
                arm: 7,
                ucb: 0.912,
                beta: 2.77,
                cost: 1.0,
            },
            Event::HybridFallback {
                reason: "no \"improvement\" for 10 rounds\nfrozen set {1, 2}".into(),
            },
            Event::TrainingCompleted {
                user: 0,
                model: 19,
                cost: 12.5,
                quality: 0.843,
            },
            Event::PosteriorUpdated {
                arm: 19,
                reward: 0.843,
                num_obs: 11,
            },
        ]
    }

    #[test]
    fn json_round_trips_every_variant() {
        for event in samples() {
            let line = event.to_json();
            let back = Event::from_json(&line).unwrap();
            assert_eq!(back, event, "round-trip failed for {line}");
        }
    }

    #[test]
    fn json_shape_is_one_object_per_event() {
        let line = samples()[0].to_json();
        assert!(line.starts_with("{\"SchedulerDecision\":{"), "{line}");
        assert!(!line.contains('\n'));
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(Event::from_json("not json").is_err());
        assert!(Event::from_json("{\"Nope\":{}}").is_err());
        assert!(Event::from_json("{\"ArmChosen\":{\"user\":1}}").is_err());
        assert!(Event::from_json("[1,2]").is_err());
    }

    #[test]
    fn user_accessor_matches_variants() {
        let events = samples();
        assert_eq!(events[0].user(), Some(3));
        assert_eq!(events[1].user(), Some(3));
        assert_eq!(events[2].user(), None);
        assert_eq!(events[3].user(), Some(0));
        assert_eq!(events[4].user(), None);
    }
}
