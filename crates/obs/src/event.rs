//! The structured event vocabulary of the instrumentation layer.

use crate::json::{self, Json};
use serde::Serialize;

/// Version of the trace schema emitted by [`Event::to_json`].
///
/// Bumped whenever an event variant gains, loses, or retypes a field.
/// [`Event::from_json`] stays backward compatible within a major paper-repro
/// line by defaulting additive fields (`parent`, `mean`, `sigma`, `cond`)
/// when they are absent, so version-1 traces still parse. Version 3 adds
/// the fault-tolerance vocabulary ([`Event::TrainingFailed`],
/// [`Event::RetryScheduled`], [`Event::ArmQuarantined`],
/// [`Event::CheckpointWritten`]); earlier versions simply never emitted
/// those variants, so version-1/2 traces still parse unchanged. Version 4
/// adds the multi-device execution vocabulary ([`Event::RunDispatched`],
/// [`Event::RunFinished`], [`Event::DeviceIdle`]) — again purely additive,
/// so version-1/2/3 traces still parse unchanged. Version 5 adds the
/// decision-provenance vocabulary ([`Event::UserScored`],
/// [`Event::ArmScored`], [`Event::DecisionWitness`]): per-round witnesses
/// of *why* each scheduling decision won, plus a rolling trajectory digest
/// for differential replay — also purely additive. Version 6 adds the
/// open-loop workload vocabulary ([`Event::TenantJoined`],
/// [`Event::TenantRetired`], [`Event::JobArrived`]): tenant churn and
/// externally-timed job arrivals, so offline tooling can reconstruct
/// queueing delay and per-tenant lifetimes — once more purely additive.
pub const TRACE_SCHEMA_VERSION: u32 = 6;

/// A structured observation emitted by an instrumented component.
///
/// Events capture the *decisions* of the system — who was scheduled, which
/// arm a tenant pulled, when the hybrid scheduler fell back to round robin —
/// rather than raw log lines, so traces can be joined, replayed, and
/// asserted on. Every variant serializes to one self-describing JSON object
/// (`{"VariantName": {fields...}}`) and parses back via [`Event::from_json`].
///
/// Since schema version 2 every causal event carries a `parent` span id
/// (`0` = not inside any span) linking it into the span tree recorded by
/// [`SpanStart`](Event::SpanStart) / [`SpanEnd`](Event::SpanEnd), so offline
/// tooling can reconstruct *why* an event happened, not just *that* it did.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum Event {
    /// The user-picking phase chose a tenant to serve this round.
    SchedulerDecision {
        /// Global scheduling round (0-based).
        round: u64,
        /// Index of the tenant chosen to be served.
        user: usize,
        /// Canonical name of the picking strategy (e.g. `"greedy(max-gap)"`,
        /// `"hybrid"`, `"round-robin"`); matches
        /// `UserPicker::name` / `SchedulerKind::name`.
        rule: String,
        /// Per-tenant scores the decision was based on, indexed by tenant.
        /// Empty for strategies that do not score (FCFS, round robin).
        scores: Vec<f64>,
        /// Id of the span this decision happened under (0 = none).
        parent: u64,
    },
    /// The model-picking phase chose an arm for the served tenant.
    ArmChosen {
        /// Index of the tenant whose policy ran.
        user: usize,
        /// Index of the chosen arm (model).
        arm: usize,
        /// The winning arm's upper confidence bound.
        ucb: f64,
        /// The βₜ₊₁ exploration coefficient used for the bound.
        beta: f64,
        /// The cost the bound was scaled by (1 when cost-oblivious).
        cost: f64,
        /// Posterior mean of the chosen arm at decision time.
        mean: f64,
        /// Posterior standard deviation of the chosen arm at decision time.
        /// Together with `mean` this lets offline tooling score the GP's
        /// calibration against the realized quality.
        sigma: f64,
        /// Id of the span this choice happened under (0 = none).
        parent: u64,
    },
    /// The hybrid scheduler permanently switched from greedy to round robin.
    HybridFallback {
        /// Human-readable account of what triggered the switch.
        reason: String,
        /// Id of the span the fallback happened under (0 = none).
        parent: u64,
    },
    /// A training run finished on the cluster.
    TrainingCompleted {
        /// Index of the tenant the run belonged to.
        user: usize,
        /// Index of the trained model.
        model: usize,
        /// Cost charged for the run (GPU-hours in the simulations).
        cost: f64,
        /// Observed quality (accuracy) of the trained model.
        quality: f64,
        /// Id of the span the run completed under (0 = none).
        parent: u64,
    },
    /// A tenant's GP posterior absorbed a new observation.
    PosteriorUpdated {
        /// Index of the observed arm.
        arm: usize,
        /// The reward the posterior was updated with.
        reward: f64,
        /// Total observations in the posterior after the update.
        num_obs: usize,
        /// Cheap condition-number estimate of the posterior's Cholesky
        /// factor after the update (`(max Lᵢᵢ / min Lᵢᵢ)²`; 1 when empty).
        /// A growing value warns of numerical degradation before it bites.
        cond: f64,
        /// Id of the span the update happened under (0 = none).
        parent: u64,
    },
    /// A named span opened: one node of the causal tree covering a stretch
    /// of wall-clock work (e.g. `scheduler_step`, `pick_arm`, `train`).
    SpanStart {
        /// Unique id of this span within the process (1-based).
        span: u64,
        /// Id of the enclosing span (0 = a root span).
        parent: u64,
        /// Span name; one of the fixed hot-path stage names.
        name: String,
        /// Wall-clock nanoseconds since the process trace epoch.
        ts_ns: u64,
    },
    /// The matching close of a [`SpanStart`](Event::SpanStart).
    SpanEnd {
        /// Id of the span being closed.
        span: u64,
        /// Wall-clock nanoseconds since the process trace epoch.
        ts_ns: u64,
    },
    /// A training run failed: the consumed cost is charged to the cluster
    /// clock and the tenant, but no quality observation enters the GP
    /// posterior (a *censored* observation, so the Theorem 1 regret
    /// decomposition stays consistent).
    TrainingFailed {
        /// Index of the tenant the failed run belonged to.
        user: usize,
        /// Index of the model whose training failed.
        model: usize,
        /// Cost charged for the failed run (partial progress plus any
        /// retry-backoff charge); may be zero when nothing was consumed.
        cost: f64,
        /// Failure taxonomy kind: `"crash"`, `"timeout"`, or
        /// `"invalid-quality"`.
        kind: String,
        /// 1-based attempt number within the scheduling round.
        attempt: u64,
        /// Id of the span the failure was detected under (0 = none).
        parent: u64,
    },
    /// A failed training run will be retried within the same scheduling
    /// round after a simulated-cost backoff.
    RetryScheduled {
        /// Index of the tenant being retried.
        user: usize,
        /// Index of the model that failed.
        model: usize,
        /// 1-based attempt number that just failed; the retry is attempt
        /// `attempt + 1`.
        attempt: u64,
        /// Simulated-cost backoff charged before the retry runs.
        backoff_cost: f64,
        /// Id of the span the retry was scheduled under (0 = none).
        parent: u64,
    },
    /// An arm accumulated enough consecutive failures to be quarantined:
    /// it is masked out of the tenant's GP-UCB argmax until probation
    /// re-entry.
    ArmQuarantined {
        /// Index of the tenant whose arm was quarantined.
        user: usize,
        /// Index of the quarantined model.
        model: usize,
        /// Consecutive failures that triggered the quarantine.
        failures: u64,
        /// Scheduling rounds until the arm re-enters on probation.
        probation_rounds: u64,
        /// Id of the span the quarantine happened under (0 = none).
        parent: u64,
    },
    /// A crash-safe checkpoint of the whole server was serialized.
    CheckpointWritten {
        /// Scheduling rounds executed when the checkpoint was taken.
        rounds: u64,
        /// Registered users covered by the checkpoint.
        users: u64,
        /// Size of the serialized checkpoint in bytes.
        bytes: u64,
        /// Id of the span the checkpoint was written under (0 = none).
        parent: u64,
    },
    /// A Cholesky factorization only succeeded after adding diagonal jitter.
    JitterRetry {
        /// How many escalating jitter attempts ran (≥ 1).
        attempts: u64,
        /// The diagonal jitter that finally produced a valid factor.
        jitter: f64,
        /// Id of the span the retry happened under (0 = none).
        parent: u64,
    },
    /// The multi-device executor handed a training run to a device while
    /// earlier runs may still be in flight (GP-BUCB delayed feedback).
    RunDispatched {
        /// Index of the tenant the run belongs to.
        user: usize,
        /// Index of the model being trained.
        model: usize,
        /// Index of the device the run was placed on.
        device: usize,
        /// Cost that will be charged for the run (before any speed scaling).
        cost: f64,
        /// Simulated clock at dispatch time.
        at: f64,
        /// Id of the span the dispatch happened under (0 = none).
        parent: u64,
    },
    /// A dispatched run left its device — either completing (`ok = true`,
    /// followed by a [`TrainingCompleted`](Event::TrainingCompleted)) or
    /// censored by a fault (`ok = false`, followed by a
    /// [`TrainingFailed`](Event::TrainingFailed)).
    RunFinished {
        /// Index of the tenant the run belonged to.
        user: usize,
        /// Index of the trained model.
        model: usize,
        /// Index of the device the run occupied.
        device: usize,
        /// Simulated clock when the device was freed.
        at: f64,
        /// Whether the run produced a usable quality observation.
        ok: bool,
        /// Id of the span the completion happened under (0 = none).
        parent: u64,
    },
    /// A fully idle device received work after sitting empty: `idle` is the
    /// length of the gap, the executor's queueing-delay sample.
    DeviceIdle {
        /// Index of the device that was idle.
        device: usize,
        /// Length of the idle gap in simulated cost units.
        idle: f64,
        /// Simulated clock when the gap ended (the dispatch time).
        at: f64,
        /// Id of the span the observation happened under (0 = none).
        parent: u64,
    },
    /// An empirical kernel matrix was projected onto the PSD cone.
    PsdProjectionApplied {
        /// The eigenvalue floor negative eigenvalues were clipped to.
        floor: f64,
        /// How many eigenvalues were clipped.
        clipped: u64,
        /// Total eigenvalue mass removed by clipping (sum of
        /// `floor − λ` over clipped eigenvalues; ≥ 0).
        clipped_mass: f64,
        /// Id of the span the projection happened under (0 = none).
        parent: u64,
    },
    /// One of the top-K candidate users of a round's pick decision, with
    /// the expected-regret-reduction score the picker ranked it on
    /// (schema v5; part of the round's decision witness).
    UserScored {
        /// Global scheduling round the score belongs to (0-based).
        round: u64,
        /// Index of the scored tenant.
        user: usize,
        /// The picker's score for this tenant (UCB gap or σ̃, per rule).
        score: f64,
        /// Rank among the round's scored users (0 = best score).
        rank: u64,
        /// Whether the tenant was in the candidate set `V_t`.
        candidate: bool,
        /// Id of the span the score was captured under (0 = none).
        parent: u64,
    },
    /// One of the top-K candidate arms of a round's model selection, with
    /// the posterior statistics the acquisition scored it on (schema v5;
    /// part of the round's decision witness).
    ArmScored {
        /// Global scheduling round the score belongs to (0-based).
        round: u64,
        /// Index of the tenant whose policy scored the arm.
        user: usize,
        /// Index of the scored arm (model).
        arm: usize,
        /// Posterior mean at selection time.
        mean: f64,
        /// Posterior standard deviation at selection time.
        sigma: f64,
        /// The (cost-scaled) upper confidence bound the arm was ranked on.
        ucb: f64,
        /// Rank among the round's scored arms (0 = best acquisition).
        rank: u64,
        /// Whether the arm was quarantine-masked out of the argmax.
        masked: bool,
        /// Id of the span the score was captured under (0 = none).
        parent: u64,
    },
    /// The per-round decision witness (schema v5): margins, tie-break path,
    /// fallback state, and the rolling trajectory digest. Emitted *after*
    /// the round's [`UserScored`](Event::UserScored) /
    /// [`ArmScored`](Event::ArmScored) events as the commit marker — readers
    /// that only surface rounds carrying a `DecisionWitness` never observe
    /// a torn (half-emitted) witness chain.
    DecisionWitness {
        /// Global scheduling round (0-based).
        round: u64,
        /// Index of the tenant served this round.
        user: usize,
        /// Index of the arm (model) trained this round.
        arm: usize,
        /// Winner's user score minus the runner-up's (NaN when fewer than
        /// two users were scored, e.g. warm-up or round-robin rounds).
        user_margin: f64,
        /// Winning arm's acquisition minus the runner-up's (NaN when the
        /// tenant has a single arm).
        arm_margin: f64,
        /// The decision path taken, e.g. `"greedy(max-gap)"`, `"warm-up"`,
        /// `"hybrid:rr-after-switch"`.
        path: String,
        /// Why the round deviated from the happy path: the censoring fault
        /// kind, a fallback reason, or `""` when nothing fired.
        fallback: String,
        /// Whether the round was censored (charged but unobserved).
        censored: bool,
        /// Size of the candidate set `V_t` the pick ranked (0 when the
        /// picker is not candidate-driven).
        candidates: u64,
        /// Rolling FNV-1a digest (16 hex digits) of the trajectory up to
        /// and including this round: equal digests at round `r` certify
        /// bit-identical decisions and outcomes for every round `≤ r`,
        /// which is what lets differential replay binary-search the first
        /// divergent round.
        digest: String,
        /// Id of the span the witness was emitted under (0 = none).
        parent: u64,
    },
    /// A tenant joined the shared service mid-run (schema v6): its slot,
    /// display name, and candidate-model count, stamped with the simulated
    /// clock (the serial simulator stamps its round count).
    TenantJoined {
        /// Index (slot) the tenant was registered under.
        user: usize,
        /// Human-readable tenant name from the workload model.
        name: String,
        /// Number of candidate models the tenant's program declares.
        models: u64,
        /// Simulated clock (or round count) at the join.
        at: f64,
        /// Id of the span the join happened under (0 = none).
        parent: u64,
    },
    /// A tenant left the shared service (schema v6). Its slot and GP state
    /// are kept — only its picker visibility ends — so `serves` records the
    /// service it consumed over its lifetime.
    TenantRetired {
        /// Index (slot) of the retired tenant.
        user: usize,
        /// Total times the tenant was served before retiring.
        serves: u64,
        /// Simulated clock (or round count) at the retirement.
        at: f64,
        /// Id of the span the retirement happened under (0 = none).
        parent: u64,
    },
    /// An open-loop job arrival (schema v6): tenant `user` asked for one
    /// more unit of service at simulated time `at`, independent of device
    /// availability. The FIFO gap to the matching
    /// [`RunDispatched`](Event::RunDispatched) is the job's queueing delay.
    JobArrived {
        /// Index of the tenant the job belongs to.
        user: usize,
        /// Monotone arrival sequence number within the workload (0-based).
        seq: u64,
        /// Simulated clock of the arrival.
        at: f64,
        /// Id of the span the arrival was recorded under (0 = none).
        parent: u64,
    },
}

impl Event {
    /// The variant name, as it appears as the JSON object key.
    pub fn name(&self) -> &'static str {
        match self {
            Event::SchedulerDecision { .. } => "SchedulerDecision",
            Event::ArmChosen { .. } => "ArmChosen",
            Event::HybridFallback { .. } => "HybridFallback",
            Event::TrainingCompleted { .. } => "TrainingCompleted",
            Event::PosteriorUpdated { .. } => "PosteriorUpdated",
            Event::TrainingFailed { .. } => "TrainingFailed",
            Event::RetryScheduled { .. } => "RetryScheduled",
            Event::ArmQuarantined { .. } => "ArmQuarantined",
            Event::CheckpointWritten { .. } => "CheckpointWritten",
            Event::RunDispatched { .. } => "RunDispatched",
            Event::RunFinished { .. } => "RunFinished",
            Event::DeviceIdle { .. } => "DeviceIdle",
            Event::SpanStart { .. } => "SpanStart",
            Event::SpanEnd { .. } => "SpanEnd",
            Event::JitterRetry { .. } => "JitterRetry",
            Event::PsdProjectionApplied { .. } => "PsdProjectionApplied",
            Event::UserScored { .. } => "UserScored",
            Event::ArmScored { .. } => "ArmScored",
            Event::DecisionWitness { .. } => "DecisionWitness",
            Event::TenantJoined { .. } => "TenantJoined",
            Event::TenantRetired { .. } => "TenantRetired",
            Event::JobArrived { .. } => "JobArrived",
        }
    }

    /// The tenant the event concerns, when it concerns one.
    pub fn user(&self) -> Option<usize> {
        match self {
            Event::SchedulerDecision { user, .. }
            | Event::ArmChosen { user, .. }
            | Event::TrainingCompleted { user, .. }
            | Event::TrainingFailed { user, .. }
            | Event::RetryScheduled { user, .. }
            | Event::ArmQuarantined { user, .. }
            | Event::RunDispatched { user, .. }
            | Event::RunFinished { user, .. }
            | Event::UserScored { user, .. }
            | Event::ArmScored { user, .. }
            | Event::DecisionWitness { user, .. }
            | Event::TenantJoined { user, .. }
            | Event::TenantRetired { user, .. }
            | Event::JobArrived { user, .. } => Some(*user),
            Event::HybridFallback { .. }
            | Event::PosteriorUpdated { .. }
            | Event::CheckpointWritten { .. }
            | Event::DeviceIdle { .. }
            | Event::SpanStart { .. }
            | Event::SpanEnd { .. }
            | Event::JitterRetry { .. }
            | Event::PsdProjectionApplied { .. } => None,
        }
    }

    /// The span this event is causally attached to (0 = none / root).
    ///
    /// For [`SpanStart`](Event::SpanStart) this is the *enclosing* span;
    /// [`SpanEnd`](Event::SpanEnd) closes its own span and reports that id's
    /// parent as unknown (0) — reconstruct it from the matching start.
    pub fn parent(&self) -> u64 {
        match self {
            Event::SchedulerDecision { parent, .. }
            | Event::ArmChosen { parent, .. }
            | Event::HybridFallback { parent, .. }
            | Event::TrainingCompleted { parent, .. }
            | Event::TrainingFailed { parent, .. }
            | Event::RetryScheduled { parent, .. }
            | Event::ArmQuarantined { parent, .. }
            | Event::CheckpointWritten { parent, .. }
            | Event::RunDispatched { parent, .. }
            | Event::RunFinished { parent, .. }
            | Event::DeviceIdle { parent, .. }
            | Event::PosteriorUpdated { parent, .. }
            | Event::SpanStart { parent, .. }
            | Event::JitterRetry { parent, .. }
            | Event::PsdProjectionApplied { parent, .. }
            | Event::UserScored { parent, .. }
            | Event::ArmScored { parent, .. }
            | Event::DecisionWitness { parent, .. }
            | Event::TenantJoined { parent, .. }
            | Event::TenantRetired { parent, .. }
            | Event::JobArrived { parent, .. } => *parent,
            Event::SpanEnd { .. } => 0,
        }
    }

    /// Serializes the event as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        json::to_string(self)
    }

    /// Parses an event back from the JSON produced by [`Event::to_json`].
    ///
    /// Fields added in schema version 2 (`parent`, `mean`, `sigma`, `cond`)
    /// default to `0` / `NaN` when absent, so version-1 traces still load.
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntactic or structural problem:
    /// malformed JSON, an unknown variant, or a missing/mistyped field.
    pub fn from_json(line: &str) -> Result<Event, String> {
        let value = json::parse(line)?;
        let Json::Object(entries) = value else {
            return Err(format!("expected a JSON object, got {value:?}"));
        };
        let [(variant, Json::Object(fields))] = entries.as_slice() else {
            return Err("expected exactly one {variant: {fields}} entry".into());
        };
        match variant.as_str() {
            "SchedulerDecision" => Ok(Event::SchedulerDecision {
                round: get_u64(fields, "round")?,
                user: get_usize(fields, "user")?,
                rule: get_str(fields, "rule")?,
                scores: get_f64_array(fields, "scores")?,
                parent: get_u64_or(fields, "parent", 0)?,
            }),
            "ArmChosen" => Ok(Event::ArmChosen {
                user: get_usize(fields, "user")?,
                arm: get_usize(fields, "arm")?,
                ucb: get_f64(fields, "ucb")?,
                beta: get_f64(fields, "beta")?,
                cost: get_f64(fields, "cost")?,
                mean: get_f64_or(fields, "mean", f64::NAN)?,
                sigma: get_f64_or(fields, "sigma", f64::NAN)?,
                parent: get_u64_or(fields, "parent", 0)?,
            }),
            "HybridFallback" => Ok(Event::HybridFallback {
                reason: get_str(fields, "reason")?,
                parent: get_u64_or(fields, "parent", 0)?,
            }),
            "TrainingCompleted" => Ok(Event::TrainingCompleted {
                user: get_usize(fields, "user")?,
                model: get_usize(fields, "model")?,
                cost: get_f64(fields, "cost")?,
                quality: get_f64(fields, "quality")?,
                parent: get_u64_or(fields, "parent", 0)?,
            }),
            "TrainingFailed" => Ok(Event::TrainingFailed {
                user: get_usize(fields, "user")?,
                model: get_usize(fields, "model")?,
                cost: get_f64(fields, "cost")?,
                kind: get_str(fields, "kind")?,
                attempt: get_u64_or(fields, "attempt", 1)?,
                parent: get_u64_or(fields, "parent", 0)?,
            }),
            "RetryScheduled" => Ok(Event::RetryScheduled {
                user: get_usize(fields, "user")?,
                model: get_usize(fields, "model")?,
                attempt: get_u64(fields, "attempt")?,
                backoff_cost: get_f64(fields, "backoff_cost")?,
                parent: get_u64_or(fields, "parent", 0)?,
            }),
            "ArmQuarantined" => Ok(Event::ArmQuarantined {
                user: get_usize(fields, "user")?,
                model: get_usize(fields, "model")?,
                failures: get_u64(fields, "failures")?,
                probation_rounds: get_u64(fields, "probation_rounds")?,
                parent: get_u64_or(fields, "parent", 0)?,
            }),
            "CheckpointWritten" => Ok(Event::CheckpointWritten {
                rounds: get_u64(fields, "rounds")?,
                users: get_u64(fields, "users")?,
                bytes: get_u64(fields, "bytes")?,
                parent: get_u64_or(fields, "parent", 0)?,
            }),
            "RunDispatched" => Ok(Event::RunDispatched {
                user: get_usize(fields, "user")?,
                model: get_usize(fields, "model")?,
                device: get_usize(fields, "device")?,
                cost: get_f64(fields, "cost")?,
                at: get_f64(fields, "at")?,
                parent: get_u64_or(fields, "parent", 0)?,
            }),
            "RunFinished" => Ok(Event::RunFinished {
                user: get_usize(fields, "user")?,
                model: get_usize(fields, "model")?,
                device: get_usize(fields, "device")?,
                at: get_f64(fields, "at")?,
                ok: get_bool(fields, "ok")?,
                parent: get_u64_or(fields, "parent", 0)?,
            }),
            "DeviceIdle" => Ok(Event::DeviceIdle {
                device: get_usize(fields, "device")?,
                idle: get_f64(fields, "idle")?,
                at: get_f64(fields, "at")?,
                parent: get_u64_or(fields, "parent", 0)?,
            }),
            "PosteriorUpdated" => Ok(Event::PosteriorUpdated {
                arm: get_usize(fields, "arm")?,
                reward: get_f64(fields, "reward")?,
                num_obs: get_usize(fields, "num_obs")?,
                cond: get_f64_or(fields, "cond", f64::NAN)?,
                parent: get_u64_or(fields, "parent", 0)?,
            }),
            "SpanStart" => Ok(Event::SpanStart {
                span: get_u64(fields, "span")?,
                parent: get_u64(fields, "parent")?,
                name: get_str(fields, "name")?,
                ts_ns: get_u64(fields, "ts_ns")?,
            }),
            "SpanEnd" => Ok(Event::SpanEnd {
                span: get_u64(fields, "span")?,
                ts_ns: get_u64(fields, "ts_ns")?,
            }),
            "JitterRetry" => Ok(Event::JitterRetry {
                attempts: get_u64(fields, "attempts")?,
                jitter: get_f64(fields, "jitter")?,
                parent: get_u64_or(fields, "parent", 0)?,
            }),
            "PsdProjectionApplied" => Ok(Event::PsdProjectionApplied {
                floor: get_f64(fields, "floor")?,
                clipped: get_u64(fields, "clipped")?,
                clipped_mass: get_f64(fields, "clipped_mass")?,
                parent: get_u64_or(fields, "parent", 0)?,
            }),
            "UserScored" => Ok(Event::UserScored {
                round: get_u64(fields, "round")?,
                user: get_usize(fields, "user")?,
                score: get_f64(fields, "score")?,
                rank: get_u64(fields, "rank")?,
                candidate: get_bool(fields, "candidate")?,
                parent: get_u64_or(fields, "parent", 0)?,
            }),
            "ArmScored" => Ok(Event::ArmScored {
                round: get_u64(fields, "round")?,
                user: get_usize(fields, "user")?,
                arm: get_usize(fields, "arm")?,
                mean: get_f64(fields, "mean")?,
                sigma: get_f64(fields, "sigma")?,
                ucb: get_f64(fields, "ucb")?,
                rank: get_u64(fields, "rank")?,
                masked: get_bool(fields, "masked")?,
                parent: get_u64_or(fields, "parent", 0)?,
            }),
            "DecisionWitness" => Ok(Event::DecisionWitness {
                round: get_u64(fields, "round")?,
                user: get_usize(fields, "user")?,
                arm: get_usize(fields, "arm")?,
                user_margin: get_f64(fields, "user_margin")?,
                arm_margin: get_f64(fields, "arm_margin")?,
                path: get_str(fields, "path")?,
                fallback: get_str(fields, "fallback")?,
                censored: get_bool(fields, "censored")?,
                candidates: get_u64(fields, "candidates")?,
                digest: get_str(fields, "digest")?,
                parent: get_u64_or(fields, "parent", 0)?,
            }),
            "TenantJoined" => Ok(Event::TenantJoined {
                user: get_usize(fields, "user")?,
                name: get_str(fields, "name")?,
                models: get_u64(fields, "models")?,
                at: get_f64(fields, "at")?,
                parent: get_u64_or(fields, "parent", 0)?,
            }),
            "TenantRetired" => Ok(Event::TenantRetired {
                user: get_usize(fields, "user")?,
                serves: get_u64(fields, "serves")?,
                at: get_f64(fields, "at")?,
                parent: get_u64_or(fields, "parent", 0)?,
            }),
            "JobArrived" => Ok(Event::JobArrived {
                user: get_usize(fields, "user")?,
                seq: get_u64(fields, "seq")?,
                at: get_f64(fields, "at")?,
                parent: get_u64_or(fields, "parent", 0)?,
            }),
            other => Err(format!("unknown event variant {other:?}")),
        }
    }
}

fn get<'a>(fields: &'a [(String, Json)], key: &str) -> Result<&'a Json, String> {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing field {key:?}"))
}

fn get_f64(fields: &[(String, Json)], key: &str) -> Result<f64, String> {
    match get(fields, key)? {
        Json::Number(n) => Ok(*n),
        // Non-finite floats serialize as null; map them back to NaN.
        Json::Null => Ok(f64::NAN),
        other => Err(format!("field {key:?}: expected a number, got {other:?}")),
    }
}

/// Like [`get_f64`] but with a default for fields added after schema v1.
fn get_f64_or(fields: &[(String, Json)], key: &str, default: f64) -> Result<f64, String> {
    if fields.iter().any(|(k, _)| k == key) {
        get_f64(fields, key)
    } else {
        Ok(default)
    }
}

fn get_u64(fields: &[(String, Json)], key: &str) -> Result<u64, String> {
    let n = get_f64(fields, key)?;
    if n.fract() == 0.0 && (0.0..9.0e15).contains(&n) {
        Ok(n as u64)
    } else {
        Err(format!("field {key:?}: {n} is not an unsigned integer"))
    }
}

/// Like [`get_u64`] but with a default for fields added after schema v1.
fn get_u64_or(fields: &[(String, Json)], key: &str, default: u64) -> Result<u64, String> {
    if fields.iter().any(|(k, _)| k == key) {
        get_u64(fields, key)
    } else {
        Ok(default)
    }
}

fn get_usize(fields: &[(String, Json)], key: &str) -> Result<usize, String> {
    Ok(get_u64(fields, key)? as usize)
}

fn get_bool(fields: &[(String, Json)], key: &str) -> Result<bool, String> {
    match get(fields, key)? {
        Json::Bool(b) => Ok(*b),
        other => Err(format!("field {key:?}: expected a bool, got {other:?}")),
    }
}

fn get_str(fields: &[(String, Json)], key: &str) -> Result<String, String> {
    match get(fields, key)? {
        Json::String(s) => Ok(s.clone()),
        other => Err(format!("field {key:?}: expected a string, got {other:?}")),
    }
}

fn get_f64_array(fields: &[(String, Json)], key: &str) -> Result<Vec<f64>, String> {
    match get(fields, key)? {
        Json::Array(items) => items
            .iter()
            .map(|item| match item {
                Json::Number(n) => Ok(*n),
                Json::Null => Ok(f64::NAN),
                other => Err(format!("field {key:?}: non-number element {other:?}")),
            })
            .collect(),
        other => Err(format!("field {key:?}: expected an array, got {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Event> {
        vec![
            Event::SchedulerDecision {
                round: 42,
                user: 3,
                rule: "greedy(max-gap)".into(),
                scores: vec![0.1, 0.25, -0.5, 1.75e-3],
                parent: 9,
            },
            Event::ArmChosen {
                user: 3,
                arm: 7,
                ucb: 0.912,
                beta: 2.77,
                cost: 1.0,
                mean: 0.8,
                sigma: 0.04,
                parent: 10,
            },
            Event::HybridFallback {
                reason: "no \"improvement\" for 10 rounds\nfrozen set {1, 2}".into(),
                parent: 0,
            },
            Event::TrainingCompleted {
                user: 0,
                model: 19,
                cost: 12.5,
                quality: 0.843,
                parent: 11,
            },
            Event::TrainingFailed {
                user: 2,
                model: 5,
                cost: 3.25,
                kind: "crash".into(),
                attempt: 2,
                parent: 11,
            },
            Event::RetryScheduled {
                user: 2,
                model: 5,
                attempt: 3,
                backoff_cost: 0.5,
                parent: 11,
            },
            Event::ArmQuarantined {
                user: 2,
                model: 5,
                failures: 3,
                probation_rounds: 16,
                parent: 11,
            },
            Event::CheckpointWritten {
                rounds: 40,
                users: 4,
                bytes: 8_192,
                parent: 0,
            },
            Event::RunDispatched {
                user: 1,
                model: 8,
                device: 2,
                cost: 4.5,
                at: 17.25,
                parent: 13,
            },
            Event::RunFinished {
                user: 1,
                model: 8,
                device: 2,
                at: 21.75,
                ok: true,
                parent: 13,
            },
            Event::DeviceIdle {
                device: 3,
                idle: 1.5,
                at: 17.25,
                parent: 13,
            },
            Event::PosteriorUpdated {
                arm: 19,
                reward: 0.843,
                num_obs: 11,
                cond: 3.5,
                parent: 12,
            },
            Event::SpanStart {
                span: 9,
                parent: 0,
                name: "scheduler_step".into(),
                ts_ns: 12_345,
            },
            Event::SpanEnd {
                span: 9,
                ts_ns: 99_999,
            },
            Event::JitterRetry {
                attempts: 3,
                jitter: 1e-8,
                parent: 12,
            },
            Event::PsdProjectionApplied {
                floor: 1e-9,
                clipped: 2,
                clipped_mass: 0.031,
                parent: 0,
            },
            Event::UserScored {
                round: 42,
                user: 3,
                score: 0.177,
                rank: 0,
                candidate: true,
                parent: 9,
            },
            Event::ArmScored {
                round: 42,
                user: 3,
                arm: 7,
                mean: 0.8,
                sigma: 0.04,
                ucb: 0.912,
                rank: 0,
                masked: false,
                parent: 9,
            },
            Event::DecisionWitness {
                round: 42,
                user: 3,
                arm: 7,
                user_margin: 0.012,
                arm_margin: 0.033,
                path: "hybrid:greedy(max-gap)".into(),
                fallback: String::new(),
                censored: false,
                candidates: 2,
                digest: "cbf29ce484222325".into(),
                parent: 9,
            },
            Event::TenantJoined {
                user: 4,
                name: "tenant-d".into(),
                models: 8,
                at: 33.5,
                parent: 14,
            },
            Event::TenantRetired {
                user: 2,
                serves: 27,
                at: 41.0,
                parent: 14,
            },
            Event::JobArrived {
                user: 4,
                seq: 112,
                at: 34.75,
                parent: 0,
            },
        ]
    }

    #[test]
    fn json_round_trips_every_variant() {
        for event in samples() {
            let line = event.to_json();
            let back = Event::from_json(&line).unwrap();
            assert_eq!(back, event, "round-trip failed for {line}");
        }
    }

    #[test]
    fn json_shape_is_one_object_per_event() {
        let line = samples()[0].to_json();
        assert!(line.starts_with("{\"SchedulerDecision\":{"), "{line}");
        assert!(!line.contains('\n'));
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(Event::from_json("not json").is_err());
        assert!(Event::from_json("{\"Nope\":{}}").is_err());
        assert!(Event::from_json("{\"ArmChosen\":{\"user\":1}}").is_err());
        assert!(Event::from_json("[1,2]").is_err());
        // Span events were introduced with their fields; they have no
        // pre-v2 form to default from.
        assert!(Event::from_json("{\"SpanStart\":{\"span\":1}}").is_err());
    }

    #[test]
    fn schema_v1_lines_parse_with_defaults() {
        // Exact serializations produced before the span/calibration fields
        // existed: the additive fields must default instead of erroring.
        let v1_decision = "{\"SchedulerDecision\":{\"round\":42,\"user\":3,\
                           \"rule\":\"hybrid\",\"scores\":[0.5,0.25]}}";
        match Event::from_json(v1_decision).unwrap() {
            Event::SchedulerDecision { round, parent, .. } => {
                assert_eq!(round, 42);
                assert_eq!(parent, 0);
            }
            other => panic!("wrong variant {other:?}"),
        }
        let v1_arm = "{\"ArmChosen\":{\"user\":1,\"arm\":2,\"ucb\":0.9,\
                      \"beta\":2.0,\"cost\":1.0}}";
        match Event::from_json(v1_arm).unwrap() {
            Event::ArmChosen {
                mean,
                sigma,
                parent,
                ..
            } => {
                assert!(mean.is_nan() && sigma.is_nan());
                assert_eq!(parent, 0);
            }
            other => panic!("wrong variant {other:?}"),
        }
        let v1_post = "{\"PosteriorUpdated\":{\"arm\":4,\"reward\":0.7,\"num_obs\":9}}";
        match Event::from_json(v1_post).unwrap() {
            Event::PosteriorUpdated { cond, parent, .. } => {
                assert!(cond.is_nan());
                assert_eq!(parent, 0);
            }
            other => panic!("wrong variant {other:?}"),
        }
    }

    #[test]
    fn user_accessor_matches_variants() {
        let events = samples();
        assert_eq!(events[0].user(), Some(3));
        assert_eq!(events[1].user(), Some(3));
        assert_eq!(events[2].user(), None);
        assert_eq!(events[3].user(), Some(0));
        assert_eq!(events[4].user(), Some(2)); // TrainingFailed
        assert_eq!(events[5].user(), Some(2)); // RetryScheduled
        assert_eq!(events[6].user(), Some(2)); // ArmQuarantined
        assert_eq!(events[7].user(), None); // CheckpointWritten
        assert_eq!(events[8].user(), Some(1)); // RunDispatched
        assert_eq!(events[9].user(), Some(1)); // RunFinished
        assert_eq!(events[10].user(), None); // DeviceIdle
        assert_eq!(events[11].user(), None); // PosteriorUpdated
        assert!(events[12..16].iter().all(|e| e.user().is_none()));
        assert_eq!(events[16].user(), Some(3)); // UserScored
        assert_eq!(events[17].user(), Some(3)); // ArmScored
        assert_eq!(events[18].user(), Some(3)); // DecisionWitness
        assert_eq!(events[19].user(), Some(4)); // TenantJoined
        assert_eq!(events[20].user(), Some(2)); // TenantRetired
        assert_eq!(events[21].user(), Some(4)); // JobArrived
    }

    #[test]
    fn parent_accessor_matches_variants() {
        let events = samples();
        let parents: Vec<u64> = events.iter().map(Event::parent).collect();
        assert_eq!(
            parents,
            vec![9, 10, 0, 11, 11, 11, 11, 0, 13, 13, 13, 12, 0, 0, 12, 0, 9, 9, 9, 14, 14, 0]
        );
    }
}
