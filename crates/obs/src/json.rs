//! A minimal JSON backend for the trace format.
//!
//! The vendored `serde` shim carries no `serde_json`, so this module
//! provides the two halves the observability layer needs: a [`Serializer`]
//! that renders any `Serialize` type to a compact JSON string, and a small
//! recursive-descent [`parse`] function producing a [`Json`] value tree.
//! Numbers are emitted with Rust's shortest round-trip formatting, so
//! `f64 → JSON → f64` is exact; non-finite floats become `null`.

use serde::ser::{
    Error as SerError, Serialize, SerializeMap, SerializeSeq, SerializeStruct,
    SerializeStructVariant, Serializer,
};
use std::fmt::{self, Display, Write as _};

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    value
        .serialize(JsonSerializer { out: &mut out })
        .expect("writing JSON to a String cannot fail");
    out
}

/// Serialization error. Writing to a `String` cannot actually fail, so this
/// only materializes if a `Serialize` impl reports a custom error.
#[derive(Debug)]
pub struct JsonError(String);

impl Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl SerError for JsonError {
    fn custom<T: Display>(msg: T) -> Self {
        JsonError(msg.to_string())
    }
}

struct JsonSerializer<'a> {
    out: &'a mut String,
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{:?}` is Rust's shortest representation that parses back to the
        // same bits, e.g. `0.1`, `1.0`, `1.75e-3` stays exact.
        let _ = write!(out, "{v:?}");
    } else {
        out.push_str("null");
    }
}

/// Writes comma-separated items between `open`/`close` delimiters.
struct DelimitedWriter<'a> {
    out: &'a mut String,
    first: bool,
    close: char,
}

impl<'a> DelimitedWriter<'a> {
    fn begin(out: &'a mut String, open: char, close: char) -> Self {
        out.push(open);
        DelimitedWriter {
            out,
            first: true,
            close,
        }
    }

    fn sep(&mut self) {
        if self.first {
            self.first = false;
        } else {
            self.out.push(',');
        }
    }

    fn finish(self) {
        self.out.push(self.close);
    }
}

impl<'a> Serializer for JsonSerializer<'a> {
    type Ok = ();
    type Error = JsonError;
    type SerializeSeq = DelimitedWriter<'a>;
    type SerializeMap = DelimitedWriter<'a>;
    type SerializeStruct = DelimitedWriter<'a>;
    type SerializeStructVariant = VariantWriter<'a>;

    fn serialize_bool(self, v: bool) -> Result<(), JsonError> {
        self.out.push_str(if v { "true" } else { "false" });
        Ok(())
    }

    fn serialize_i64(self, v: i64) -> Result<(), JsonError> {
        let _ = write!(self.out, "{v}");
        Ok(())
    }

    fn serialize_u64(self, v: u64) -> Result<(), JsonError> {
        let _ = write!(self.out, "{v}");
        Ok(())
    }

    fn serialize_f64(self, v: f64) -> Result<(), JsonError> {
        write_f64(self.out, v);
        Ok(())
    }

    fn serialize_str(self, v: &str) -> Result<(), JsonError> {
        write_escaped(self.out, v);
        Ok(())
    }

    fn serialize_unit(self) -> Result<(), JsonError> {
        self.out.push_str("null");
        Ok(())
    }

    fn serialize_none(self) -> Result<(), JsonError> {
        self.out.push_str("null");
        Ok(())
    }

    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), JsonError> {
        value.serialize(self)
    }

    fn serialize_seq(self, _len: Option<usize>) -> Result<DelimitedWriter<'a>, JsonError> {
        Ok(DelimitedWriter::begin(self.out, '[', ']'))
    }

    fn serialize_map(self, _len: Option<usize>) -> Result<DelimitedWriter<'a>, JsonError> {
        Ok(DelimitedWriter::begin(self.out, '{', '}'))
    }

    fn serialize_struct(
        self,
        _name: &'static str,
        _len: usize,
    ) -> Result<DelimitedWriter<'a>, JsonError> {
        Ok(DelimitedWriter::begin(self.out, '{', '}'))
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
    ) -> Result<(), JsonError> {
        write_escaped(self.out, variant);
        Ok(())
    }

    fn serialize_struct_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        _len: usize,
    ) -> Result<VariantWriter<'a>, JsonError> {
        self.out.push('{');
        write_escaped(self.out, variant);
        self.out.push(':');
        Ok(VariantWriter {
            inner: DelimitedWriter::begin(self.out, '{', '}'),
        })
    }
}

impl SerializeSeq for DelimitedWriter<'_> {
    type Ok = ();
    type Error = JsonError;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), JsonError> {
        self.sep();
        value.serialize(JsonSerializer { out: self.out })
    }

    fn end(self) -> Result<(), JsonError> {
        self.finish();
        Ok(())
    }
}

impl SerializeMap for DelimitedWriter<'_> {
    type Ok = ();
    type Error = JsonError;

    fn serialize_entry<K: Serialize + ?Sized, V: Serialize + ?Sized>(
        &mut self,
        key: &K,
        value: &V,
    ) -> Result<(), JsonError> {
        self.sep();
        // JSON object keys must be strings: serialize the key, then require
        // that it rendered as one.
        let start = self.out.len();
        key.serialize(JsonSerializer { out: self.out })?;
        if !self.out[start..].starts_with('"') {
            return Err(JsonError::custom("JSON map keys must serialize as strings"));
        }
        self.out.push(':');
        value.serialize(JsonSerializer { out: self.out })
    }

    fn end(self) -> Result<(), JsonError> {
        self.finish();
        Ok(())
    }
}

impl SerializeStruct for DelimitedWriter<'_> {
    type Ok = ();
    type Error = JsonError;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), JsonError> {
        self.sep();
        write_escaped(self.out, key);
        self.out.push(':');
        value.serialize(JsonSerializer { out: self.out })
    }

    fn end(self) -> Result<(), JsonError> {
        self.finish();
        Ok(())
    }
}

/// Struct-variant writer: the inner `{fields}` object plus the wrapping
/// `{"Variant": ... }` object that still needs closing.
pub struct VariantWriter<'a> {
    inner: DelimitedWriter<'a>,
}

impl SerializeStructVariant for VariantWriter<'_> {
    type Ok = ();
    type Error = JsonError;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), JsonError> {
        self.inner.sep();
        write_escaped(self.inner.out, key);
        self.inner.out.push(':');
        value.serialize(JsonSerializer {
            out: self.inner.out,
        })
    }

    fn end(self) -> Result<(), JsonError> {
        let out = {
            self.inner.out.push(self.inner.close);
            // Close the outer `{"Variant": ...}` wrapper too.
            let DelimitedWriter { out, .. } = self.inner;
            out
        };
        out.push('}');
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// A parsed JSON value.
///
/// Objects preserve insertion order (they are association lists, not maps),
/// which keeps parsing allocation-light and makes tests deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number; JSON does not distinguish integer from float.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, as ordered key–value pairs.
    Object(Vec<(String, Json)>),
}

/// Parses one JSON document.
///
/// # Errors
///
/// Returns a message naming the byte offset of the first syntax error, or
/// trailing non-whitespace after the document.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", char::from(b), self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("invalid codepoint {code:#x}"))?,
                            );
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(entries));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_render() {
        assert_eq!(to_string(&true), "true");
        assert_eq!(to_string(&42u64), "42");
        assert_eq!(to_string(&-7i32), "-7");
        assert_eq!(to_string(&0.1f64), "0.1");
        assert_eq!(to_string(&f64::NAN), "null");
        assert_eq!(to_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(to_string(&Option::<u32>::None), "null");
        assert_eq!(to_string(&vec![1u32, 2, 3]), "[1,2,3]");
    }

    #[test]
    fn parse_round_trips_floats_exactly() {
        for &v in &[0.1f64, 1.0 / 3.0, 1.75e-3, 1e300, -0.0, 123456789.123456] {
            let s = to_string(&v);
            match parse(&s).unwrap() {
                Json::Number(back) => assert_eq!(back.to_bits(), v.to_bits(), "{s}"),
                other => panic!("parsed {s} to {other:?}"),
            }
        }
    }

    #[test]
    fn parse_handles_nesting_and_whitespace() {
        let doc = r#" { "a" : [ 1 , { "b" : null } , "x" ] , "c" : true } "#;
        let parsed = parse(doc).unwrap();
        assert_eq!(
            parsed,
            Json::Object(vec![
                (
                    "a".into(),
                    Json::Array(vec![
                        Json::Number(1.0),
                        Json::Object(vec![("b".into(), Json::Null)]),
                        Json::String("x".into()),
                    ])
                ),
                ("c".into(), Json::Bool(true)),
            ])
        );
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "\"\\q\""] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn unicode_strings_survive() {
        let s = "héllo ∑ \u{1}";
        let rendered = to_string(s);
        assert_eq!(parse(&rendered).unwrap(), Json::String(s.into()));
    }
}
