//! Zero-cost observability for the ease.ml reproduction.
//!
//! Every interesting decision the system makes — which tenant the scheduler
//! served, which arm a tenant's GP-UCB pulled, when the hybrid scheduler
//! froze and fell back to round robin, what a training run returned — can
//! be captured as a structured [`Event`]. Alongside events, the layer
//! carries named counters, gauges, and fixed-bucket latency [`Histogram`]s
//! fed by scoped wall-clock timers around the hot paths (Cholesky
//! factor/solve, posterior refresh, per-round pick).
//!
//! The design goal is *zero cost when off*:
//!
//! * instrumented components hold a [`RecorderHandle`]; the default handle
//!   is disabled and every operation on it is a single branch — event
//!   construction sits behind a closure that never runs, so the disabled
//!   path does not allocate or format;
//! * deep library code (the linalg kernels) uses the process-global
//!   recorder via [`global_timer`], whose disabled fast path is one relaxed
//!   atomic load;
//! * the `sim/noop_recorder_overhead` benchmark in `easeml-bench` guards
//!   the claim by timing a full simulation with and without the plumbing.
//!
//! When observability *is* wanted, attach an [`InMemoryRecorder`]:
//!
//! ```
//! use easeml_obs::{Event, InMemoryRecorder, Recorder, RecorderHandle};
//! use std::sync::Arc;
//!
//! let recorder = Arc::new(InMemoryRecorder::new());
//! let handle = RecorderHandle::new(recorder.clone());
//!
//! // Components emit through the handle...
//! handle.emit(|| Event::TrainingCompleted { user: 0, model: 3, cost: 1.0, quality: 0.91 });
//!
//! // ...and the recorder exports a JSONL trace or a summary table.
//! let trace = recorder.to_jsonl();
//! assert_eq!(Event::from_json(trace.lines().next().unwrap()).unwrap(),
//!            recorder.events()[0]);
//! println!("{}", recorder.summary());
//! ```

mod event;
pub mod json;
mod memory;
mod recorder;
mod timer;

pub use event::Event;
pub use memory::{Histogram, InMemoryRecorder, UserStats};
pub use recorder::{Component, NoopRecorder, Recorder, RecorderHandle};
pub use timer::{global_handle, global_timer, set_global_recorder, GlobalTimer, ScopedTimer};
