//! Zero-cost observability for the ease.ml reproduction.
//!
//! Every interesting decision the system makes — which tenant the scheduler
//! served, which arm a tenant's GP-UCB pulled, when the hybrid scheduler
//! froze and fell back to round robin, what a training run returned — can
//! be captured as a structured [`Event`]. Alongside events, the layer
//! carries named counters, gauges, and fixed-bucket latency [`Histogram`]s
//! fed by scoped wall-clock timers around the hot paths (Cholesky
//! factor/solve, posterior refresh, per-round pick).
//!
//! The design goal is *zero cost when off*:
//!
//! * instrumented components hold a [`RecorderHandle`]; the default handle
//!   is disabled and every operation on it is a single branch — event
//!   construction sits behind a closure that never runs, so the disabled
//!   path does not allocate or format;
//! * deep library code (the linalg kernels) uses the process-global
//!   recorder via [`global_timer`], whose disabled fast path is one relaxed
//!   atomic load;
//! * the `sim/noop_recorder_overhead` benchmark in `easeml-bench` guards
//!   the claim by timing a full simulation with and without the plumbing.
//!
//! When observability *is* wanted, attach an [`InMemoryRecorder`]:
//!
//! ```
//! use easeml_obs::{Event, InMemoryRecorder, Recorder, RecorderHandle};
//! use std::sync::Arc;
//!
//! let recorder = Arc::new(InMemoryRecorder::new());
//! let handle = RecorderHandle::new(recorder.clone());
//!
//! // Components emit through the handle, stamping the current causal span...
//! let step = handle.span("scheduler_step");
//! handle.emit(|| Event::TrainingCompleted {
//!     user: 0,
//!     model: 3,
//!     cost: 1.0,
//!     quality: 0.91,
//!     parent: easeml_obs::current_span(),
//! });
//! drop(step);
//!
//! // ...and the recorder exports a JSONL trace or a summary table.
//! let trace = recorder.to_jsonl();
//! assert_eq!(Event::from_json(trace.lines().next().unwrap()).unwrap(),
//!            recorder.events()[0]);
//! println!("{}", recorder.summary());
//! ```
//!
//! For *live* telemetry — a run that must be observable while it executes —
//! compose the export layer instead of the bare in-memory recorder:
//!
//! * [`TeeRecorder`] forwards every call to a primary recorder while
//!   fanning the event stream out to [`StreamingSink`]s;
//! * [`JsonlFileSink`] streams the trace to disk with size-based rotation,
//!   so a long run never accumulates its trace unboundedly in memory;
//! * [`TimeSeriesRecorder`] folds the stream into per-tenant regret curves
//!   against the simulated clock (the paper's Fig. 8 trajectories, live);
//! * [`InMemoryRecorder::events_since`] tails the trace incrementally —
//!   the contract behind the `easeml-obs-http` crate's `/trace?after=`
//!   endpoint.

//!
//! For *attribution* — where a step spends its time and memory — the
//! profiling layer folds the span stream into an aggregated
//! [`CallTreeProfile`] (offline, from any trace) or maintains it online
//! through a global [`Profiler`] fed directly by span guards, with
//! optional allocation accounting via the [`CountingAlloc`] global
//! allocator. See the `profile` module docs.

mod alloc;
mod event;
pub mod json;
mod memory;
mod profile;
mod recorder;
mod sink;
mod sketch;
mod span;
mod timer;
mod timeseries;
mod witness;

pub use alloc::{counting_allocator_active, thread_alloc_stats, AllocStats, CountingAlloc};
pub use event::{Event, TRACE_SCHEMA_VERSION};
pub use memory::{Histogram, InMemoryRecorder, UserStats};
pub use profile::{
    global_profiler, profiling_enabled, scaling_exponents, set_global_profiler, CallTreeProfile,
    PhaseRow, PhaseScaling, ProfileNode, Profiler,
};
pub use recorder::{Component, NoopRecorder, Recorder, RecorderHandle};
pub use sink::{
    schema_header_line, JsonlFileSink, SinkStats, StreamingSink, TeeRecorder, DEFAULT_KEEP_ROTATED,
    DEFAULT_MAX_FILE_BYTES,
};
pub use sketch::{
    HeavyHitter, QuantileSketch, Reservoir, ReservoirOutcome, SketchParts, SpaceSaving,
    DEFAULT_SKETCH_ALPHA, DEFAULT_SKETCH_MAX_BUCKETS,
};
pub use span::{current_span, trace_ts_ns, SpanGuard};
pub use timer::{global_handle, global_timer, set_global_recorder, GlobalTimer, ScopedTimer};
pub use timeseries::{
    RegretDecomposition, ScaleConfig, ScaleSnapshot, StrategySketches, TelemetryOverhead,
    TimeSeriesRecorder, TimeSeriesSnapshot, TopTenant, UserSeries,
};
pub use witness::{
    top_k_indices, witness_records, RollingDigest, WitnessArm, WitnessRecord, WitnessUser,
};
