//! The thread-safe in-memory recorder, its latency histograms, and the
//! exporters (JSONL trace, human-readable summary).

use crate::event::Event;
use crate::recorder::{Component, Recorder};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Number of power-of-two latency buckets: bucket `i` covers
/// `[2^i, 2^(i+1))` nanoseconds, with the last bucket open-ended. Bucket 39
/// starts at ~9.2 minutes, far beyond any timed scope here.
const NUM_BUCKETS: usize = 40;

/// A fixed-bucket latency histogram over nanosecond samples.
///
/// Buckets are powers of two, so recording is a `leading_zeros` and an
/// increment — no allocation, no floating point. Quantiles are estimated
/// from bucket boundaries (exact min/max are tracked separately), which is
/// plenty for the p50/p95 columns of the summary table.
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: [u64; NUM_BUCKETS],
    count: u64,
    sum_ns: u64,
    min_ns: u64,
    max_ns: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: [0; NUM_BUCKETS],
            count: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }

    fn bucket_index(nanos: u64) -> usize {
        // floor(log2(n)) for n ≥ 1; zero-duration samples land in bucket 0.
        (63 - nanos.max(1).leading_zeros() as usize).min(NUM_BUCKETS - 1)
    }

    /// Adds one sample.
    pub fn record(&mut self, nanos: u64) {
        self.counts[Self::bucket_index(nanos)] += 1;
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(nanos);
        self.min_ns = self.min_ns.min(nanos);
        self.max_ns = self.max_ns.max(nanos);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples in nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns
    }

    /// Mean sample in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Smallest sample, when any were recorded.
    pub fn min_ns(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min_ns)
    }

    /// Largest sample (0 when empty).
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Estimates the `q`-quantile in nanoseconds from the bucket
    /// boundaries, clamped to the exact observed min/max.
    ///
    /// Degenerate inputs are well-defined rather than garbage: an empty
    /// histogram returns 0.0 for every `q`, `q` outside `[0, 1]` is clamped
    /// to the nearest end (a NaN `q` behaves like 0.0), and samples in the
    /// open-ended overflow bucket are reported as the observed maximum
    /// instead of a fabricated power-of-two edge.
    pub fn quantile_ns(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= rank {
                // Upper edge of bucket i, clamped to what was really seen.
                // The last bucket has no upper edge, so only the observed
                // maximum bounds it.
                let upper = match Self::bucket_upper_ns(i) {
                    Some(edge) => edge,
                    None => self.max_ns,
                };
                return (upper.min(self.max_ns).max(self.min_ns)) as f64;
            }
        }
        self.max_ns as f64
    }

    /// The raw bucket counts (bucket `i` covers `[2^i, 2^(i+1))` ns).
    pub fn buckets(&self) -> &[u64; NUM_BUCKETS] {
        &self.counts
    }

    /// The exclusive upper edge of bucket `i` in nanoseconds, or `None` for
    /// the final open-ended overflow bucket. Exporters (the Prometheus
    /// endpoint) use this to label `le=` bucket boundaries.
    pub fn bucket_upper_ns(i: usize) -> Option<u64> {
        (i + 1 < NUM_BUCKETS).then(|| 1u64 << (i + 1))
    }
}

/// Per-tenant tallies computed from `TrainingCompleted` events.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct UserStats {
    /// Number of training runs served to this tenant.
    pub served: u64,
    /// Total cost charged across those runs.
    pub total_cost: f64,
    /// Best quality any of the tenant's runs reached.
    pub best_quality: f64,
    /// Quality of the tenant's most recent run.
    pub final_quality: f64,
}

impl UserStats {
    /// How far the last run sat below the tenant's best (the trace-local
    /// analogue of instantaneous regret).
    pub fn regret(&self) -> f64 {
        self.best_quality - self.final_quality
    }
}

/// A thread-safe [`Recorder`] that keeps everything in memory and can
/// export a JSONL trace or a human-readable summary.
///
/// Interior mutability is mutex-per-table (`parking_lot`), so concurrent
/// recording from the parallel simulator only contends when two threads hit
/// the same table at the same instant.
#[derive(Debug, Default)]
pub struct InMemoryRecorder {
    /// Recorded events with their explicit 1-based sequence numbers, in
    /// ascending seq order. Storing the seq (instead of deriving it from
    /// the index) lets [`InMemoryRecorder::events_since`] seek by binary
    /// search and keeps cursors meaningful even if a future variant prunes
    /// the head of the buffer.
    events: Mutex<Vec<(u64, Event)>>,
    counters: Mutex<BTreeMap<&'static str, u64>>,
    gauges: Mutex<BTreeMap<&'static str, f64>>,
    timings: Mutex<Vec<Histogram>>,
}

/// Index of the first entry with seq strictly greater than `after`, found
/// by binary search on the ascending seq column.
fn seek(events: &[(u64, Event)], after: u64) -> usize {
    events.partition_point(|(seq, _)| *seq <= after)
}

impl InMemoryRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        InMemoryRecorder {
            events: Mutex::new(Vec::new()),
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            timings: Mutex::new(vec![Histogram::new(); Component::COUNT]),
        }
    }

    /// Snapshot of all recorded events, in recording order.
    ///
    /// This clones the full event vector; incremental consumers should use
    /// [`InMemoryRecorder::events_since`] and only pay for the tail.
    pub fn events(&self) -> Vec<Event> {
        self.events_since(0)
    }

    /// Snapshot of the events with sequence number strictly greater than
    /// `after`. Events are numbered from 1 in recording order, so
    /// `events_since(0)` is everything and `events_since(last_seq())` is
    /// empty — the contract behind the `/trace?after=<seq>` endpoint and
    /// any periodic exporter that must stay O(new events) on long runs.
    /// The cursor position is found by binary search on the stored seq
    /// column, not a linear scan.
    pub fn events_since(&self, after: u64) -> Vec<Event> {
        let events = self.events.lock();
        let start = seek(&events, after);
        events[start..].iter().map(|(_, e)| e.clone()).collect()
    }

    /// Sequence number of the most recently recorded event (1-based), or 0
    /// when nothing has been recorded yet.
    pub fn last_seq(&self) -> u64 {
        self.events.lock().last().map_or(0, |(seq, _)| *seq)
    }

    /// Number of recorded events.
    pub fn num_events(&self) -> usize {
        self.events.lock().len()
    }

    /// Event counts keyed by variant name.
    pub fn event_counts(&self) -> BTreeMap<&'static str, usize> {
        let mut out = BTreeMap::new();
        for (_, event) in self.events.lock().iter() {
            *out.entry(event.name()).or_insert(0) += 1;
        }
        out
    }

    /// Current value of a counter (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.lock().get(name).copied().unwrap_or(0)
    }

    /// Latest value of a gauge, if ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.lock().get(name).copied()
    }

    /// Snapshot of every counter, keyed by name.
    pub fn counters(&self) -> BTreeMap<&'static str, u64> {
        self.counters.lock().clone()
    }

    /// Snapshot of every gauge, keyed by name.
    pub fn gauges(&self) -> BTreeMap<&'static str, f64> {
        self.gauges.lock().clone()
    }

    /// Snapshot of the latency histogram for `component`.
    pub fn timing(&self, component: Component) -> Histogram {
        self.timings.lock()[component.index()].clone()
    }

    /// Per-tenant served/cost/quality tallies from `TrainingCompleted`
    /// events, keyed by tenant index.
    pub fn per_user_stats(&self) -> BTreeMap<usize, UserStats> {
        let mut out: BTreeMap<usize, UserStats> = BTreeMap::new();
        for (_, event) in self.events.lock().iter() {
            if let Event::TrainingCompleted {
                user,
                cost,
                quality,
                ..
            } = event
            {
                let stats = out.entry(*user).or_default();
                stats.served += 1;
                stats.total_cost += cost;
                stats.best_quality = stats.best_quality.max(*quality);
                stats.final_quality = *quality;
            }
        }
        out
    }

    /// Exports every event as JSON Lines (one compact object per line,
    /// trailing newline included; empty string when no events).
    pub fn to_jsonl(&self) -> String {
        self.to_jsonl_since(0)
    }

    /// Exports the events with sequence number strictly greater than
    /// `after` as JSON Lines — the incremental counterpart of
    /// [`InMemoryRecorder::to_jsonl`], costing only the exported tail.
    pub fn to_jsonl_since(&self, after: u64) -> String {
        self.to_jsonl_since_capped(after, usize::MAX)
    }

    /// Like [`InMemoryRecorder::to_jsonl_since`] but exporting at most
    /// `limit` events past the cursor — the contract behind
    /// `/trace?after=<seq>&limit=<n>`. Clients page forward by re-reading
    /// with `after` advanced past the last line they consumed.
    pub fn to_jsonl_since_capped(&self, after: u64, limit: usize) -> String {
        let events = self.events.lock();
        let start = seek(&events, after);
        let end = start.saturating_add(limit).min(events.len());
        let mut out = String::new();
        for (_, event) in events[start..end].iter() {
            out.push_str(&event.to_json());
            out.push('\n');
        }
        out
    }

    /// Renders the human-readable summary: per-component latency table,
    /// event counts, counters/gauges, and per-tenant tallies.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str("== easeml-obs summary ==\n");

        let timings = self.timings.lock().clone();
        if timings.iter().any(|h| h.count() > 0) {
            out.push_str("\ntimings:\n");
            let _ = writeln!(
                out,
                "  {:<22} {:>8} {:>10} {:>10} {:>10}",
                "component", "count", "p50", "p95", "max"
            );
            for component in Component::ALL {
                let h = &timings[component.index()];
                if h.count() == 0 {
                    continue;
                }
                let _ = writeln!(
                    out,
                    "  {:<22} {:>8} {:>10} {:>10} {:>10}",
                    component.name(),
                    h.count(),
                    format_ns(h.quantile_ns(0.50)),
                    format_ns(h.quantile_ns(0.95)),
                    format_ns(h.max_ns() as f64),
                );
            }
        }

        let event_counts = self.event_counts();
        if !event_counts.is_empty() {
            out.push_str("\nevents:\n");
            for (name, count) in &event_counts {
                let _ = writeln!(out, "  {name:<22} {count:>8}");
            }
        }

        let counters = self.counters.lock().clone();
        let gauges = self.gauges.lock().clone();
        if !counters.is_empty() || !gauges.is_empty() {
            out.push_str("\ncounters / gauges:\n");
            for (name, value) in &counters {
                let _ = writeln!(out, "  {name:<22} {value:>8}");
            }
            for (name, value) in &gauges {
                let _ = writeln!(out, "  {name:<22} {value:>8.4}");
            }
        }

        let per_user = self.per_user_stats();
        if !per_user.is_empty() {
            out.push_str("\nper-user (from TrainingCompleted):\n");
            let _ = writeln!(
                out,
                "  {:>4} {:>7} {:>12} {:>9} {:>9} {:>8}",
                "user", "served", "total-cost", "best-q", "final-q", "regret"
            );
            for (user, stats) in &per_user {
                let _ = writeln!(
                    out,
                    "  {:>4} {:>7} {:>12.3} {:>9.4} {:>9.4} {:>8.4}",
                    user,
                    stats.served,
                    stats.total_cost,
                    stats.best_quality,
                    stats.final_quality,
                    stats.regret(),
                );
            }
        }

        out
    }
}

impl Recorder for InMemoryRecorder {
    fn record(&self, event: Event) {
        let mut events = self.events.lock();
        let seq = events.last().map_or(0, |(seq, _)| *seq) + 1;
        events.push((seq, event));
    }

    fn add_counter(&self, name: &'static str, delta: u64) {
        *self.counters.lock().entry(name).or_insert(0) += delta;
    }

    fn set_gauge(&self, name: &'static str, value: f64) {
        self.gauges.lock().insert(name, value);
    }

    fn record_timing(&self, component: Component, nanos: u64) {
        self.timings.lock()[component.index()].record(nanos);
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0}ns")
    } else if ns < 1_000_000.0 {
        format!("{:.1}µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.1}ms", ns / 1_000_000.0)
    } else {
        format!("{:.2}s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bucket_boundaries() {
        // Powers of two land in the bucket they open, n-1 one lower.
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 0);
        assert_eq!(Histogram::bucket_index(2), 1);
        assert_eq!(Histogram::bucket_index(3), 1);
        assert_eq!(Histogram::bucket_index(4), 2);
        assert_eq!(Histogram::bucket_index(1023), 9);
        assert_eq!(Histogram::bucket_index(1024), 10);
        assert_eq!(Histogram::bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn histogram_stats_track_samples() {
        let mut h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min_ns(), None);
        assert_eq!(h.quantile_ns(0.5), 0.0);
        for ns in [100u64, 200, 300, 400, 10_000] {
            h.record(ns);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min_ns(), Some(100));
        assert_eq!(h.max_ns(), 10_000);
        assert_eq!(h.sum_ns(), 11_000);
        assert!((h.mean_ns() - 2200.0).abs() < 1e-9);
        // p50 of {100,200,300,400,10000}: rank 3 → the 256..512 bucket.
        let p50 = h.quantile_ns(0.5);
        assert!((100.0..=512.0).contains(&p50), "p50 = {p50}");
        // p95+ must reach the outlier's bucket but not exceed the true max.
        let p99 = h.quantile_ns(0.99);
        assert!((4096.0..=10_000.0).contains(&p99), "p99 = {p99}");
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let h = Histogram::new();
        for q in [-1.0, 0.0, 0.5, 1.0, 2.0, f64::NAN] {
            assert_eq!(h.quantile_ns(q), 0.0, "q = {q}");
        }
    }

    #[test]
    fn single_sample_quantiles_collapse_to_the_sample() {
        let mut h = Histogram::new();
        h.record(300);
        // Any quantile of a one-sample histogram is that sample: the bucket
        // estimate is clamped to the observed min == max.
        for q in [-0.5, 0.0, 0.25, 0.5, 0.99, 1.0, 7.0] {
            assert_eq!(h.quantile_ns(q), 300.0, "q = {q}");
        }
    }

    #[test]
    fn out_of_range_q_clamps_to_the_ends() {
        let mut h = Histogram::new();
        for ns in [100u64, 200, 400, 800, 1600] {
            h.record(ns);
        }
        assert_eq!(h.quantile_ns(-3.0), h.quantile_ns(0.0));
        assert_eq!(h.quantile_ns(42.0), h.quantile_ns(1.0));
        assert!(h.quantile_ns(-3.0) >= h.min_ns().unwrap() as f64);
        assert!(h.quantile_ns(42.0) <= h.max_ns() as f64);
    }

    #[test]
    fn overflow_bucket_quantiles_report_the_observed_max() {
        // Samples beyond the last bucket edge (2^40 ns ≈ 18 min) land in
        // the open-ended overflow bucket; quantiles there must report the
        // real maximum, not a fabricated power-of-two edge.
        let mut h = Histogram::new();
        let big = 1u64 << 45;
        h.record(big);
        assert_eq!(h.quantile_ns(0.5), big as f64);
        assert_eq!(h.quantile_ns(1.0), big as f64);
        // A second, larger overflow sample: every quantile stays within the
        // truly observed range instead of a 2^40 bucket edge.
        h.record(big + 8);
        for q in [0.0, 0.5, 1.0] {
            let v = h.quantile_ns(q);
            assert!(
                (big as f64..=(big + 8) as f64).contains(&v),
                "q = {q}, v = {v}"
            );
        }
        assert_eq!(Histogram::bucket_upper_ns(NUM_BUCKETS - 1), None);
        assert_eq!(Histogram::bucket_upper_ns(0), Some(2));
        assert_eq!(
            Histogram::bucket_upper_ns(NUM_BUCKETS - 2),
            Some(1u64 << (NUM_BUCKETS - 1))
        );
    }

    #[test]
    fn events_since_returns_only_the_tail() {
        let r = InMemoryRecorder::new();
        assert_eq!(r.last_seq(), 0);
        assert!(r.events_since(0).is_empty());
        for arm in 0..5 {
            r.record(Event::PosteriorUpdated {
                arm,
                reward: 0.5,
                num_obs: arm + 1,
                cond: 1.0,
                parent: 0,
            });
        }
        assert_eq!(r.last_seq(), 5);
        assert_eq!(r.events_since(0).len(), 5);
        assert_eq!(r.events_since(0), r.events());
        let tail = r.events_since(3);
        assert_eq!(tail.len(), 2);
        assert!(matches!(tail[0], Event::PosteriorUpdated { arm: 3, .. }));
        assert!(r.events_since(5).is_empty());
        // Past-the-end cursors (a client that over-counted) are harmless.
        assert!(r.events_since(99).is_empty());
        // The incremental JSONL export agrees with the full one.
        assert_eq!(r.to_jsonl_since(0), r.to_jsonl());
        assert_eq!(r.to_jsonl_since(3).lines().count(), 2);
        assert_eq!(r.to_jsonl_since(99), "");
    }

    #[test]
    fn capped_export_pages_through_the_stream() {
        let r = InMemoryRecorder::new();
        for arm in 0..10 {
            r.record(Event::PosteriorUpdated {
                arm,
                reward: 0.5,
                num_obs: arm + 1,
                cond: 1.0,
                parent: 0,
            });
        }
        assert_eq!(r.to_jsonl_since_capped(0, 3).lines().count(), 3);
        assert_eq!(r.to_jsonl_since_capped(8, 3).lines().count(), 2);
        assert_eq!(r.to_jsonl_since_capped(0, 0), "");
        assert_eq!(r.to_jsonl_since_capped(0, usize::MAX), r.to_jsonl());
        // Paging with after + limit walks the stream without gaps.
        let mut after = 0u64;
        let mut pages = 0;
        loop {
            let page = r.to_jsonl_since_capped(after, 4);
            if page.is_empty() {
                break;
            }
            after += page.lines().count() as u64;
            pages += 1;
        }
        assert_eq!(after, 10);
        assert_eq!(pages, 3);
    }

    #[test]
    fn seek_finds_the_cursor_by_binary_search() {
        let events: Vec<(u64, Event)> = (1..=100)
            .map(|seq| {
                (
                    seq,
                    Event::HybridFallback {
                        reason: String::new(),
                        parent: 0,
                    },
                )
            })
            .collect();
        assert_eq!(seek(&events, 0), 0);
        assert_eq!(seek(&events, 1), 1);
        assert_eq!(seek(&events, 57), 57);
        assert_eq!(seek(&events, 100), 100);
        assert_eq!(seek(&events, 1000), 100);
        assert_eq!(seek(&[], 7), 0);
    }

    #[test]
    fn counter_and_gauge_snapshots_list_everything() {
        let r = InMemoryRecorder::new();
        r.add_counter("a", 1);
        r.add_counter("b", 2);
        r.set_gauge("g", 3.5);
        assert_eq!(r.counters().len(), 2);
        assert_eq!(r.counters()["b"], 2);
        assert_eq!(r.gauges().len(), 1);
        assert_eq!(r.gauges()["g"], 3.5);
    }

    #[test]
    fn quantiles_are_monotone_in_q() {
        let mut h = Histogram::new();
        for i in 1..=1000u64 {
            h.record(i * 7);
        }
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0];
        for pair in qs.windows(2) {
            assert!(h.quantile_ns(pair[0]) <= h.quantile_ns(pair[1]));
        }
        assert!(h.quantile_ns(1.0) <= h.max_ns() as f64);
        assert!(h.quantile_ns(0.0) >= h.min_ns().unwrap() as f64);
    }

    #[test]
    fn per_user_stats_tally_training_events() {
        let r = InMemoryRecorder::new();
        for (user, cost, quality) in [(0, 1.0, 0.5), (1, 2.0, 0.9), (0, 3.0, 0.4)] {
            r.record(Event::TrainingCompleted {
                user,
                model: 0,
                cost,
                quality,
                parent: 0,
            });
        }
        let stats = r.per_user_stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[&0].served, 2);
        assert!((stats[&0].total_cost - 4.0).abs() < 1e-12);
        assert!((stats[&0].best_quality - 0.5).abs() < 1e-12);
        assert!((stats[&0].final_quality - 0.4).abs() < 1e-12);
        assert!((stats[&0].regret() - 0.1).abs() < 1e-12);
        assert_eq!(stats[&1].served, 1);
    }

    #[test]
    fn summary_mentions_all_sections() {
        let r = InMemoryRecorder::new();
        r.record(Event::TrainingCompleted {
            user: 2,
            model: 1,
            cost: 1.5,
            quality: 0.7,
            parent: 0,
        });
        r.add_counter("rounds", 3);
        r.set_gauge("budget-left", 0.25);
        r.record_timing(Component::SchedulerPick, 1_234);
        let s = r.summary();
        assert!(s.contains("sched/pick"), "{s}");
        assert!(s.contains("TrainingCompleted"), "{s}");
        assert!(s.contains("rounds"), "{s}");
        assert!(s.contains("budget-left"), "{s}");
        assert!(s.contains("per-user"), "{s}");
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        use crate::RecorderHandle;
        use std::sync::Arc;
        let rec = Arc::new(InMemoryRecorder::new());
        let threads = 8usize;
        let per_thread = 250usize;
        let workers: Vec<_> = (0..threads)
            .map(|t| {
                let h = RecorderHandle::new(rec.clone());
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        let _timing = h.time(Component::SimRound);
                        h.emit(|| Event::TrainingCompleted {
                            user: t,
                            model: i,
                            cost: 1.0,
                            quality: 0.5,
                            parent: 0,
                        });
                        h.count("rounds", 1);
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        let total = threads * per_thread;
        assert_eq!(rec.num_events(), total);
        assert_eq!(rec.counter("rounds"), total as u64);
        assert_eq!(rec.timing(Component::SimRound).count(), total as u64);
        let stats = rec.per_user_stats();
        assert_eq!(stats.len(), threads);
        assert!(stats.values().all(|s| s.served == per_thread as u64));
    }

    #[test]
    fn jsonl_is_one_line_per_event() {
        let r = InMemoryRecorder::new();
        assert_eq!(r.to_jsonl(), "");
        r.record(Event::HybridFallback {
            reason: "a".into(),
            parent: 0,
        });
        r.record(Event::PosteriorUpdated {
            arm: 1,
            reward: 0.5,
            num_obs: 2,
            cond: 1.0,
            parent: 0,
        });
        let jsonl = r.to_jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        for line in jsonl.lines() {
            Event::from_json(line).unwrap();
        }
    }
}
