//! Hot-path self-profiling: aggregated call-tree profiles over spans.
//!
//! Two producers build the same structure:
//!
//! * [`CallTreeProfile::fold`] rebuilds the tree *offline* from any
//!   [`Event::SpanStart`]/[`Event::SpanEnd`] stream — a loaded trace file,
//!   an [`InMemoryRecorder`](crate::InMemoryRecorder) dump, a rotated
//!   segment. Folding never panics: truncated or interleaved streams are
//!   tolerated and the damage is *counted* ([`CallTreeProfile::unclosed_spans`],
//!   [`CallTreeProfile::orphan_ends`]) instead of hidden.
//! * A live [`Profiler`], registered process-wide with
//!   [`set_global_profiler`], maintains the tree *online* from
//!   [`SpanGuard`](crate::SpanGuard) enter/exit without materializing any
//!   events — spans profile even through noop recorder handles, so a
//!   benchmark can attribute time with zero event traffic.
//!
//! Nodes are keyed by span-name *path* (`scheduler_step → pick_user`),
//! and each carries call count, total and self wall-ns, a per-call latency
//! [`QuantileSketch`] (constant memory; equal-alpha profiles merge
//! losslessly across rotated segments), and — when the binary installs
//! [`CountingAlloc`](crate::CountingAlloc) — allocations, bytes, and peak
//! live-byte growth attributed to the node.
//!
//! When no profiler is registered the per-span cost is one relaxed atomic
//! load; the noop span path stays allocation-free.

use crate::alloc;
use crate::event::Event;
use crate::sketch::{QuantileSketch, DEFAULT_SKETCH_ALPHA};
use crate::span::trace_ts_ns;
use parking_lot::{Mutex, RwLock};
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Bucket cap for per-node latency sketches; spans of one phase cluster
/// within a few orders of magnitude, so this is far more than needed.
const LATENCY_SKETCH_MAX_BUCKETS: usize = 256;

/// Index of the synthetic root node present in every profile.
const ROOT: usize = 0;

fn latency_sketch() -> QuantileSketch {
    QuantileSketch::with_max_buckets(DEFAULT_SKETCH_ALPHA, LATENCY_SKETCH_MAX_BUCKETS)
}

/// One aggregated node of a call-tree profile: every span occurrence with
/// the same name *path* folds into the same node.
#[derive(Debug, Clone)]
pub struct ProfileNode {
    /// Span name (empty for the synthetic root).
    pub name: String,
    /// Index of the parent node (`usize::MAX` for the root).
    pub parent: usize,
    /// Child node indices, in first-seen order.
    pub children: Vec<usize>,
    /// Number of span occurrences folded into this node.
    pub count: u64,
    /// Total wall-ns across occurrences (children included).
    pub total_ns: u64,
    /// Wall-ns not covered by profiled children.
    pub self_ns: u64,
    /// Per-occurrence total-duration sketch (ns).
    pub latency: QuantileSketch,
    /// Allocations attributed to this node's self-time (zero without a
    /// [`CountingAlloc`](crate::CountingAlloc); always zero offline).
    pub allocs: u64,
    /// Deallocations attributed to this node's self-time.
    pub frees: u64,
    /// Bytes allocated, attributed to this node's self-time.
    pub alloc_bytes: u64,
    /// Largest peak live-byte growth seen during any single occurrence
    /// (children included).
    pub peak_bytes: u64,
}

impl ProfileNode {
    fn new(name: String, parent: usize) -> Self {
        ProfileNode {
            name,
            parent,
            children: Vec::new(),
            count: 0,
            total_ns: 0,
            self_ns: 0,
            latency: latency_sketch(),
            allocs: 0,
            frees: 0,
            alloc_bytes: 0,
            peak_bytes: 0,
        }
    }
}

/// An aggregated call tree over span names. See the module docs for the
/// two ways to build one; [`merge`](CallTreeProfile::merge) combines
/// profiles from rotated segments, threads, or repeated runs.
#[derive(Debug, Clone)]
pub struct CallTreeProfile {
    /// Node arena; index 0 is the synthetic root and every node's parent
    /// index is smaller than its own.
    nodes: Vec<ProfileNode>,
    /// Spans whose `SpanEnd` never arrived (stream truncation, crash,
    /// rotation seam) — their partial time is *not* attributed.
    pub unclosed_spans: u64,
    /// `SpanEnd` events with no matching open span (head-truncated
    /// streams, duplicate closes).
    pub orphan_ends: u64,
    /// Live-profiler exits discarded because the profiler was swapped
    /// while their span was open.
    pub dropped_exits: u64,
}

impl Default for CallTreeProfile {
    fn default() -> Self {
        Self::new()
    }
}

impl CallTreeProfile {
    /// An empty profile holding only the synthetic root.
    pub fn new() -> Self {
        CallTreeProfile {
            nodes: vec![ProfileNode::new(String::new(), usize::MAX)],
            unclosed_spans: 0,
            orphan_ends: 0,
            dropped_exits: 0,
        }
    }

    /// All nodes; index 0 is the synthetic root.
    pub fn nodes(&self) -> &[ProfileNode] {
        &self.nodes
    }

    /// Whether any span occurrence has been folded in.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1 && self.nodes[ROOT].children.is_empty()
    }

    /// Total span occurrences closed into the tree.
    pub fn closed_spans(&self) -> u64 {
        self.nodes.iter().skip(1).map(|n| n.count).sum()
    }

    /// Child of `parent` named `name`, creating it if absent.
    fn find_or_insert(&mut self, parent: usize, name: &str) -> usize {
        if let Some(&child) = self.nodes[parent]
            .children
            .iter()
            .find(|&&c| self.nodes[c].name == name)
        {
            return child;
        }
        let idx = self.nodes.len();
        self.nodes.push(ProfileNode::new(name.to_string(), parent));
        self.nodes[parent].children.push(idx);
        idx
    }

    fn close_occurrence(&mut self, node: usize, dur_ns: u64, child_ns: u64) {
        let n = &mut self.nodes[node];
        n.count += 1;
        n.total_ns += dur_ns;
        n.self_ns += dur_ns.saturating_sub(child_ns);
        n.latency.insert(dur_ns as f64);
    }

    /// Folds a span stream into an aggregated call tree.
    ///
    /// Parenting uses span ids (not stack order), so interleaved spans
    /// from multiple threads fold correctly. Malformed streams never
    /// panic: ends without starts bump [`orphan_ends`](Self::orphan_ends),
    /// starts without ends bump [`unclosed_spans`](Self::unclosed_spans)
    /// and contribute no time.
    pub fn fold(events: &[Event]) -> CallTreeProfile {
        struct OpenSpan {
            node: usize,
            parent_span: u64,
            start_ns: u64,
            child_ns: u64,
        }
        let mut profile = CallTreeProfile::new();
        let mut open: HashMap<u64, OpenSpan> = HashMap::new();
        for event in events {
            match event {
                Event::SpanStart {
                    span,
                    parent,
                    name,
                    ts_ns,
                } => {
                    let parent_node = open.get(parent).map_or(ROOT, |o| o.node);
                    let node = profile.find_or_insert(parent_node, name);
                    let prev = open.insert(
                        *span,
                        OpenSpan {
                            node,
                            parent_span: *parent,
                            start_ns: *ts_ns,
                            child_ns: 0,
                        },
                    );
                    if prev.is_some() {
                        // A reused span id clobbers the stale entry; the
                        // earlier open can no longer close.
                        profile.unclosed_spans += 1;
                    }
                }
                Event::SpanEnd { span, ts_ns } => match open.remove(span) {
                    Some(o) => {
                        let dur = ts_ns.saturating_sub(o.start_ns);
                        profile.close_occurrence(o.node, dur, o.child_ns);
                        if let Some(p) = open.get_mut(&o.parent_span) {
                            p.child_ns += dur;
                        }
                    }
                    None => profile.orphan_ends += 1,
                },
                _ => {}
            }
        }
        profile.unclosed_spans += open.len() as u64;
        profile
    }

    /// Merges `other` into `self` node-by-node (matched by name path):
    /// counts, times, and allocation counters add; latency sketches merge
    /// losslessly; peaks take the max. `fold(a ++ b)` equals
    /// `merge(fold(a), fold(b))` for well-formed `a` and `b`.
    pub fn merge(&mut self, other: &CallTreeProfile) {
        self.unclosed_spans += other.unclosed_spans;
        self.orphan_ends += other.orphan_ends;
        self.dropped_exits += other.dropped_exits;
        // Parents precede children in the arena, so a single in-order pass
        // always finds the mapped parent before its children.
        let mut map = vec![usize::MAX; other.nodes.len()];
        map[ROOT] = ROOT;
        for idx in 1..other.nodes.len() {
            let o = &other.nodes[idx];
            let mine = self.find_or_insert(map[o.parent], &o.name);
            map[idx] = mine;
            let n = &mut self.nodes[mine];
            n.count += o.count;
            n.total_ns += o.total_ns;
            n.self_ns += o.self_ns;
            n.latency.merge(&o.latency);
            n.allocs += o.allocs;
            n.frees += o.frees;
            n.alloc_bytes += o.alloc_bytes;
            n.peak_bytes = n.peak_bytes.max(o.peak_bytes);
        }
    }

    /// The node at name path `path` (root-relative), if present.
    pub fn find(&self, path: &[&str]) -> Option<&ProfileNode> {
        let mut idx = ROOT;
        for name in path {
            idx = *self.nodes[idx]
                .children
                .iter()
                .find(|&&c| self.nodes[c].name == *name)?;
        }
        Some(&self.nodes[idx])
    }

    /// Sum of `self_ns` over the subtree rooted at `idx`.
    fn subtree_self_ns(&self, idx: usize) -> u64 {
        let mut total = self.nodes[idx].self_ns;
        for &c in &self.nodes[idx].children {
            total += self.subtree_self_ns(c);
        }
        total
    }

    /// Attribution coverage for spans named `name`: returns
    /// `(attributed_ns, total_ns)` where `attributed` sums self-time over
    /// the named nodes *and their descendants* and `total` is the named
    /// nodes' wall time. The ratio is 1.0 when every nanosecond of the
    /// phase decomposed cleanly; a shortfall means unbalanced spans or
    /// clock skew leaked time. `None` if no node carries that name.
    pub fn phase_coverage(&self, name: &str) -> Option<(u64, u64)> {
        let mut attributed = 0u64;
        let mut total = 0u64;
        let mut seen = false;
        for idx in 1..self.nodes.len() {
            if self.nodes[idx].name == name {
                seen = true;
                attributed += self.subtree_self_ns(idx);
                total += self.nodes[idx].total_ns;
            }
        }
        seen.then_some((attributed, total))
    }

    /// Per-phase rollup: nodes sharing a name aggregate into one row
    /// regardless of where they sit in the tree; rows sort by self-time,
    /// heaviest first.
    pub fn phase_table(&self) -> Vec<PhaseRow> {
        let mut order: Vec<String> = Vec::new();
        let mut rows: HashMap<String, PhaseRow> = HashMap::new();
        for node in self.nodes.iter().skip(1) {
            let row = rows.entry(node.name.clone()).or_insert_with(|| {
                order.push(node.name.clone());
                PhaseRow {
                    name: node.name.clone(),
                    calls: 0,
                    total_ns: 0,
                    self_ns: 0,
                    latency: latency_sketch(),
                    allocs: 0,
                    frees: 0,
                    alloc_bytes: 0,
                    peak_bytes: 0,
                }
            });
            row.calls += node.count;
            row.total_ns += node.total_ns;
            row.self_ns += node.self_ns;
            row.latency.merge(&node.latency);
            row.allocs += node.allocs;
            row.frees += node.frees;
            row.alloc_bytes += node.alloc_bytes;
            row.peak_bytes = row.peak_bytes.max(node.peak_bytes);
        }
        let mut table: Vec<PhaseRow> = order.into_iter().filter_map(|n| rows.remove(&n)).collect();
        table.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.name.cmp(&b.name)));
        table
    }

    /// Brendan Gregg folded-stacks text: one line per node,
    /// `root;child;leaf self_ns`, ready for `flamegraph.pl` or speedscope.
    pub fn folded_stacks(&self) -> String {
        let mut out = String::new();
        let mut path: Vec<&str> = Vec::new();
        self.fold_stacks_into(ROOT, &mut path, &mut out);
        out
    }

    fn fold_stacks_into<'a>(&'a self, idx: usize, path: &mut Vec<&'a str>, out: &mut String) {
        if idx != ROOT {
            path.push(&self.nodes[idx].name);
            if self.nodes[idx].count > 0 {
                let _ = writeln!(out, "{} {}", path.join(";"), self.nodes[idx].self_ns);
            }
        }
        for &c in &self.nodes[idx].children {
            self.fold_stacks_into(c, path, out);
        }
        if idx != ROOT {
            path.pop();
        }
    }

    /// The profile as a JSON document: data-quality counters plus the
    /// recursive node tree with sketch-derived latency quantiles.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"schema\":\"easeml-profile\",\"version\":1,\
             \"closed_spans\":{},\"unclosed_spans\":{},\"orphan_ends\":{},\
             \"dropped_exits\":{},\"alloc_counters_active\":{},\"root\":",
            self.closed_spans(),
            self.unclosed_spans,
            self.orphan_ends,
            self.dropped_exits,
            alloc::counting_allocator_active(),
        ));
        self.node_json_into(ROOT, &mut out);
        out.push('}');
        out
    }

    fn node_json_into(&self, idx: usize, out: &mut String) {
        let n = &self.nodes[idx];
        let q = |p: f64| n.latency.quantile(p).unwrap_or(0.0).round() as u64;
        let _ = write!(
            out,
            "{{\"name\":{},\"count\":{},\"total_ns\":{},\"self_ns\":{},\
             \"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{},\"max_ns\":{},\
             \"allocs\":{},\"frees\":{},\"alloc_bytes\":{},\"peak_bytes\":{},\
             \"children\":[",
            crate::json::to_string(&n.name),
            n.count,
            n.total_ns,
            n.self_ns,
            q(0.5),
            q(0.95),
            q(0.99),
            n.latency.max().unwrap_or(0.0).round() as u64,
            n.allocs,
            n.frees,
            n.alloc_bytes,
            n.peak_bytes,
        );
        for (i, &c) in n.children.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            self.node_json_into(c, out);
        }
        out.push_str("]}");
    }
}

/// One row of [`CallTreeProfile::phase_table`]: a per-span-name rollup.
#[derive(Debug, Clone)]
pub struct PhaseRow {
    /// Span name.
    pub name: String,
    /// Occurrences across the whole tree.
    pub calls: u64,
    /// Total wall-ns (children included).
    pub total_ns: u64,
    /// Self wall-ns.
    pub self_ns: u64,
    /// Merged per-occurrence latency sketch (ns).
    pub latency: QuantileSketch,
    /// Self-attributed allocations.
    pub allocs: u64,
    /// Self-attributed deallocations.
    pub frees: u64,
    /// Self-attributed bytes allocated.
    pub alloc_bytes: u64,
    /// Largest single-occurrence peak live-byte growth.
    pub peak_bytes: u64,
}

impl PhaseRow {
    /// Mean self-ns per call (0 when the phase never ran).
    pub fn self_ns_per_call(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.self_ns as f64 / self.calls as f64
        }
    }
}

/// The empirical scaling law fitted for one phase across a tenant-count
/// sweep: `self_ns_per_call ≈ c · U^exponent`.
#[derive(Debug, Clone)]
pub struct PhaseScaling {
    /// Span name the fit is for.
    pub phase: String,
    /// Least-squares slope of `ln(self ns/call)` against `ln U`.
    pub exponent: f64,
    /// The fitted points: `(U, self_ns_per_call)`.
    pub points: Vec<(usize, f64)>,
}

/// Fits a log-log regression of per-call self-time against tenant count
/// for every phase observed in at least two distinct-U runs. The slope is
/// the empirical cost exponent: ~1 reads as O(U), ~0 as constant.
pub fn scaling_exponents(runs: &[(usize, &CallTreeProfile)]) -> Vec<PhaseScaling> {
    let mut order: Vec<String> = Vec::new();
    let mut points: HashMap<String, Vec<(usize, f64)>> = HashMap::new();
    for (users, profile) in runs {
        for row in profile.phase_table() {
            if row.calls == 0 {
                continue;
            }
            let entry = points.entry(row.name.clone()).or_insert_with(|| {
                order.push(row.name.clone());
                Vec::new()
            });
            entry.push((*users, row.self_ns_per_call()));
        }
    }
    let mut out = Vec::new();
    for phase in order {
        let pts = points.remove(&phase).expect("phase recorded above");
        let mut distinct: Vec<usize> = pts.iter().map(|p| p.0).collect();
        distinct.sort_unstable();
        distinct.dedup();
        if distinct.len() < 2 {
            continue;
        }
        // Least squares on (x, y) = (ln U, ln per-call self ns); clamp the
        // per-call time to 1ns so empty phases cannot poison the log.
        let xy: Vec<(f64, f64)> = pts
            .iter()
            .map(|&(u, ns)| ((u.max(1) as f64).ln(), ns.max(1.0).ln()))
            .collect();
        let n = xy.len() as f64;
        let mean_x = xy.iter().map(|p| p.0).sum::<f64>() / n;
        let mean_y = xy.iter().map(|p| p.1).sum::<f64>() / n;
        let var_x: f64 = xy.iter().map(|p| (p.0 - mean_x).powi(2)).sum();
        let cov: f64 = xy.iter().map(|p| (p.0 - mean_x) * (p.1 - mean_y)).sum();
        if var_x <= 0.0 {
            continue;
        }
        out.push(PhaseScaling {
            phase,
            exponent: cov / var_x,
            points: pts,
        });
    }
    out
}

// ---------------------------------------------------------------------------
// Live profiler
// ---------------------------------------------------------------------------

/// A live call-tree profiler fed by [`SpanGuard`](crate::SpanGuard)
/// enter/exit. Register with [`set_global_profiler`]; read back with
/// [`Profiler::snapshot`]. Thread-safe: the tree sits behind a mutex that
/// span exits touch briefly; per-thread span stacks are lock-free.
#[derive(Debug, Default)]
pub struct Profiler {
    tree: Mutex<CallTreeProfile>,
    dropped_exits: AtomicU64,
}

impl Profiler {
    /// An empty profiler.
    pub fn new() -> Self {
        Profiler {
            tree: Mutex::new(CallTreeProfile::new()),
            dropped_exits: AtomicU64::new(0),
        }
    }

    /// A copy of the current tree, with dropped-exit accounting folded in.
    pub fn snapshot(&self) -> CallTreeProfile {
        let mut tree = self.tree.lock().clone();
        tree.dropped_exits += self.dropped_exits.load(Ordering::Relaxed);
        tree
    }

    /// Clears the tree (dropped-exit count included).
    pub fn reset(&self) {
        *self.tree.lock() = CallTreeProfile::new();
        self.dropped_exits.store(0, Ordering::Relaxed);
    }
}

/// Fast-path flag mirroring whether a global profiler is registered.
static PROFILING: AtomicBool = AtomicBool::new(false);
/// The registered profiler; a `RwLock` so span enter/exit never block on
/// each other, only (rarely) on registration changes.
static PROFILER: RwLock<Option<Arc<Profiler>>> = RwLock::new(None);
/// Bumped on every registration change; frames opened under an older
/// generation are discarded at exit instead of corrupting the new tree.
static GENERATION: AtomicU64 = AtomicU64::new(0);

/// Installs (or, with `None`, removes) the process-global live profiler
/// and returns the previous one. Spans already open keep running but
/// their exits are discarded (counted as `dropped_exits` where possible),
/// so swap at a quiescent point for exact trees.
pub fn set_global_profiler(profiler: Option<Arc<Profiler>>) -> Option<Arc<Profiler>> {
    let mut slot = PROFILER.write();
    GENERATION.fetch_add(1, Ordering::Relaxed);
    PROFILING.store(profiler.is_some(), Ordering::Release);
    std::mem::replace(&mut *slot, profiler)
}

/// The currently registered global profiler, if any.
pub fn global_profiler() -> Option<Arc<Profiler>> {
    if !PROFILING.load(Ordering::Acquire) {
        return None;
    }
    PROFILER.read().clone()
}

/// Whether a global profiler is registered (one relaxed atomic load).
pub fn profiling_enabled() -> bool {
    PROFILING.load(Ordering::Relaxed)
}

/// One open span on this thread's profiling stack.
struct Frame {
    generation: u64,
    node: usize,
    start_ns: u64,
    child_ns: u64,
    start_allocs: u64,
    start_frees: u64,
    start_bytes: u64,
    start_live: u64,
    child_allocs: u64,
    child_frees: u64,
    child_bytes: u64,
    saved_peak: u64,
}

thread_local! {
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

/// Called by `SpanGuard::open` *before* any recorder check, so spans
/// profile even through noop handles. Returns whether a frame was pushed
/// (the guard must then call [`span_exit`] on drop).
pub(crate) fn span_enter(name: &'static str) -> bool {
    if !PROFILING.load(Ordering::Relaxed) {
        return false;
    }
    let Some(profiler) = PROFILER.read().clone() else {
        return false;
    };
    let generation = GENERATION.load(Ordering::Relaxed);
    let parent = STACK.with(|s| {
        s.borrow()
            .last()
            .filter(|f| f.generation == generation)
            .map_or(ROOT, |f| f.node)
    });
    let node = alloc::with_counting_paused(|| profiler.tree.lock().find_or_insert(parent, name));
    let stats = alloc::thread_alloc_stats();
    let saved_peak = alloc::reset_peak();
    // Clock read last: tree bookkeeping above lands in the *parent's*
    // self-time, never inside this span.
    let start_ns = trace_ts_ns();
    STACK.with(|s| {
        s.borrow_mut().push(Frame {
            generation,
            node,
            start_ns,
            child_ns: 0,
            start_allocs: stats.allocs,
            start_frees: stats.frees,
            start_bytes: stats.bytes,
            start_live: stats.live_bytes,
            child_allocs: 0,
            child_frees: 0,
            child_bytes: 0,
            saved_peak,
        })
    });
    true
}

/// Called by `SpanGuard`'s drop when [`span_enter`] pushed a frame.
pub(crate) fn span_exit() {
    let Some(frame) = STACK.with(|s| s.borrow_mut().pop()) else {
        // Enter/exit are paired by the guard's `profiled` flag, so an
        // empty stack here means the thread's stack was torn down.
        if let Some(p) = global_profiler() {
            p.dropped_exits.fetch_add(1, Ordering::Relaxed);
        }
        return;
    };
    let end_ns = trace_ts_ns();
    let stats = alloc::thread_alloc_stats();
    let dur_ns = end_ns.saturating_sub(frame.start_ns);
    let span_allocs = stats.allocs.saturating_sub(frame.start_allocs);
    let span_frees = stats.frees.saturating_sub(frame.start_frees);
    let span_bytes = stats.bytes.saturating_sub(frame.start_bytes);
    let span_peak = alloc::current_peak().saturating_sub(frame.start_live);
    alloc::restore_peak(frame.saved_peak);

    // Charge this span's inclusive figures to the parent frame so the
    // parent can subtract them from its own self-attribution.
    STACK.with(|s| {
        if let Some(top) = s.borrow_mut().last_mut() {
            if top.generation == frame.generation {
                top.child_ns += dur_ns;
                top.child_allocs += span_allocs;
                top.child_frees += span_frees;
                top.child_bytes += span_bytes;
            }
        }
    });

    if GENERATION.load(Ordering::Relaxed) != frame.generation {
        // The profiler this frame indexes into is gone; its node index
        // may not exist (or mean something else) in the new tree.
        if let Some(p) = global_profiler() {
            p.dropped_exits.fetch_add(1, Ordering::Relaxed);
        }
        return;
    }
    let Some(profiler) = PROFILER.read().clone() else {
        return;
    };
    alloc::with_counting_paused(|| {
        let mut tree = profiler.tree.lock();
        let n = &mut tree.nodes[frame.node];
        n.count += 1;
        n.total_ns += dur_ns;
        n.self_ns += dur_ns.saturating_sub(frame.child_ns);
        n.latency.insert(dur_ns as f64);
        n.allocs += span_allocs.saturating_sub(frame.child_allocs);
        n.frees += span_frees.saturating_sub(frame.child_frees);
        n.alloc_bytes += span_bytes.saturating_sub(frame.child_bytes);
        if span_peak > n.peak_bytes {
            n.peak_bytes = span_peak;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::InMemoryRecorder;
    use crate::RecorderHandle;

    fn start(span: u64, parent: u64, name: &str, ts_ns: u64) -> Event {
        Event::SpanStart {
            span,
            parent,
            name: name.to_string(),
            ts_ns,
        }
    }

    fn end(span: u64, ts_ns: u64) -> Event {
        Event::SpanEnd { span, ts_ns }
    }

    #[test]
    fn fold_builds_an_aggregated_tree() {
        // Two steps: one with pick_user(10) + train(20), one with just
        // pick_user(5). Step totals 100 and 40.
        let events = vec![
            start(1, 0, "scheduler_step", 0),
            start(2, 1, "pick_user", 10),
            end(2, 20),
            start(3, 1, "train", 30),
            end(3, 50),
            end(1, 100),
            start(4, 0, "scheduler_step", 200),
            start(5, 4, "pick_user", 210),
            end(5, 215),
            end(4, 240),
        ];
        let p = CallTreeProfile::fold(&events);
        assert_eq!(p.unclosed_spans, 0);
        assert_eq!(p.orphan_ends, 0);
        assert_eq!(p.closed_spans(), 5);

        let step = p.find(&["scheduler_step"]).unwrap();
        assert_eq!(step.count, 2);
        assert_eq!(step.total_ns, 140);
        assert_eq!(step.self_ns, 140 - 10 - 20 - 5);
        let pick = p.find(&["scheduler_step", "pick_user"]).unwrap();
        assert_eq!((pick.count, pick.total_ns, pick.self_ns), (2, 15, 15));
        let train = p.find(&["scheduler_step", "train"]).unwrap();
        assert_eq!((train.count, train.total_ns, train.self_ns), (1, 20, 20));
        // Same name under a different path is a different node.
        assert!(p.find(&["pick_user"]).is_none());

        let (attributed, total) = p.phase_coverage("scheduler_step").unwrap();
        assert_eq!(attributed, 140);
        assert_eq!(total, 140);
    }

    #[test]
    fn fold_counts_malformed_streams_instead_of_panicking() {
        let events = vec![
            end(99, 5),                        // orphan end
            start(1, 0, "scheduler_step", 10), // never closed
            start(2, 1, "pick_user", 20),
            end(2, 30),
            end(2, 31), // double close -> orphan
        ];
        let p = CallTreeProfile::fold(&events);
        assert_eq!(p.orphan_ends, 2);
        assert_eq!(p.unclosed_spans, 1);
        // The closed child still attributed; the unclosed parent did not.
        let step = p.find(&["scheduler_step"]).unwrap();
        assert_eq!((step.count, step.total_ns), (0, 0));
        let pick = p.find(&["scheduler_step", "pick_user"]).unwrap();
        assert_eq!((pick.count, pick.total_ns), (1, 10));
    }

    #[test]
    fn fold_parents_by_span_id_across_interleaved_threads() {
        // Thread A opens 1, thread B opens 2 as a root, both close out of
        // stack order — id-based parenting keeps them separate roots.
        let events = vec![
            start(1, 0, "a", 0),
            start(2, 0, "b", 5),
            end(1, 10),
            end(2, 25),
        ];
        let p = CallTreeProfile::fold(&events);
        assert_eq!(p.find(&["a"]).unwrap().total_ns, 10);
        assert_eq!(p.find(&["b"]).unwrap().total_ns, 20);
        assert_eq!(p.unclosed_spans + p.orphan_ends, 0);
    }

    #[test]
    fn merge_matches_folding_the_concatenation() {
        let a = vec![
            start(1, 0, "scheduler_step", 0),
            start(2, 1, "pick_user", 3),
            end(2, 9),
            end(1, 20),
        ];
        let b = vec![
            start(7, 0, "scheduler_step", 100),
            start(8, 7, "train", 110),
            end(8, 150),
            end(7, 160),
            start(9, 0, "dispatch", 200),
            end(9, 230),
        ];
        let concat: Vec<Event> = a.iter().chain(b.iter()).cloned().collect();
        let folded = CallTreeProfile::fold(&concat);
        let mut merged = CallTreeProfile::fold(&a);
        merged.merge(&CallTreeProfile::fold(&b));

        assert_eq!(folded.nodes.len(), merged.nodes.len());
        for (f, m) in folded.nodes.iter().zip(merged.nodes.iter()) {
            assert_eq!(f.name, m.name);
            assert_eq!(f.count, m.count);
            assert_eq!(f.total_ns, m.total_ns);
            assert_eq!(f.self_ns, m.self_ns);
            assert_eq!(f.latency.count(), m.latency.count());
            assert_eq!(f.latency.quantile(0.5), m.latency.quantile(0.5));
        }
        assert_eq!(folded.folded_stacks(), merged.folded_stacks());
    }

    #[test]
    fn folded_stacks_and_json_render() {
        let events = vec![
            start(1, 0, "scheduler_step", 0),
            start(2, 1, "pick_user", 10),
            end(2, 30),
            end(1, 50),
        ];
        let p = CallTreeProfile::fold(&events);
        let folded = p.folded_stacks();
        assert_eq!(folded, "scheduler_step 30\nscheduler_step;pick_user 20\n");
        let json = p.to_json();
        assert!(json.starts_with("{\"schema\":\"easeml-profile\""));
        assert!(json.contains("\"name\":\"pick_user\""));
        assert!(json.contains("\"closed_spans\":2"));
        crate::json::parse(&json).expect("profile JSON must parse");
    }

    #[test]
    fn phase_table_rolls_up_across_paths() {
        // pick_user appears under two parents; the table merges them.
        let events = vec![
            start(1, 0, "scheduler_step", 0),
            start(2, 1, "pick_user", 0),
            end(2, 10),
            end(1, 15),
            start(3, 0, "dispatch", 20),
            start(4, 3, "pick_user", 20),
            end(4, 50),
            end(3, 55),
        ];
        let table = CallTreeProfile::fold(&events).phase_table();
        let pick = table.iter().find(|r| r.name == "pick_user").unwrap();
        assert_eq!((pick.calls, pick.total_ns, pick.self_ns), (2, 40, 40));
        // Sorted heaviest-self first.
        assert_eq!(table[0].name, "pick_user");
    }

    #[test]
    fn scaling_exponent_reads_linear_and_constant_phases() {
        // Synthetic sweep: pick_user self/call grows like U, train flat.
        let mut runs = Vec::new();
        for &u in &[1_000usize, 10_000, 100_000] {
            let per_call = u as u64;
            let events = vec![
                start(1, 0, "scheduler_step", 0),
                start(2, 1, "pick_user", 0),
                end(2, per_call),
                start(3, 1, "train", per_call),
                end(3, per_call + 5_000),
                end(1, per_call + 5_000),
            ];
            runs.push((u, CallTreeProfile::fold(&events)));
        }
        let borrowed: Vec<(usize, &CallTreeProfile)> = runs.iter().map(|(u, p)| (*u, p)).collect();
        let fits = scaling_exponents(&borrowed);
        let pick = fits.iter().find(|f| f.phase == "pick_user").unwrap();
        assert!(
            (pick.exponent - 1.0).abs() < 0.05,
            "pick_user exponent {}",
            pick.exponent
        );
        let train = fits.iter().find(|f| f.phase == "train").unwrap();
        assert!(
            train.exponent.abs() < 0.05,
            "train exponent {}",
            train.exponent
        );
        // scheduler_step has only 2 distinct... actually 3 distinct U; it
        // fits too, dominated by the linear child -> near 1 in total but
        // its *self* time is constant (0 -> clamped): just ensure present.
        assert!(fits.iter().any(|f| f.phase == "scheduler_step"));
    }

    // The global-profiler tests share mutable process state, so they run
    // as one test (mirroring the global-timer tests).
    #[test]
    fn live_profiler_global_lifecycle() {
        // -- spans profile through a *noop* handle once registered.
        let profiler = Arc::new(Profiler::new());
        let prev = set_global_profiler(Some(profiler.clone()));
        assert!(prev.is_none(), "no other test may leave a profiler set");
        assert!(profiling_enabled());

        let handle = RecorderHandle::noop();
        for _ in 0..3 {
            let _step = handle.span("scheduler_step");
            let _pick = handle.span("pick_user");
        }
        let snap = profiler.snapshot();
        let step = snap.find(&["scheduler_step"]).unwrap();
        assert_eq!(step.count, 3);
        let pick = snap.find(&["scheduler_step", "pick_user"]).unwrap();
        assert_eq!(pick.count, 3);
        assert!(step.total_ns >= pick.total_ns);
        assert!(step.self_ns <= step.total_ns);
        assert_eq!(snap.dropped_exits, 0);

        // -- the same spans through a *recording* handle also hit the
        // recorder, and the offline fold of those events matches the live
        // tree shape.
        profiler.reset();
        let recorder = Arc::new(InMemoryRecorder::new());
        let rec_handle = RecorderHandle::new(recorder.clone());
        {
            let _step = rec_handle.span("scheduler_step");
            let _pick = rec_handle.span("pick_user");
        }
        let live = profiler.snapshot();
        let folded = CallTreeProfile::fold(&recorder.events());
        assert_eq!(live.nodes.len(), folded.nodes.len());
        for (l, f) in live.nodes.iter().zip(folded.nodes.iter()) {
            assert_eq!(l.name, f.name);
            assert_eq!(l.count, f.count);
        }

        // -- swapping the profiler mid-span discards the stale exit.
        let guard = handle.span("scheduler_step");
        let replacement = Arc::new(Profiler::new());
        let prev = set_global_profiler(Some(replacement.clone()));
        assert!(Arc::ptr_eq(&prev.unwrap(), &profiler));
        drop(guard);
        let snap = replacement.snapshot();
        assert!(snap.find(&["scheduler_step"]).is_none());
        assert_eq!(snap.dropped_exits, 1);

        // -- unregistering restores the zero-cost path.
        set_global_profiler(None);
        assert!(!profiling_enabled());
        assert!(global_profiler().is_none());
        drop(handle.span("scheduler_step"));
        assert!(replacement.snapshot().find(&["scheduler_step"]).is_none());
    }
}
