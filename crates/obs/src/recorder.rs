//! The [`Recorder`] sink trait and the cheap [`RecorderHandle`] through
//! which instrumented components reach it.

use crate::event::Event;
use crate::timer::ScopedTimer;
use std::fmt;
use std::sync::Arc;

/// A component of the system whose latency is tracked by scoped timers.
///
/// The discriminant doubles as an index into fixed-size histogram arrays,
/// so recording a timing never hashes or allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Component {
    /// Full Cholesky factorization of a Gram matrix.
    CholeskyFactor = 0,
    /// Triangular solve against an existing factor.
    CholeskySolve = 1,
    /// O(t²) incremental extension of a factor by one row/column.
    CholeskyExtend = 2,
    /// GP posterior mean/variance refresh after an observation.
    PosteriorRefresh = 3,
    /// One user-picking decision of a scheduler.
    SchedulerPick = 4,
    /// One arm-selection pass of a tenant's bandit policy.
    ArmSelect = 5,
    /// One full round of the simulation loop (pick + train + observe).
    SimRound = 6,
    /// One dispatch decision of the multi-device execution engine
    /// (pick user + pick arm + device placement).
    ExecDispatch = 7,
    /// One write-ahead-log record append (framing + write + policy sync).
    WalAppend = 8,
    /// One explicit write-ahead-log fsync (flush or checkpoint barrier).
    WalFsync = 9,
    /// One recovered round replayed from the write-ahead log.
    WalReplay = 10,
}

impl Component {
    /// Number of components (length of per-component arrays).
    pub const COUNT: usize = 11;

    /// Every component, in index order.
    pub const ALL: [Component; Component::COUNT] = [
        Component::CholeskyFactor,
        Component::CholeskySolve,
        Component::CholeskyExtend,
        Component::PosteriorRefresh,
        Component::SchedulerPick,
        Component::ArmSelect,
        Component::SimRound,
        Component::ExecDispatch,
        Component::WalAppend,
        Component::WalFsync,
        Component::WalReplay,
    ];

    /// Stable display name, e.g. `"cholesky/factor"`.
    pub fn name(self) -> &'static str {
        match self {
            Component::CholeskyFactor => "cholesky/factor",
            Component::CholeskySolve => "cholesky/solve",
            Component::CholeskyExtend => "cholesky/extend",
            Component::PosteriorRefresh => "gp/posterior-refresh",
            Component::SchedulerPick => "sched/pick",
            Component::ArmSelect => "bandit/arm-select",
            Component::SimRound => "sim/round",
            Component::ExecDispatch => "exec/dispatch",
            Component::WalAppend => "wal/append",
            Component::WalFsync => "wal/fsync",
            Component::WalReplay => "wal/replay",
        }
    }

    /// Index into per-component arrays (`0..Component::COUNT`).
    pub fn index(self) -> usize {
        self as usize
    }
}

/// A sink for structured events, counters, gauges, and timings.
///
/// Implementations must be thread-safe: the simulator and server record
/// from whatever thread executes a round, and the parallel-cluster
/// simulation records from several.
pub trait Recorder: Send + Sync {
    /// Records one structured [`Event`].
    fn record(&self, event: Event);

    /// Adds `delta` to a named monotonic counter.
    fn add_counter(&self, name: &'static str, delta: u64);

    /// Sets a named gauge to its latest value.
    fn set_gauge(&self, name: &'static str, value: f64);

    /// Records one latency sample, in nanoseconds, for `component`.
    fn record_timing(&self, component: Component, nanos: u64);
}

/// The do-nothing recorder: every method is an empty body the optimizer
/// erases. [`RecorderHandle::noop`] does not even reach these methods — the
/// handle short-circuits on its `None` — so this type mainly exists for
/// call sites that want a `&dyn Recorder` unconditionally.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn record(&self, _event: Event) {}
    fn add_counter(&self, _name: &'static str, _delta: u64) {}
    fn set_gauge(&self, _name: &'static str, _value: f64) {}
    fn record_timing(&self, _component: Component, _nanos: u64) {}
}

/// A cheap, cloneable handle to an optional [`Recorder`].
///
/// This is the type instrumented components store. The default handle is
/// disabled and costs one branch per instrumentation point: event
/// construction happens inside a closure that [`RecorderHandle::emit`] only
/// invokes when a recorder is attached, so the disabled path neither
/// allocates nor formats.
#[derive(Clone, Default)]
pub struct RecorderHandle {
    inner: Option<Arc<dyn Recorder>>,
}

impl RecorderHandle {
    /// The disabled handle (same as `Default`).
    pub fn noop() -> Self {
        RecorderHandle { inner: None }
    }

    /// A handle delivering to `recorder`.
    pub fn new(recorder: Arc<dyn Recorder>) -> Self {
        RecorderHandle {
            inner: Some(recorder),
        }
    }

    /// Whether a recorder is attached.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records the event built by `make`, which is only called when a
    /// recorder is attached — pass a closure so the disabled path stays
    /// allocation-free.
    pub fn emit<F: FnOnce() -> Event>(&self, make: F) {
        if let Some(recorder) = &self.inner {
            recorder.record(make());
        }
    }

    /// Adds to a named counter.
    pub fn count(&self, name: &'static str, delta: u64) {
        if let Some(recorder) = &self.inner {
            recorder.add_counter(name, delta);
        }
    }

    /// Sets a named gauge.
    pub fn gauge(&self, name: &'static str, value: f64) {
        if let Some(recorder) = &self.inner {
            recorder.set_gauge(name, value);
        }
    }

    /// Starts a scoped wall-clock timer for `component`; the elapsed time
    /// is recorded when the returned guard drops. Disabled handles return
    /// an inert guard without reading the clock.
    pub fn time(&self, component: Component) -> ScopedTimer<'_> {
        ScopedTimer::new(self.inner.as_deref(), component)
    }

    /// Opens a causal span named `name`: records [`Event::SpanStart`] now
    /// and the matching [`Event::SpanEnd`] when the guard drops, and makes
    /// the span the thread's [`current_span`](crate::current_span) for its
    /// lifetime so events emitted inside it can stamp it as their `parent`.
    /// Disabled handles return an inert guard — no allocation, no clock
    /// read, no thread-local access.
    pub fn span(&self, name: &'static str) -> crate::span::SpanGuard {
        crate::span::SpanGuard::open(self.inner.as_ref(), name)
    }

    /// The attached recorder, if any.
    pub fn recorder(&self) -> Option<&Arc<dyn Recorder>> {
        self.inner.as_ref()
    }
}

impl fmt::Debug for RecorderHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RecorderHandle")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::InMemoryRecorder;

    #[test]
    fn component_names_and_indices_are_consistent() {
        for (i, c) in Component::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert!(!c.name().is_empty());
        }
        let mut names: Vec<_> = Component::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Component::COUNT, "duplicate component name");
    }

    #[test]
    fn disabled_handle_never_builds_events() {
        let handle = RecorderHandle::noop();
        assert!(!handle.is_enabled());
        handle.emit(|| panic!("closure must not run on a disabled handle"));
        handle.count("x", 1);
        handle.gauge("y", 2.0);
        drop(handle.time(Component::SchedulerPick));
    }

    #[test]
    fn enabled_handle_delivers() {
        let recorder = Arc::new(InMemoryRecorder::new());
        let handle = RecorderHandle::new(recorder.clone());
        assert!(handle.is_enabled());
        handle.emit(|| Event::HybridFallback {
            reason: "test".into(),
            parent: 0,
        });
        handle.count("rounds", 2);
        handle.count("rounds", 3);
        handle.gauge("budget-left", 7.5);
        drop(handle.time(Component::ArmSelect));
        assert_eq!(recorder.events().len(), 1);
        assert_eq!(recorder.counter("rounds"), 5);
        assert_eq!(recorder.gauge("budget-left"), Some(7.5));
        assert_eq!(recorder.timing(Component::ArmSelect).count(), 1);
    }
}
