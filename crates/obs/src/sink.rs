//! Streaming sinks: moving telemetry out of process memory while the run
//! is still executing.
//!
//! The in-memory recorder is ideal for tests and short simulations, but a
//! long-running multi-tenant service cannot let its trace accumulate
//! unboundedly. A [`StreamingSink`] receives each event as it is recorded —
//! tagged with its 1-based sequence number — and is free to write it to
//! disk, a socket, or a folding aggregate. [`JsonlFileSink`] is the shipped
//! disk sink: buffered JSON-Lines writing with size-based rotation and
//! flush-on-drop. [`TeeRecorder`] is the splitter that forwards every
//! [`Recorder`] call to a primary recorder while fanning the event stream
//! out to any number of sinks.

use crate::event::Event;
use crate::recorder::{Component, Recorder};
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A destination for a live event stream.
///
/// Implementations must be thread-safe: the parallel simulator records from
/// several threads, and the HTTP exporter reads while the run writes. A
/// sink must never panic on I/O trouble — drop the line and keep counting
/// instead, so telemetry failures cannot take down the scheduler.
pub trait StreamingSink: Send + Sync {
    /// Delivers one event. `seq` is the event's 1-based sequence number in
    /// recording order (assigned by the [`TeeRecorder`]).
    fn append(&self, seq: u64, event: &Event);

    /// Pushes any buffered data towards its destination. Default: no-op.
    fn flush(&self) {}
}

/// The JSONL header line every [`JsonlFileSink`] segment starts with:
/// `{"schema":"easeml-trace","version":N}` (no trailing newline).
///
/// Offline loaders use it to detect the schema version before parsing
/// events; `N` is [`crate::TRACE_SCHEMA_VERSION`].
pub fn schema_header_line() -> String {
    format!(
        "{{\"schema\":\"easeml-trace\",\"version\":{}}}",
        crate::event::TRACE_SCHEMA_VERSION
    )
}

/// Default rotation threshold of [`JsonlFileSink`]: 8 MiB per file.
pub const DEFAULT_MAX_FILE_BYTES: u64 = 8 * 1024 * 1024;

/// Default number of rotated files [`JsonlFileSink`] keeps around.
pub const DEFAULT_KEEP_ROTATED: usize = 3;

struct FileSinkState {
    writer: Option<BufWriter<File>>,
    /// Bytes written to the *current* file (resets on rotation).
    written: u64,
    rotations: u64,
    dropped: u64,
    /// Cumulative bytes written across all segments (headers included).
    bytes_total: u64,
    /// Cumulative event lines written across all segments.
    lines_total: u64,
    /// Cumulative wall-clock nanoseconds spent inside `append`.
    append_ns: u64,
}

/// Point-in-time counters of one [`JsonlFileSink`] — the sink accounting
/// for itself, so silent trace loss (dropped writes, rotated-away
/// segments) is observable instead of only counted internally.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SinkStats {
    /// Cumulative bytes written across all segments, headers included.
    pub bytes_total: u64,
    /// Cumulative event lines written across all segments.
    pub lines_total: u64,
    /// Lines dropped because of I/O errors.
    pub dropped: u64,
    /// Times the current segment was rotated out.
    pub rotations: u64,
    /// Cumulative wall-clock nanoseconds spent appending (the sink's own
    /// overhead on the recording path).
    pub append_ns: u64,
}

/// A buffered JSON-Lines file sink with size-based rotation.
///
/// Each event is written as `{"seq":N,"event":{...}}` on its own line, so a
/// rotated segment remains self-describing (the sequence numbers survive
/// the file boundaries). When the current file exceeds the configured
/// threshold it is rotated shift-style: `trace.jsonl` → `trace.jsonl.1` →
/// `trace.jsonl.2` → …, keeping at most the configured number of rotated
/// segments and deleting the oldest. The buffer is flushed on drop, and
/// I/O errors are absorbed into a dropped-line counter rather than
/// propagated into the recording hot path.
pub struct JsonlFileSink {
    path: PathBuf,
    max_bytes: u64,
    keep_rotated: usize,
    state: Mutex<FileSinkState>,
}

impl JsonlFileSink {
    /// Creates (truncating) the sink file with default rotation settings
    /// ([`DEFAULT_MAX_FILE_BYTES`], [`DEFAULT_KEEP_ROTATED`]).
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the file cannot be created.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = File::create(&path)?;
        let mut writer = BufWriter::new(file);
        let written = write_header(&mut writer);
        Ok(JsonlFileSink {
            path,
            max_bytes: DEFAULT_MAX_FILE_BYTES,
            keep_rotated: DEFAULT_KEEP_ROTATED,
            state: Mutex::new(FileSinkState {
                writer: Some(writer),
                written,
                rotations: 0,
                dropped: 0,
                bytes_total: written,
                lines_total: 0,
                append_ns: 0,
            }),
        })
    }

    /// Sets the rotation policy: rotate once the current file exceeds
    /// `max_bytes`, keeping at most `keep_rotated` rotated segments
    /// (`<path>.1` is the most recent). `keep_rotated = 0` truncates in
    /// place on rotation.
    pub fn with_rotation(mut self, max_bytes: u64, keep_rotated: usize) -> Self {
        self.max_bytes = max_bytes.max(1);
        self.keep_rotated = keep_rotated;
        self
    }

    /// The path of the current (unrotated) segment.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// How many times the file has been rotated.
    pub fn rotations(&self) -> u64 {
        self.state.lock().rotations
    }

    /// How many lines were dropped because of I/O errors.
    pub fn dropped(&self) -> u64 {
        self.state.lock().dropped
    }

    /// A point-in-time copy of the sink's self-accounting counters, for
    /// `/metrics` exposure and report header checks.
    pub fn stats(&self) -> SinkStats {
        let state = self.state.lock();
        SinkStats {
            bytes_total: state.bytes_total,
            lines_total: state.lines_total,
            dropped: state.dropped,
            rotations: state.rotations,
            append_ns: state.append_ns,
        }
    }

    fn rotated_path(&self, n: usize) -> PathBuf {
        let mut os = self.path.as_os_str().to_os_string();
        os.push(format!(".{n}"));
        PathBuf::from(os)
    }

    /// Shift-rotates the segments and reopens a fresh current file. Any
    /// step that fails falls back to truncating in place so the sink keeps
    /// accepting events.
    fn rotate(&self, state: &mut FileSinkState) {
        if let Some(w) = state.writer.as_mut() {
            let _ = w.flush();
        }
        state.writer = None;
        if self.keep_rotated > 0 {
            let _ = std::fs::remove_file(self.rotated_path(self.keep_rotated));
            for n in (1..self.keep_rotated).rev() {
                let _ = std::fs::rename(self.rotated_path(n), self.rotated_path(n + 1));
            }
            let _ = std::fs::rename(&self.path, self.rotated_path(1));
        }
        match OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&self.path)
        {
            Ok(file) => {
                let mut writer = BufWriter::new(file);
                state.written = write_header(&mut writer);
                state.bytes_total += state.written;
                state.writer = Some(writer);
                state.rotations += 1;
            }
            Err(_) => {
                // Leave the writer disabled; subsequent appends count as
                // dropped until a future rotation succeeds.
            }
        }
    }
}

/// Writes the schema header line to a fresh segment, returning the bytes
/// written (0 if the write failed — the segment then simply lacks its
/// header, which loaders tolerate).
fn write_header(writer: &mut BufWriter<File>) -> u64 {
    let mut header = schema_header_line();
    header.push('\n');
    match writer.write_all(header.as_bytes()) {
        Ok(()) => header.len() as u64,
        Err(_) => 0,
    }
}

impl StreamingSink for JsonlFileSink {
    fn append(&self, seq: u64, event: &Event) {
        let start = std::time::Instant::now();
        let mut line = String::with_capacity(64);
        line.push_str("{\"seq\":");
        line.push_str(&seq.to_string());
        line.push_str(",\"event\":");
        line.push_str(&event.to_json());
        line.push_str("}\n");

        let mut state = self.state.lock();
        if state.writer.is_none() {
            // A previous rotation failed to reopen; retry before giving up
            // on this line.
            self.rotate(&mut state);
        }
        match state.writer.as_mut() {
            Some(w) => {
                if w.write_all(line.as_bytes()).is_ok() {
                    state.written += line.len() as u64;
                    state.bytes_total += line.len() as u64;
                    state.lines_total += 1;
                    if state.written >= self.max_bytes {
                        self.rotate(&mut state);
                    }
                } else {
                    state.dropped += 1;
                }
            }
            None => state.dropped += 1,
        }
        state.append_ns += start.elapsed().as_nanos() as u64;
    }

    fn flush(&self) {
        if let Some(w) = self.state.lock().writer.as_mut() {
            let _ = w.flush();
        }
    }
}

impl Drop for JsonlFileSink {
    fn drop(&mut self) {
        self.flush();
    }
}

/// A [`Recorder`] that forwards everything to a primary recorder while
/// streaming the event sequence to any number of [`StreamingSink`]s.
///
/// The tee assigns each event its 1-based sequence number. When the
/// primary is a fresh [`InMemoryRecorder`](crate::InMemoryRecorder), those
/// numbers coincide with the recorder's own
/// [`events_since`](crate::InMemoryRecorder::events_since) numbering, so an
/// on-disk trace and the `/trace?after=` endpoint agree line for line.
/// Counters, gauges, and timings go to the primary only — sinks see the
/// structured event stream.
pub struct TeeRecorder {
    primary: Arc<dyn Recorder>,
    sinks: Vec<Arc<dyn StreamingSink>>,
    seq: AtomicU64,
}

impl TeeRecorder {
    /// A tee over `primary` with no sinks attached yet.
    pub fn new(primary: Arc<dyn Recorder>) -> Self {
        TeeRecorder {
            primary,
            sinks: Vec::new(),
            seq: AtomicU64::new(0),
        }
    }

    /// Attaches one more sink (builder-style).
    pub fn with_sink(mut self, sink: Arc<dyn StreamingSink>) -> Self {
        self.sinks.push(sink);
        self
    }

    /// Sequence number of the most recently recorded event (0 when none).
    pub fn last_seq(&self) -> u64 {
        self.seq.load(Ordering::Acquire)
    }

    /// Flushes every attached sink.
    pub fn flush(&self) {
        for sink in &self.sinks {
            sink.flush();
        }
    }
}

impl Recorder for TeeRecorder {
    fn record(&self, event: Event) {
        let seq = self.seq.fetch_add(1, Ordering::AcqRel) + 1;
        for sink in &self.sinks {
            sink.append(seq, &event);
        }
        self.primary.record(event);
    }

    fn add_counter(&self, name: &'static str, delta: u64) {
        self.primary.add_counter(name, delta);
    }

    fn set_gauge(&self, name: &'static str, value: f64) {
        self.primary.set_gauge(name, value);
    }

    fn record_timing(&self, component: Component, nanos: u64) {
        self.primary.record_timing(component, nanos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::InMemoryRecorder;
    use crate::recorder::RecorderHandle;

    fn tmp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("easeml-obs-sink-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}.jsonl", std::process::id()))
    }

    fn sample_event(i: usize) -> Event {
        Event::TrainingCompleted {
            user: i % 4,
            model: i % 7,
            cost: 1.25,
            quality: 0.5 + (i % 10) as f64 * 0.01,
            parent: 0,
        }
    }

    fn is_header(line: &str) -> bool {
        line.starts_with("{\"schema\":")
    }

    /// The event lines of a segment file, skipping schema headers.
    fn event_lines(path: &Path) -> Vec<String> {
        std::fs::read_to_string(path)
            .unwrap()
            .lines()
            .filter(|l| !is_header(l))
            .map(str::to_string)
            .collect()
    }

    /// Splits a `{"seq":N,"event":{...}}` sink line into its parts.
    fn parse_sink_line(line: &str) -> (u64, Event) {
        let rest = line.strip_prefix("{\"seq\":").unwrap();
        let comma = rest.find(',').unwrap();
        let seq: u64 = rest[..comma].parse().unwrap();
        let event_json = rest[comma..]
            .strip_prefix(",\"event\":")
            .unwrap()
            .strip_suffix('}')
            .unwrap();
        (seq, Event::from_json(event_json).unwrap())
    }

    #[test]
    fn file_sink_writes_seq_tagged_jsonl_and_flushes_on_drop() {
        let path = tmp_path("basic");
        {
            let sink = JsonlFileSink::create(&path).unwrap();
            for i in 0..10 {
                sink.append(i as u64 + 1, &sample_event(i));
            }
            // No explicit flush: Drop must land everything on disk.
        }
        let content = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = content.lines().collect();
        assert_eq!(lines.len(), 11);
        // Every segment leads with the schema-version header line.
        assert_eq!(lines[0], schema_header_line());
        for (i, line) in lines[1..].iter().enumerate() {
            let (seq, event) = parse_sink_line(line);
            assert_eq!(seq, i as u64 + 1);
            assert_eq!(event, sample_event(i));
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn file_sink_rotates_past_the_size_limit() {
        let path = tmp_path("rotate");
        let sink = JsonlFileSink::create(&path).unwrap().with_rotation(512, 2);
        let total = 200usize;
        for i in 0..total {
            sink.append(i as u64 + 1, &sample_event(i));
        }
        sink.flush();
        assert!(sink.rotations() > 0, "512-byte limit must force rotation");
        assert_eq!(sink.dropped(), 0);

        // The current segment stayed under limit + one line of slack.
        let current = std::fs::metadata(&path).unwrap().len();
        assert!(current < 512 + 256, "current segment too big: {current}");

        // At most `keep_rotated` rotated segments exist, `.1` the newest;
        // together the surviving segments form a contiguous, ordered tail
        // of the sequence numbers ending at `total`.
        assert!(!sink.rotated_path(3).exists());
        let mut all_lines = Vec::new();
        for n in [2usize, 1] {
            let p = sink.rotated_path(n);
            if p.exists() {
                // Rotated segments keep their own schema header.
                let raw = std::fs::read_to_string(&p).unwrap();
                assert_eq!(raw.lines().next().unwrap(), schema_header_line());
                all_lines.extend(event_lines(&p));
            }
        }
        let raw = std::fs::read_to_string(&path).unwrap();
        assert_eq!(raw.lines().next().unwrap(), schema_header_line());
        all_lines.extend(event_lines(&path));
        let seqs: Vec<u64> = all_lines.iter().map(|l| parse_sink_line(l).0).collect();
        assert_eq!(*seqs.last().unwrap(), total as u64);
        for w in seqs.windows(2) {
            assert_eq!(w[1], w[0] + 1, "gap in surviving trace tail");
        }
        // Old segments really were discarded (we wrote far more than the
        // survivors hold).
        assert!(seqs.len() < total);

        for n in 1..=2 {
            let _ = std::fs::remove_file(sink.rotated_path(n));
        }
        drop(sink);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn a_line_straddling_the_rotation_boundary_is_never_split() {
        let path = tmp_path("straddle");
        let header_len = schema_header_line().len() as u64 + 1;
        let mut line = String::new();
        line.push_str("{\"seq\":1,\"event\":");
        line.push_str(&sample_event(0).to_json());
        line.push_str("}\n");
        // The threshold lands in the *middle* of the first event line: the
        // sink must finish writing the whole line to the current segment
        // and only then rotate — a line never spans two files.
        let sink = JsonlFileSink::create(&path)
            .unwrap()
            .with_rotation(header_len + line.len() as u64 / 2, 2);
        sink.append(1, &sample_event(0));
        sink.append(2, &sample_event(1));
        sink.flush();
        assert_eq!(sink.rotations(), 2, "both lines crossed the threshold");
        assert_eq!(sink.dropped(), 0);

        // The straddling line lives complete in the rotated segments.
        let older = event_lines(&sink.rotated_path(2));
        let newer = event_lines(&sink.rotated_path(1));
        assert_eq!(older.len(), 1, "{older:?}");
        assert_eq!(newer.len(), 1, "{newer:?}");
        let (seq1, event1) = parse_sink_line(&older[0]);
        let (seq2, event2) = parse_sink_line(&newer[0]);
        assert_eq!((seq1, event1), (1, sample_event(0)));
        assert_eq!((seq2, event2), (2, sample_event(1)));
        // The fresh current segment holds only its header.
        assert!(event_lines(&path).is_empty());

        for n in 1..=2 {
            let _ = std::fs::remove_file(sink.rotated_path(n));
        }
        drop(sink);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn zero_keep_truncates_in_place() {
        let path = tmp_path("truncate");
        let sink = JsonlFileSink::create(&path).unwrap().with_rotation(256, 0);
        for i in 0..100 {
            sink.append(i as u64 + 1, &sample_event(i));
        }
        sink.flush();
        assert!(sink.rotations() > 0);
        assert!(!sink.rotated_path(1).exists());
        assert!(std::fs::metadata(&path).unwrap().len() < 512);
        drop(sink);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sink_stats_account_for_every_byte_line_and_rotation() {
        let path = tmp_path("stats");
        let sink = JsonlFileSink::create(&path).unwrap().with_rotation(512, 1);
        let total = 50usize;
        for i in 0..total {
            sink.append(i as u64 + 1, &sample_event(i));
        }
        sink.flush();
        let stats = sink.stats();
        assert_eq!(stats.lines_total, total as u64);
        assert_eq!(stats.dropped, 0);
        assert_eq!(stats.rotations, sink.rotations());
        assert!(stats.rotations > 0);
        assert!(stats.append_ns > 0);
        // bytes_total is cumulative across segments: it must exceed what
        // any single surviving segment holds, and equal headers + lines.
        let header_bytes = (schema_header_line().len() as u64 + 1) * (stats.rotations + 1);
        assert!(stats.bytes_total > std::fs::metadata(&path).unwrap().len());
        assert!(stats.bytes_total > header_bytes);
        let _ = std::fs::remove_file(sink.rotated_path(1));
        drop(sink);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn tee_fans_out_with_consistent_seq_numbers() {
        let path = tmp_path("tee");
        let primary = Arc::new(InMemoryRecorder::new());
        let sink = Arc::new(JsonlFileSink::create(&path).unwrap());
        let tee = Arc::new(
            TeeRecorder::new(primary.clone()).with_sink(sink.clone() as Arc<dyn StreamingSink>),
        );
        let handle = RecorderHandle::new(tee.clone());
        for i in 0..6 {
            handle.emit(|| sample_event(i));
        }
        handle.count("rounds", 6);
        handle.gauge("g", 1.0);
        tee.record_timing(Component::SimRound, 42);
        tee.flush();

        // Primary got everything.
        assert_eq!(primary.num_events(), 6);
        assert_eq!(primary.counter("rounds"), 6);
        assert_eq!(primary.gauge("g"), Some(1.0));
        assert_eq!(primary.timing(Component::SimRound).count(), 1);
        assert_eq!(tee.last_seq(), 6);

        // The sink's seq numbers match the primary recorder's numbering:
        // seq `i + 1` is exactly the first event of `events_since(i)`.
        let recorded = primary.events();
        for (i, line) in event_lines(&path).iter().enumerate() {
            let (seq, event) = parse_sink_line(line);
            assert_eq!(seq, i as u64 + 1);
            assert_eq!(event, recorded[i]);
            assert_eq!(primary.events_since(i as u64)[0], event);
        }
        drop(sink);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn concurrent_tee_recording_preserves_every_seq_once() {
        let path = tmp_path("concurrent");
        let primary = Arc::new(InMemoryRecorder::new());
        let sink = Arc::new(JsonlFileSink::create(&path).unwrap());
        let tee = Arc::new(
            TeeRecorder::new(primary.clone()).with_sink(sink.clone() as Arc<dyn StreamingSink>),
        );
        let threads = 4usize;
        let per_thread = 100usize;
        let workers: Vec<_> = (0..threads)
            .map(|t| {
                let h = RecorderHandle::new(tee.clone());
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        h.emit(|| sample_event(t * per_thread + i));
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        tee.flush();
        let mut seqs: Vec<u64> = event_lines(&path)
            .iter()
            .map(|l| parse_sink_line(l).0)
            .collect();
        seqs.sort_unstable();
        let expect: Vec<u64> = (1..=(threads * per_thread) as u64).collect();
        assert_eq!(seqs, expect, "every seq exactly once");
        assert_eq!(primary.num_events(), threads * per_thread);
        drop(sink);
        let _ = std::fs::remove_file(&path);
    }
}
