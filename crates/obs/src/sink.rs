//! Streaming sinks: moving telemetry out of process memory while the run
//! is still executing.
//!
//! The in-memory recorder is ideal for tests and short simulations, but a
//! long-running multi-tenant service cannot let its trace accumulate
//! unboundedly. A [`StreamingSink`] receives each event as it is recorded —
//! tagged with its 1-based sequence number — and is free to write it to
//! disk, a socket, or a folding aggregate. [`JsonlFileSink`] is the shipped
//! disk sink: buffered JSON-Lines writing with size-based rotation and
//! flush-on-drop. [`TeeRecorder`] is the splitter that forwards every
//! [`Recorder`] call to a primary recorder while fanning the event stream
//! out to any number of sinks.

use crate::event::Event;
use crate::recorder::{Component, Recorder};
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A destination for a live event stream.
///
/// Implementations must be thread-safe: the parallel simulator records from
/// several threads, and the HTTP exporter reads while the run writes. A
/// sink must never panic on I/O trouble — drop the line and keep counting
/// instead, so telemetry failures cannot take down the scheduler.
pub trait StreamingSink: Send + Sync {
    /// Delivers one event. `seq` is the event's 1-based sequence number in
    /// recording order (assigned by the [`TeeRecorder`]).
    fn append(&self, seq: u64, event: &Event);

    /// Pushes any buffered data towards its destination. Default: no-op.
    fn flush(&self) {}
}

/// Default rotation threshold of [`JsonlFileSink`]: 8 MiB per file.
pub const DEFAULT_MAX_FILE_BYTES: u64 = 8 * 1024 * 1024;

/// Default number of rotated files [`JsonlFileSink`] keeps around.
pub const DEFAULT_KEEP_ROTATED: usize = 3;

struct FileSinkState {
    writer: Option<BufWriter<File>>,
    /// Bytes written to the *current* file (resets on rotation).
    written: u64,
    rotations: u64,
    dropped: u64,
}

/// A buffered JSON-Lines file sink with size-based rotation.
///
/// Each event is written as `{"seq":N,"event":{...}}` on its own line, so a
/// rotated segment remains self-describing (the sequence numbers survive
/// the file boundaries). When the current file exceeds the configured
/// threshold it is rotated shift-style: `trace.jsonl` → `trace.jsonl.1` →
/// `trace.jsonl.2` → …, keeping at most the configured number of rotated
/// segments and deleting the oldest. The buffer is flushed on drop, and
/// I/O errors are absorbed into a dropped-line counter rather than
/// propagated into the recording hot path.
pub struct JsonlFileSink {
    path: PathBuf,
    max_bytes: u64,
    keep_rotated: usize,
    state: Mutex<FileSinkState>,
}

impl JsonlFileSink {
    /// Creates (truncating) the sink file with default rotation settings
    /// ([`DEFAULT_MAX_FILE_BYTES`], [`DEFAULT_KEEP_ROTATED`]).
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the file cannot be created.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = File::create(&path)?;
        Ok(JsonlFileSink {
            path,
            max_bytes: DEFAULT_MAX_FILE_BYTES,
            keep_rotated: DEFAULT_KEEP_ROTATED,
            state: Mutex::new(FileSinkState {
                writer: Some(BufWriter::new(file)),
                written: 0,
                rotations: 0,
                dropped: 0,
            }),
        })
    }

    /// Sets the rotation policy: rotate once the current file exceeds
    /// `max_bytes`, keeping at most `keep_rotated` rotated segments
    /// (`<path>.1` is the most recent). `keep_rotated = 0` truncates in
    /// place on rotation.
    pub fn with_rotation(mut self, max_bytes: u64, keep_rotated: usize) -> Self {
        self.max_bytes = max_bytes.max(1);
        self.keep_rotated = keep_rotated;
        self
    }

    /// The path of the current (unrotated) segment.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// How many times the file has been rotated.
    pub fn rotations(&self) -> u64 {
        self.state.lock().rotations
    }

    /// How many lines were dropped because of I/O errors.
    pub fn dropped(&self) -> u64 {
        self.state.lock().dropped
    }

    fn rotated_path(&self, n: usize) -> PathBuf {
        let mut os = self.path.as_os_str().to_os_string();
        os.push(format!(".{n}"));
        PathBuf::from(os)
    }

    /// Shift-rotates the segments and reopens a fresh current file. Any
    /// step that fails falls back to truncating in place so the sink keeps
    /// accepting events.
    fn rotate(&self, state: &mut FileSinkState) {
        if let Some(w) = state.writer.as_mut() {
            let _ = w.flush();
        }
        state.writer = None;
        if self.keep_rotated > 0 {
            let _ = std::fs::remove_file(self.rotated_path(self.keep_rotated));
            for n in (1..self.keep_rotated).rev() {
                let _ = std::fs::rename(self.rotated_path(n), self.rotated_path(n + 1));
            }
            let _ = std::fs::rename(&self.path, self.rotated_path(1));
        }
        match OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&self.path)
        {
            Ok(file) => {
                state.writer = Some(BufWriter::new(file));
                state.written = 0;
                state.rotations += 1;
            }
            Err(_) => {
                // Leave the writer disabled; subsequent appends count as
                // dropped until a future rotation succeeds.
            }
        }
    }
}

impl StreamingSink for JsonlFileSink {
    fn append(&self, seq: u64, event: &Event) {
        let mut line = String::with_capacity(64);
        line.push_str("{\"seq\":");
        line.push_str(&seq.to_string());
        line.push_str(",\"event\":");
        line.push_str(&event.to_json());
        line.push_str("}\n");

        let mut state = self.state.lock();
        if state.writer.is_none() {
            // A previous rotation failed to reopen; retry before giving up
            // on this line.
            self.rotate(&mut state);
        }
        match state.writer.as_mut() {
            Some(w) => {
                if w.write_all(line.as_bytes()).is_ok() {
                    state.written += line.len() as u64;
                    if state.written >= self.max_bytes {
                        self.rotate(&mut state);
                    }
                } else {
                    state.dropped += 1;
                }
            }
            None => state.dropped += 1,
        }
    }

    fn flush(&self) {
        if let Some(w) = self.state.lock().writer.as_mut() {
            let _ = w.flush();
        }
    }
}

impl Drop for JsonlFileSink {
    fn drop(&mut self) {
        self.flush();
    }
}

/// A [`Recorder`] that forwards everything to a primary recorder while
/// streaming the event sequence to any number of [`StreamingSink`]s.
///
/// The tee assigns each event its 1-based sequence number. When the
/// primary is a fresh [`InMemoryRecorder`](crate::InMemoryRecorder), those
/// numbers coincide with the recorder's own
/// [`events_since`](crate::InMemoryRecorder::events_since) numbering, so an
/// on-disk trace and the `/trace?after=` endpoint agree line for line.
/// Counters, gauges, and timings go to the primary only — sinks see the
/// structured event stream.
pub struct TeeRecorder {
    primary: Arc<dyn Recorder>,
    sinks: Vec<Arc<dyn StreamingSink>>,
    seq: AtomicU64,
}

impl TeeRecorder {
    /// A tee over `primary` with no sinks attached yet.
    pub fn new(primary: Arc<dyn Recorder>) -> Self {
        TeeRecorder {
            primary,
            sinks: Vec::new(),
            seq: AtomicU64::new(0),
        }
    }

    /// Attaches one more sink (builder-style).
    pub fn with_sink(mut self, sink: Arc<dyn StreamingSink>) -> Self {
        self.sinks.push(sink);
        self
    }

    /// Sequence number of the most recently recorded event (0 when none).
    pub fn last_seq(&self) -> u64 {
        self.seq.load(Ordering::Acquire)
    }

    /// Flushes every attached sink.
    pub fn flush(&self) {
        for sink in &self.sinks {
            sink.flush();
        }
    }
}

impl Recorder for TeeRecorder {
    fn record(&self, event: Event) {
        let seq = self.seq.fetch_add(1, Ordering::AcqRel) + 1;
        for sink in &self.sinks {
            sink.append(seq, &event);
        }
        self.primary.record(event);
    }

    fn add_counter(&self, name: &'static str, delta: u64) {
        self.primary.add_counter(name, delta);
    }

    fn set_gauge(&self, name: &'static str, value: f64) {
        self.primary.set_gauge(name, value);
    }

    fn record_timing(&self, component: Component, nanos: u64) {
        self.primary.record_timing(component, nanos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::InMemoryRecorder;
    use crate::recorder::RecorderHandle;

    fn tmp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("easeml-obs-sink-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}.jsonl", std::process::id()))
    }

    fn sample_event(i: usize) -> Event {
        Event::TrainingCompleted {
            user: i % 4,
            model: i % 7,
            cost: 1.25,
            quality: 0.5 + (i % 10) as f64 * 0.01,
        }
    }

    /// Splits a `{"seq":N,"event":{...}}` sink line into its parts.
    fn parse_sink_line(line: &str) -> (u64, Event) {
        let rest = line.strip_prefix("{\"seq\":").unwrap();
        let comma = rest.find(',').unwrap();
        let seq: u64 = rest[..comma].parse().unwrap();
        let event_json = rest[comma..]
            .strip_prefix(",\"event\":")
            .unwrap()
            .strip_suffix('}')
            .unwrap();
        (seq, Event::from_json(event_json).unwrap())
    }

    #[test]
    fn file_sink_writes_seq_tagged_jsonl_and_flushes_on_drop() {
        let path = tmp_path("basic");
        {
            let sink = JsonlFileSink::create(&path).unwrap();
            for i in 0..10 {
                sink.append(i as u64 + 1, &sample_event(i));
            }
            // No explicit flush: Drop must land everything on disk.
        }
        let content = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = content.lines().collect();
        assert_eq!(lines.len(), 10);
        for (i, line) in lines.iter().enumerate() {
            let (seq, event) = parse_sink_line(line);
            assert_eq!(seq, i as u64 + 1);
            assert_eq!(event, sample_event(i));
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn file_sink_rotates_past_the_size_limit() {
        let path = tmp_path("rotate");
        let sink = JsonlFileSink::create(&path).unwrap().with_rotation(512, 2);
        let total = 200usize;
        for i in 0..total {
            sink.append(i as u64 + 1, &sample_event(i));
        }
        sink.flush();
        assert!(sink.rotations() > 0, "512-byte limit must force rotation");
        assert_eq!(sink.dropped(), 0);

        // The current segment stayed under limit + one line of slack.
        let current = std::fs::metadata(&path).unwrap().len();
        assert!(current < 512 + 256, "current segment too big: {current}");

        // At most `keep_rotated` rotated segments exist, `.1` the newest;
        // together the surviving segments form a contiguous, ordered tail
        // of the sequence numbers ending at `total`.
        assert!(!sink.rotated_path(3).exists());
        let mut all_lines = Vec::new();
        for n in [2usize, 1] {
            let p = sink.rotated_path(n);
            if p.exists() {
                all_lines.extend(
                    std::fs::read_to_string(&p)
                        .unwrap()
                        .lines()
                        .map(str::to_string)
                        .collect::<Vec<_>>(),
                );
            }
        }
        all_lines.extend(
            std::fs::read_to_string(&path)
                .unwrap()
                .lines()
                .map(str::to_string)
                .collect::<Vec<_>>(),
        );
        let seqs: Vec<u64> = all_lines.iter().map(|l| parse_sink_line(l).0).collect();
        assert_eq!(*seqs.last().unwrap(), total as u64);
        for w in seqs.windows(2) {
            assert_eq!(w[1], w[0] + 1, "gap in surviving trace tail");
        }
        // Old segments really were discarded (we wrote far more than the
        // survivors hold).
        assert!(seqs.len() < total);

        for n in 1..=2 {
            let _ = std::fs::remove_file(sink.rotated_path(n));
        }
        drop(sink);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn zero_keep_truncates_in_place() {
        let path = tmp_path("truncate");
        let sink = JsonlFileSink::create(&path).unwrap().with_rotation(256, 0);
        for i in 0..100 {
            sink.append(i as u64 + 1, &sample_event(i));
        }
        sink.flush();
        assert!(sink.rotations() > 0);
        assert!(!sink.rotated_path(1).exists());
        assert!(std::fs::metadata(&path).unwrap().len() < 512);
        drop(sink);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn tee_fans_out_with_consistent_seq_numbers() {
        let path = tmp_path("tee");
        let primary = Arc::new(InMemoryRecorder::new());
        let sink = Arc::new(JsonlFileSink::create(&path).unwrap());
        let tee = Arc::new(
            TeeRecorder::new(primary.clone()).with_sink(sink.clone() as Arc<dyn StreamingSink>),
        );
        let handle = RecorderHandle::new(tee.clone());
        for i in 0..6 {
            handle.emit(|| sample_event(i));
        }
        handle.count("rounds", 6);
        handle.gauge("g", 1.0);
        tee.record_timing(Component::SimRound, 42);
        tee.flush();

        // Primary got everything.
        assert_eq!(primary.num_events(), 6);
        assert_eq!(primary.counter("rounds"), 6);
        assert_eq!(primary.gauge("g"), Some(1.0));
        assert_eq!(primary.timing(Component::SimRound).count(), 1);
        assert_eq!(tee.last_seq(), 6);

        // The sink's seq numbers match the primary recorder's numbering:
        // seq `i + 1` is exactly the first event of `events_since(i)`.
        let content = std::fs::read_to_string(&path).unwrap();
        let recorded = primary.events();
        for (i, line) in content.lines().enumerate() {
            let (seq, event) = parse_sink_line(line);
            assert_eq!(seq, i as u64 + 1);
            assert_eq!(event, recorded[i]);
            assert_eq!(primary.events_since(i as u64)[0], event);
        }
        drop(sink);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn concurrent_tee_recording_preserves_every_seq_once() {
        let path = tmp_path("concurrent");
        let primary = Arc::new(InMemoryRecorder::new());
        let sink = Arc::new(JsonlFileSink::create(&path).unwrap());
        let tee = Arc::new(
            TeeRecorder::new(primary.clone()).with_sink(sink.clone() as Arc<dyn StreamingSink>),
        );
        let threads = 4usize;
        let per_thread = 100usize;
        let workers: Vec<_> = (0..threads)
            .map(|t| {
                let h = RecorderHandle::new(tee.clone());
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        h.emit(|| sample_event(t * per_thread + i));
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        tee.flush();
        let content = std::fs::read_to_string(&path).unwrap();
        let mut seqs: Vec<u64> = content.lines().map(|l| parse_sink_line(l).0).collect();
        seqs.sort_unstable();
        let expect: Vec<u64> = (1..=(threads * per_thread) as u64).collect();
        assert_eq!(seqs, expect, "every seq exactly once");
        assert_eq!(primary.num_events(), threads * per_thread);
        drop(sink);
        let _ = std::fs::remove_file(&path);
    }
}
