//! Constant-memory stream summaries for million-tenant telemetry.
//!
//! Three std-only building blocks, all O(1) per observation and bounded in
//! memory regardless of how many tenants or events flow through them:
//!
//! * [`QuantileSketch`] — a DDSketch-style log-bucketed quantile sketch
//!   with a configurable *relative* error `alpha`: the estimate for any
//!   quantile `q` is within `alpha * x` of the value `x` that an exact
//!   sort would return at the same rank. Sketches with equal `alpha`
//!   merge losslessly (bucket counts add), so per-shard or per-rotated-file
//!   sketches fold into one.
//! * [`SpaceSaving`] — the Space-Saving heavy-hitter tracker of Metwally
//!   et al., generalized to weighted offers. With capacity `m`, every key
//!   whose true weight exceeds `total/m` is tracked, and each reported
//!   count overestimates the true weight by at most its reported `error`
//!   (itself at most `total/m`).
//! * [`Reservoir`] — Vitter's Algorithm R over a deterministic
//!   splitmix64 stream: a uniform fixed-size sample of an unbounded
//!   stream, reporting evictions so callers can drop per-item state.
//!
//! None of these allocate per observation; the quantile sketch allocates
//! only when a new log-bucket first appears, and collapses its lowest
//! buckets when a hard bucket cap is hit.

use easeml_wal::SplitMix64;
use std::collections::BTreeMap;

/// Values at or below this magnitude land in the sketch's zero bucket:
/// relative error is meaningless at the float noise floor.
const MIN_TRACKABLE: f64 = 1e-12;

/// Default relative-error target for quantile sketches (1%).
pub const DEFAULT_SKETCH_ALPHA: f64 = 0.01;

/// Default cap on the number of live log-buckets per sketch. At
/// `alpha = 0.01` one bucket spans a factor of ~1.02, so 512 buckets cover
/// more than 17 orders of magnitude before any collapsing happens.
pub const DEFAULT_SKETCH_MAX_BUCKETS: usize = 512;

/// Mergeable relative-error quantile sketch over non-negative values.
///
/// Log-bucketed (DDSketch-style): value `v > 0` lands in bucket
/// `ceil(log_gamma v)` with `gamma = (1 + alpha) / (1 - alpha)`, and the
/// bucket midpoint `2 * gamma^i / (gamma + 1)` is within `alpha * v` of
/// every value in the bucket. Negative and non-finite observations are
/// rejected (counted in [`QuantileSketch::rejected`]); values at the
/// float noise floor count as exact zeros.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSketch {
    alpha: f64,
    ln_gamma: f64,
    max_buckets: usize,
    buckets: BTreeMap<i32, u64>,
    zeros: u64,
    count: u64,
    rejected: u64,
    collapsed: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        Self::new(DEFAULT_SKETCH_ALPHA)
    }
}

impl QuantileSketch {
    /// A sketch with relative-error target `alpha` (clamped to a sane
    /// open interval) and the default bucket cap.
    pub fn new(alpha: f64) -> Self {
        Self::with_max_buckets(alpha, DEFAULT_SKETCH_MAX_BUCKETS)
    }

    /// A sketch with an explicit cap on live buckets. When the cap is
    /// exceeded the two lowest buckets merge, degrading accuracy only for
    /// the smallest observed values.
    pub fn with_max_buckets(alpha: f64, max_buckets: usize) -> Self {
        let alpha = if alpha.is_finite() {
            alpha.clamp(1e-4, 0.5)
        } else {
            DEFAULT_SKETCH_ALPHA
        };
        let gamma = (1.0 + alpha) / (1.0 - alpha);
        Self {
            alpha,
            ln_gamma: gamma.ln(),
            max_buckets: max_buckets.max(2),
            buckets: BTreeMap::new(),
            zeros: 0,
            count: 0,
            rejected: 0,
            collapsed: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The configured relative-error target.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Fold one observation in. O(log buckets); never allocates unless a
    /// brand-new bucket opens.
    pub fn insert(&mut self, value: f64) {
        if !value.is_finite() || value < 0.0 {
            self.rejected += 1;
            return;
        }
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        if value <= MIN_TRACKABLE {
            self.zeros += 1;
            return;
        }
        let index = (value.ln() / self.ln_gamma).ceil() as i32;
        *self.buckets.entry(index).or_insert(0) += 1;
        while self.buckets.len() > self.max_buckets {
            self.collapse_lowest();
        }
    }

    fn collapse_lowest(&mut self) {
        let Some((&lowest, _)) = self.buckets.iter().next() else {
            return;
        };
        let count = self.buckets.remove(&lowest).unwrap_or(0);
        let Some((&next, _)) = self.buckets.iter().next() else {
            self.zeros += count;
            return;
        };
        *self.buckets.entry(next).or_insert(0) += count;
        self.collapsed += count;
    }

    /// Merge another sketch into this one. Both sketches must share the
    /// same `alpha`; bucket counts simply add, so merging is associative
    /// and commutative and loses no accuracy.
    ///
    /// # Panics
    /// If the two sketches were built with different relative-error
    /// targets (mixing bucket bases would silently corrupt quantiles).
    pub fn merge(&mut self, other: &QuantileSketch) {
        assert!(
            (self.alpha - other.alpha).abs() < 1e-12,
            "cannot merge quantile sketches with different alpha ({} vs {})",
            self.alpha,
            other.alpha
        );
        for (&index, &count) in &other.buckets {
            *self.buckets.entry(index).or_insert(0) += count;
        }
        self.zeros += other.zeros;
        self.count += other.count;
        self.rejected += other.rejected;
        self.collapsed += other.collapsed;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        while self.buckets.len() > self.max_buckets {
            self.collapse_lowest();
        }
    }

    /// Estimate the `q`-quantile (`q` clamped to `[0, 1]`). Uses the rank
    /// `floor(q * (n - 1))` convention, matching an exact
    /// `sorted[rank]` lookup, so the relative-error guarantee is testable
    /// against a plain sort. Returns `None` on an empty sketch.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = if q.is_finite() {
            q.clamp(0.0, 1.0)
        } else {
            0.5
        };
        let rank = (q * (self.count - 1) as f64).floor() as u64;
        if rank < self.zeros {
            return Some(0.0);
        }
        let mut cumulative = self.zeros;
        for (&index, &count) in &self.buckets {
            cumulative += count;
            if cumulative > rank {
                let gamma_i = (f64::from(index) * self.ln_gamma).exp();
                let estimate = 2.0 * gamma_i / (1.0 + (self.ln_gamma).exp());
                return Some(estimate.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Number of accepted observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Number of rejected (negative / non-finite) observations.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Number of observations whose bucket was collapsed into a coarser
    /// one by the bucket cap (their relative-error guarantee is void).
    pub fn collapsed(&self) -> u64 {
        self.collapsed
    }

    /// Sum of accepted observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of accepted observations (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Smallest accepted observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest accepted observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Live log-buckets currently held.
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Rough in-memory footprint: fixed header plus the live buckets.
    /// (BTreeMap nodes are amortized; 32 bytes per entry is a safe bound.)
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + 32 * self.buckets.len()
    }

    /// Exports the full sketch state as plain data — the checkpoint shape.
    /// [`QuantileSketch::from_parts`] round-trips it exactly.
    pub fn to_parts(&self) -> SketchParts {
        SketchParts {
            alpha: self.alpha,
            max_buckets: self.max_buckets,
            buckets: self.buckets.iter().map(|(&i, &c)| (i, c)).collect(),
            zeros: self.zeros,
            rejected: self.rejected,
            collapsed: self.collapsed,
            sum: self.sum,
            min: self.min(),
            max: self.max(),
        }
    }

    /// Rebuilds a sketch from exported parts. The observation count is
    /// recomputed from the buckets; `min`/`max` of `None` (an empty
    /// export, or a lossy transport that nulled non-finite floats) fall
    /// back to the pristine sentinels.
    pub fn from_parts(parts: &SketchParts) -> Self {
        let mut sketch = Self::with_max_buckets(parts.alpha, parts.max_buckets);
        for &(index, count) in &parts.buckets {
            if count > 0 {
                *sketch.buckets.entry(index).or_insert(0) += count;
            }
        }
        sketch.zeros = parts.zeros;
        sketch.count = parts.zeros + sketch.buckets.values().sum::<u64>();
        sketch.rejected = parts.rejected;
        sketch.collapsed = parts.collapsed;
        sketch.sum = parts.sum;
        if sketch.count > 0 {
            sketch.min = parts.min.filter(|m| m.is_finite()).unwrap_or(0.0);
            sketch.max = parts.max.filter(|m| m.is_finite()).unwrap_or(0.0);
        }
        sketch
    }
}

/// A [`QuantileSketch`]'s full state as plain data, for checkpointing and
/// other out-of-process transport.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SketchParts {
    /// Relative-error target α.
    pub alpha: f64,
    /// Live-bucket cap.
    pub max_buckets: usize,
    /// `(bucket index, count)` pairs, ascending by index.
    pub buckets: Vec<(i32, u64)>,
    /// Observations at or below the zero noise floor.
    pub zeros: u64,
    /// Rejected (negative / non-finite) observations.
    pub rejected: u64,
    /// Observations whose bucket was collapsed by the cap.
    pub collapsed: u64,
    /// Sum of accepted observations.
    pub sum: f64,
    /// Smallest accepted observation (`None` when empty).
    pub min: Option<f64>,
    /// Largest accepted observation (`None` when empty).
    pub max: Option<f64>,
}

/// One tracked heavy hitter: the estimated weight always *over*-counts the
/// true weight by at most `error`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeavyHitter {
    /// The tracked key (tenant id, device id, ...).
    pub key: u64,
    /// Estimated total weight offered under this key (`>=` the truth).
    pub weight: f64,
    /// Upper bound on the overestimate inherited from evicted slots.
    pub error: f64,
}

/// Space-Saving top-K tracker over weighted offers.
///
/// Holds at most `capacity` keys. Offering weight to an untracked key when
/// full evicts the minimum-weight slot and inherits its count as the new
/// key's `error` bound. Guarantees: every key with true weight
/// `> total / capacity` is tracked, and `weight - error <= truth <= weight`
/// for every tracked key.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SpaceSaving {
    capacity: usize,
    entries: Vec<HeavyHitter>,
    total: f64,
}

impl SpaceSaving {
    /// A tracker holding at most `capacity` keys (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            entries: Vec::new(),
            total: 0.0,
        }
    }

    /// Offer `weight` under `key`. Non-finite or non-positive weights are
    /// ignored (a zero-weight event carries no ranking signal).
    pub fn offer(&mut self, key: u64, weight: f64) {
        if !weight.is_finite() || weight <= 0.0 {
            return;
        }
        self.total += weight;
        if let Some(entry) = self.entries.iter_mut().find(|e| e.key == key) {
            entry.weight += weight;
            return;
        }
        if self.entries.len() < self.capacity {
            self.entries.push(HeavyHitter {
                key,
                weight,
                error: 0.0,
            });
            return;
        }
        let min_idx = self
            .entries
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.weight.total_cmp(&b.weight))
            .map(|(i, _)| i)
            .unwrap_or(0);
        let floor = self.entries[min_idx].weight;
        self.entries[min_idx] = HeavyHitter {
            key,
            weight: floor + weight,
            error: floor,
        };
    }

    /// The `k` heaviest tracked keys, weight-descending (key-ascending on
    /// ties, for deterministic output).
    pub fn top(&self, k: usize) -> Vec<HeavyHitter> {
        let mut sorted = self.entries.clone();
        sorted.sort_by(|a, b| b.weight.total_cmp(&a.weight).then(a.key.cmp(&b.key)));
        sorted.truncate(k);
        sorted
    }

    /// Total weight offered so far (including to evicted keys).
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Number of currently tracked keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been tracked yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Merge another tracker into this one: tracked weights add where keys
    /// overlap; disjoint keys are offered in (inheriting eviction error as
    /// usual), and error bounds accumulate conservatively.
    pub fn merge(&mut self, other: &SpaceSaving) {
        for entry in other.top(other.len()) {
            self.total += entry.weight;
            if let Some(mine) = self.entries.iter_mut().find(|e| e.key == entry.key) {
                mine.weight += entry.weight;
                mine.error += entry.error;
            } else if self.entries.len() < self.capacity {
                self.entries.push(entry);
            } else {
                let min_idx = self
                    .entries
                    .iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| a.weight.total_cmp(&b.weight))
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                let floor = self.entries[min_idx].weight;
                self.entries[min_idx] = HeavyHitter {
                    key: entry.key,
                    weight: floor + entry.weight,
                    error: floor + entry.error,
                };
            }
        }
    }

    /// Rough in-memory footprint.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + std::mem::size_of::<HeavyHitter>() * self.entries.capacity()
    }
}

/// What [`Reservoir::offer`] did with the item.
#[derive(Debug, Clone, PartialEq)]
pub enum ReservoirOutcome<T> {
    /// The reservoir had room; the item was appended.
    Added,
    /// The item replaced `evicted` at `index`.
    Replaced {
        /// Slot the new item now occupies.
        index: usize,
        /// The item that lost its slot.
        evicted: T,
    },
    /// The item was sampled out; the reservoir is unchanged.
    Rejected,
}

/// Fixed-size uniform sample of an unbounded stream (Algorithm R) over a
/// deterministic splitmix64 stream, so runs are reproducible per seed.
#[derive(Debug, Clone, PartialEq)]
pub struct Reservoir<T> {
    capacity: usize,
    seen: u64,
    rng: SplitMix64,
    items: Vec<T>,
}

impl<T> Reservoir<T> {
    /// A reservoir holding at most `capacity` items (minimum 1), drawing
    /// replacement decisions from `seed`.
    pub fn new(capacity: usize, seed: u64) -> Self {
        Self {
            capacity: capacity.max(1),
            seen: 0,
            rng: SplitMix64::new(seed),
            items: Vec::new(),
        }
    }

    /// Offer one item; after `n` offers each survivor is a uniform sample
    /// of the stream so far. Reports evictions so the caller can free any
    /// state keyed on the evicted item.
    pub fn offer(&mut self, item: T) -> ReservoirOutcome<T> {
        self.seen += 1;
        if self.items.len() < self.capacity {
            self.items.push(item);
            return ReservoirOutcome::Added;
        }
        let slot = (self.rng.next_u64() % self.seen) as usize;
        if slot < self.capacity {
            let evicted = std::mem::replace(&mut self.items[slot], item);
            ReservoirOutcome::Replaced {
                index: slot,
                evicted,
            }
        } else {
            ReservoirOutcome::Rejected
        }
    }

    /// The current sample.
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Total items offered.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Maximum sample size.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
        let rank = (q * (sorted.len() - 1) as f64).floor() as usize;
        sorted[rank]
    }

    #[test]
    fn quantiles_respect_the_relative_error_bound() {
        let mut sketch = QuantileSketch::new(0.01);
        let mut values: Vec<f64> = (1..=10_000).map(|i| (i as f64) * 0.37).collect();
        for &v in &values {
            sketch.insert(v);
        }
        values.sort_by(f64::total_cmp);
        for q in [0.0, 0.01, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let exact = exact_quantile(&values, q);
            let estimate = sketch.quantile(q).unwrap();
            assert!(
                (estimate - exact).abs() <= 0.01 * exact + 1e-9,
                "q={q}: est {estimate} vs exact {exact}"
            );
        }
    }

    #[test]
    fn zeros_nonfinite_and_negatives_are_handled() {
        let mut sketch = QuantileSketch::new(0.02);
        sketch.insert(0.0);
        sketch.insert(0.0);
        sketch.insert(5.0);
        sketch.insert(f64::NAN);
        sketch.insert(f64::INFINITY);
        sketch.insert(-1.0);
        assert_eq!(sketch.count(), 3);
        assert_eq!(sketch.rejected(), 3);
        assert_eq!(sketch.quantile(0.0), Some(0.0));
        let p100 = sketch.quantile(1.0).unwrap();
        assert!((p100 - 5.0).abs() <= 0.02 * 5.0);
        assert_eq!(sketch.min(), Some(0.0));
        assert_eq!(sketch.max(), Some(5.0));
    }

    #[test]
    fn empty_sketch_has_no_quantiles() {
        let sketch = QuantileSketch::default();
        assert_eq!(sketch.quantile(0.5), None);
        assert_eq!(sketch.mean(), None);
        assert_eq!(sketch.count(), 0);
    }

    #[test]
    fn merge_equals_single_stream_fold() {
        let mut left = QuantileSketch::new(0.01);
        let mut right = QuantileSketch::new(0.01);
        let mut whole = QuantileSketch::new(0.01);
        for i in 1..=1000 {
            let v = (i as f64).sqrt();
            whole.insert(v);
            if i % 2 == 0 {
                left.insert(v);
            } else {
                right.insert(v);
            }
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(left.quantile(q), whole.quantile(q), "q={q}");
        }
    }

    #[test]
    #[should_panic(expected = "different alpha")]
    fn merging_mismatched_alpha_panics() {
        let mut a = QuantileSketch::new(0.01);
        let b = QuantileSketch::new(0.05);
        a.merge(&b);
    }

    #[test]
    fn bucket_cap_bounds_memory_and_only_degrades_the_low_tail() {
        let mut sketch = QuantileSketch::with_max_buckets(0.01, 32);
        // 12 orders of magnitude cannot fit in 32 buckets at alpha=1%.
        for i in 0..5000 {
            sketch.insert(10f64.powf(-6.0 + 12.0 * (i as f64) / 5000.0));
        }
        assert!(sketch.num_buckets() <= 32);
        assert!(sketch.collapsed() > 0);
        // The top quantiles keep their guarantee: collapse only merges the
        // lowest buckets.
        let p99 = sketch.quantile(0.99).unwrap();
        assert!(p99 > 1e4, "p99 collapsed too far: {p99}");
        assert!(sketch.approx_bytes() < 4096);
    }

    #[test]
    fn space_saving_tracks_the_true_heavy_hitter() {
        let mut tracker = SpaceSaving::new(4);
        // Key 7 gets half the total weight; 100 noise keys share the rest.
        for i in 0..1000u64 {
            tracker.offer(7, 1.0);
            tracker.offer(i % 100 + 1000, 1.0);
        }
        let top = tracker.top(1);
        assert_eq!(top[0].key, 7);
        // Over-estimate only, and by at most total / capacity.
        assert!(top[0].weight >= 1000.0);
        assert!(top[0].error <= tracker.total() / 4.0);
        assert_eq!(tracker.len(), 4);
    }

    #[test]
    fn space_saving_ignores_unrankable_weights() {
        let mut tracker = SpaceSaving::new(2);
        tracker.offer(1, 0.0);
        tracker.offer(1, -3.0);
        tracker.offer(1, f64::NAN);
        assert!(tracker.is_empty());
        assert_eq!(tracker.total(), 0.0);
    }

    #[test]
    fn space_saving_merge_keeps_overestimates() {
        let mut a = SpaceSaving::new(3);
        let mut b = SpaceSaving::new(3);
        for _ in 0..50 {
            a.offer(1, 2.0);
            b.offer(1, 1.0);
            b.offer(2, 3.0);
        }
        a.merge(&b);
        let top = a.top(3);
        let one = top.iter().find(|e| e.key == 1).unwrap();
        assert!(one.weight >= 150.0 - 1e-9);
        assert!((a.total() - 300.0).abs() < 1e-9);
    }

    #[test]
    fn reservoir_is_bounded_and_reports_evictions() {
        let mut reservoir = Reservoir::new(8, 42);
        let mut evictions = 0usize;
        for i in 0..1000u64 {
            match reservoir.offer(i) {
                ReservoirOutcome::Replaced { evicted, .. } => {
                    assert!(!reservoir.items().contains(&evicted));
                    evictions += 1;
                }
                ReservoirOutcome::Added => assert!(i < 8),
                ReservoirOutcome::Rejected => {}
            }
        }
        assert_eq!(reservoir.items().len(), 8);
        assert_eq!(reservoir.seen(), 1000);
        assert!(evictions > 0);
        // Deterministic per seed.
        let mut again = Reservoir::new(8, 42);
        for i in 0..1000u64 {
            again.offer(i);
        }
        assert_eq!(reservoir.items(), again.items());
    }

    #[test]
    fn parts_round_trip_bit_exactly() {
        let mut sketch = QuantileSketch::new(0.02);
        for i in 0..500 {
            sketch.insert(f64::from(i) * 0.37);
        }
        sketch.insert(f64::NAN); // one rejection
        let rebuilt = QuantileSketch::from_parts(&sketch.to_parts());
        assert_eq!(sketch, rebuilt);
        // Empty sketches round-trip to the pristine state too.
        let empty = QuantileSketch::new(0.01);
        assert_eq!(QuantileSketch::from_parts(&empty.to_parts()), empty);
    }
}
