//! Causal span tracing: links the events of one scheduler step into a tree.
//!
//! A [`SpanGuard`] opened through [`RecorderHandle::span`] records a
//! [`Event::SpanStart`] and, on drop, the matching [`Event::SpanEnd`].
//! While the guard is alive its id is the thread's *current span*; nested
//! guards stack, and every instrumentation point stamps
//! [`current_span`] into its event's `parent` field (inside the `emit`
//! closure, so the disabled path never touches thread-local state). One
//! scheduler step therefore records as
//!
//! ```text
//! scheduler_step
//! ├── pick_user      → SchedulerDecision
//! ├── pick_arm       → ArmChosen
//! ├── train          → TrainingCompleted
//! └── posterior_update → PosteriorUpdated
//! ```
//!
//! Span ids are process-global (a relaxed atomic counter), parenting is
//! per-thread (a `Cell<u64>`), and timestamps are nanoseconds from a lazy
//! process epoch — all of which is only touched when a recorder is
//! attached. A disabled handle returns an inert guard: no allocation, no
//! atomics, no clock read, no thread-local access.

use crate::event::Event;
use crate::recorder::Recorder;
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Allocator of process-unique span ids; 0 is reserved for "no span".
static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// The innermost open span on this thread (0 = none).
    static CURRENT_SPAN: Cell<u64> = const { Cell::new(0) };
}

/// Nanoseconds since the process trace epoch (the first call to this
/// function). Monotonic; shared by every span so durations and orderings
/// within one trace are comparable.
pub fn trace_ts_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// The id of the innermost span currently open on this thread, or 0.
///
/// Call this inside `emit` closures to stamp an event's `parent` field —
/// the closure only runs when a recorder is attached, which keeps the
/// disabled path free of thread-local reads.
pub fn current_span() -> u64 {
    CURRENT_SPAN.with(Cell::get)
}

/// An open span. Created by [`RecorderHandle::span`]; records
/// [`Event::SpanEnd`] and restores the previous current span when dropped.
///
/// [`RecorderHandle::span`]: crate::RecorderHandle::span
#[must_use = "a span covers the scope of its guard; dropping it immediately records an empty span"]
pub struct SpanGuard {
    active: Option<ActiveSpan>,
    /// Whether the global [`Profiler`](crate::Profiler) opened a frame for
    /// this span (independent of whether a recorder is attached).
    profiled: bool,
}

struct ActiveSpan {
    recorder: Arc<dyn Recorder>,
    span: u64,
    prev: u64,
}

impl SpanGuard {
    /// Opens a span named `name` under `recorder`, or an inert guard when
    /// no recorder is attached.
    ///
    /// The live profiler hooks in *before* the recorder check: when a
    /// global profiler is registered, even spans opened through noop
    /// handles feed the call-tree profile (without materializing events).
    /// With no profiler registered the extra cost is one relaxed atomic
    /// load — the noop path stays allocation-free.
    pub(crate) fn open(recorder: Option<&Arc<dyn Recorder>>, name: &'static str) -> SpanGuard {
        let profiled = crate::profile::span_enter(name);
        let Some(recorder) = recorder else {
            return SpanGuard {
                active: None,
                profiled,
            };
        };
        let span = NEXT_SPAN.fetch_add(1, Ordering::Relaxed);
        let prev = CURRENT_SPAN.with(|current| current.replace(span));
        recorder.record(Event::SpanStart {
            span,
            parent: prev,
            name: name.to_string(),
            ts_ns: trace_ts_ns(),
        });
        SpanGuard {
            active: Some(ActiveSpan {
                recorder: recorder.clone(),
                span,
                prev,
            }),
            profiled,
        }
    }

    /// This span's id, or 0 for an inert guard.
    pub fn id(&self) -> u64 {
        self.active.as_ref().map_or(0, |a| a.span)
    }

    /// Whether the guard actually records (false on disabled handles).
    pub fn is_recording(&self) -> bool {
        self.active.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        // Close the profiler frame first so recorder teardown cost (the
        // `SpanEnd` record by the contained `ActiveSpan`, which drops
        // right after this body) is charged to the parent, not this span.
        if self.profiled {
            crate::profile::span_exit();
        }
    }
}

impl Drop for ActiveSpan {
    fn drop(&mut self) {
        CURRENT_SPAN.with(|current| current.set(self.prev));
        self.recorder.record(Event::SpanEnd {
            span: self.span,
            ts_ns: trace_ts_ns(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::InMemoryRecorder;
    use crate::RecorderHandle;

    #[test]
    fn disabled_handle_opens_inert_guards() {
        let handle = RecorderHandle::noop();
        let before = current_span();
        let guard = handle.span("scheduler_step");
        assert!(!guard.is_recording());
        assert_eq!(guard.id(), 0);
        // An inert guard must not disturb the thread's span context.
        assert_eq!(current_span(), before);
        drop(guard);
        assert_eq!(current_span(), before);
    }

    #[test]
    fn nested_spans_form_a_tree_and_restore_parents() {
        let recorder = Arc::new(InMemoryRecorder::new());
        let handle = RecorderHandle::new(recorder.clone());

        let outer = handle.span("scheduler_step");
        let outer_id = outer.id();
        assert!(outer.is_recording());
        assert_eq!(current_span(), outer_id);
        {
            let inner = handle.span("pick_arm");
            assert_eq!(current_span(), inner.id());
            handle.emit(|| Event::HybridFallback {
                reason: "inside".into(),
                parent: current_span(),
            });
        }
        // Inner closed: context back to the outer span.
        assert_eq!(current_span(), outer_id);
        drop(outer);
        assert_eq!(current_span(), 0);

        let events = recorder.events();
        assert_eq!(events.len(), 5, "{events:?}");
        let Event::SpanStart {
            span: s_outer,
            parent: 0,
            ..
        } = &events[0]
        else {
            panic!("expected root SpanStart, got {:?}", events[0]);
        };
        let Event::SpanStart {
            span: s_inner,
            parent: p_inner,
            name,
            ..
        } = &events[1]
        else {
            panic!("expected nested SpanStart, got {:?}", events[1]);
        };
        assert_eq!(p_inner, s_outer);
        assert_eq!(name, "pick_arm");
        assert_eq!(events[2].parent(), *s_inner);
        assert!(matches!(&events[3], Event::SpanEnd { span, .. } if span == s_inner));
        assert!(matches!(&events[4], Event::SpanEnd { span, .. } if span == s_outer));
    }

    #[test]
    fn span_timestamps_are_monotone() {
        let recorder = Arc::new(InMemoryRecorder::new());
        let handle = RecorderHandle::new(recorder.clone());
        drop(handle.span("a"));
        drop(handle.span("b"));
        let stamps: Vec<u64> = recorder
            .events()
            .iter()
            .map(|e| match e {
                Event::SpanStart { ts_ns, .. } | Event::SpanEnd { ts_ns, .. } => *ts_ns,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        for pair in stamps.windows(2) {
            assert!(pair[0] <= pair[1], "{stamps:?}");
        }
    }

    #[test]
    fn span_ids_are_unique_across_threads() {
        let recorder = Arc::new(InMemoryRecorder::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let handle = RecorderHandle::new(recorder.clone());
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        drop(handle.span("worker"));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut ids: Vec<u64> = recorder
            .events()
            .iter()
            .filter_map(|e| match e {
                Event::SpanStart { span, .. } => Some(*span),
                _ => None,
            })
            .collect();
        assert_eq!(ids.len(), 200);
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 200, "span ids must be process-unique");
    }
}
