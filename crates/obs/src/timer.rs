//! Scoped wall-clock timers and the process-global recorder used by deep
//! library code.
//!
//! Components that hold a [`RecorderHandle`](crate::RecorderHandle) time
//! themselves with [`ScopedTimer`]. Library layers too deep to thread a
//! handle through (the Cholesky kernels in `easeml-linalg`, the posterior
//! refresh in `easeml-gp`) use the process-global recorder instead: its
//! fast path is a single relaxed atomic load, so with no recorder installed
//! the hot loops stay at their uninstrumented speed.

use crate::recorder::{Component, Recorder, RecorderHandle};
use parking_lot::RwLock;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Times one scope against a borrowed recorder; records on drop.
///
/// Created by [`RecorderHandle::time`](crate::RecorderHandle::time). An
/// inert guard (from a disabled handle) never reads the clock.
#[must_use = "the timer records when dropped; binding it to `_` drops immediately"]
pub struct ScopedTimer<'a> {
    active: Option<(&'a dyn Recorder, Component, Instant)>,
}

impl<'a> ScopedTimer<'a> {
    pub(crate) fn new(recorder: Option<&'a dyn Recorder>, component: Component) -> Self {
        ScopedTimer {
            active: recorder.map(|r| (r, component, Instant::now())),
        }
    }
}

impl Drop for ScopedTimer<'_> {
    fn drop(&mut self) {
        if let Some((recorder, component, start)) = self.active.take() {
            recorder.record_timing(component, start.elapsed().as_nanos() as u64);
        }
    }
}

/// `true` iff a global recorder is installed. Checked with a relaxed load
/// before touching the lock, so the disabled path costs one branch.
static GLOBAL_ACTIVE: AtomicBool = AtomicBool::new(false);
static GLOBAL: RwLock<Option<Arc<dyn Recorder>>> = RwLock::new(None);

/// Installs (`Some`) or removes (`None`) the process-global recorder used
/// by deep library code. Returns the previously installed recorder.
///
/// Typical use brackets a measured region:
///
/// ```
/// # use std::sync::Arc;
/// # use easeml_obs::{set_global_recorder, InMemoryRecorder};
/// let recorder = Arc::new(InMemoryRecorder::new());
/// let previous = set_global_recorder(Some(recorder.clone()));
/// // ... run the instrumented workload ...
/// set_global_recorder(previous);
/// println!("{}", recorder.summary());
/// ```
pub fn set_global_recorder(recorder: Option<Arc<dyn Recorder>>) -> Option<Arc<dyn Recorder>> {
    let mut slot = GLOBAL.write();
    GLOBAL_ACTIVE.store(recorder.is_some(), Ordering::Release);
    std::mem::replace(&mut *slot, recorder)
}

/// A [`RecorderHandle`] backed by the current global recorder (disabled
/// when none is installed). The handle snapshots the recorder: installing
/// a different one later does not redirect existing handles.
pub fn global_handle() -> RecorderHandle {
    if !GLOBAL_ACTIVE.load(Ordering::Acquire) {
        return RecorderHandle::noop();
    }
    match GLOBAL.read().clone() {
        Some(recorder) => RecorderHandle::new(recorder),
        None => RecorderHandle::noop(),
    }
}

/// Starts a timer against the global recorder; an inert guard when none is
/// installed. This is the only entry point the deep library layers call.
pub fn global_timer(component: Component) -> GlobalTimer {
    if !GLOBAL_ACTIVE.load(Ordering::Relaxed) {
        return GlobalTimer { active: None };
    }
    let recorder = GLOBAL.read().clone();
    GlobalTimer {
        active: recorder.map(|r| (r, component, Instant::now())),
    }
}

/// Owned counterpart of [`ScopedTimer`] for the global recorder.
#[must_use = "the timer records when dropped; binding it to `_` drops immediately"]
pub struct GlobalTimer {
    active: Option<(Arc<dyn Recorder>, Component, Instant)>,
}

impl Drop for GlobalTimer {
    fn drop(&mut self) {
        if let Some((recorder, component, start)) = self.active.take() {
            recorder.record_timing(component, start.elapsed().as_nanos() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::InMemoryRecorder;

    // The global recorder is process state shared by every test in this
    // binary, so all tests touching it live in this one #[test] to avoid
    // cross-test races under the default parallel runner.
    #[test]
    fn global_recorder_lifecycle() {
        // Nothing installed: timers are inert.
        drop(global_timer(Component::CholeskyFactor));
        assert!(!global_handle().is_enabled());

        let recorder = Arc::new(InMemoryRecorder::new());
        let previous = set_global_recorder(Some(recorder.clone()));
        drop(global_timer(Component::CholeskyFactor));
        drop(global_timer(Component::CholeskyFactor));
        assert!(global_handle().is_enabled());

        // Restore, then verify both that the samples landed and that new
        // timers are inert again.
        let mine = set_global_recorder(previous);
        assert!(mine.is_some());
        assert_eq!(recorder.timing(Component::CholeskyFactor).count(), 2);
        drop(global_timer(Component::CholeskyFactor));
        assert_eq!(recorder.timing(Component::CholeskyFactor).count(), 2);
    }

    #[test]
    fn scoped_timer_measures_nonzero_time() {
        let recorder = InMemoryRecorder::new();
        {
            let _t = ScopedTimer::new(Some(&recorder), Component::SimRound);
            std::hint::black_box((0..1000).sum::<u64>());
        }
        let h = recorder.timing(Component::SimRound);
        assert_eq!(h.count(), 1);
        assert!(h.max_ns() > 0);
    }
}
