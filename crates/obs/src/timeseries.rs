//! Folding the event stream into live per-tenant time series.
//!
//! Ease.ml's evaluation (Fig. 8–10) is all about *regret trajectories over
//! simulated time*: how fast each tenant's accuracy gap closes as the
//! shared cluster spends cost. [`TimeSeriesRecorder`] produces exactly
//! those curves during a run, not after it: it folds
//! `TrainingCompleted` / `SchedulerDecision` / `HybridFallback` events into
//! per-user regret curves sampled against the simulated clock (cumulative
//! cost), cumulative per-user cost, arm-pull counts, and the
//! hybrid-fallback rate. It implements both [`Recorder`] (attach it
//! directly) and [`StreamingSink`] (hang it off a
//! [`TeeRecorder`](crate::TeeRecorder) next to a file sink), and its
//! memory footprint is bounded by the sampling interval, not the run
//! length.

use crate::event::Event;
use crate::recorder::{Component, Recorder};
use crate::sink::StreamingSink;
use parking_lot::Mutex;
use std::collections::BTreeMap;

/// One tenant's live series, folded from `TrainingCompleted` events.
#[derive(Debug, Clone)]
pub struct UserSeries {
    /// Number of training runs completed for this tenant.
    pub served: u64,
    /// Total cost charged to this tenant so far.
    pub cumulative_cost: f64,
    /// Best quality any of the tenant's runs reached.
    pub best_quality: f64,
    /// Quality of the tenant's most recent run.
    pub last_quality: f64,
    /// The quality target regret is measured against (the best achievable
    /// quality μ* when known; defaults to 1.0, i.e. loss to perfect
    /// accuracy).
    pub target: f64,
    /// Training runs per model index (arm-pull counts).
    pub arm_pulls: BTreeMap<usize, u64>,
    /// `(simulated clock, regret)` samples, oldest first. The final sample
    /// always reflects the latest completed run.
    pub regret_curve: Vec<(f64, f64)>,
    /// Clock at which the last curve point was *appended* (in-place updates
    /// of the final point do not move this), driving interval sampling.
    sample_anchor: f64,
}

impl UserSeries {
    fn new(target: f64) -> Self {
        UserSeries {
            served: 0,
            cumulative_cost: 0.0,
            best_quality: 0.0,
            last_quality: 0.0,
            target,
            arm_pulls: BTreeMap::new(),
            regret_curve: Vec::new(),
            sample_anchor: 0.0,
        }
    }

    /// Current regret: how far the tenant's best model still sits below
    /// the target (never negative).
    pub fn regret(&self) -> f64 {
        (self.target - self.best_quality).max(0.0)
    }
}

/// A point-in-time copy of everything the recorder has folded.
#[derive(Debug, Clone)]
pub struct TimeSeriesSnapshot {
    /// The simulated clock: cumulative cost across all completed runs.
    pub clock: f64,
    /// Total completed training runs.
    pub rounds: u64,
    /// Total `SchedulerDecision` events seen.
    pub decisions: u64,
    /// Whether a `HybridFallback` has fired (the hybrid scheduler is in its
    /// round-robin phase).
    pub fallback_active: bool,
    /// Scheduler decisions taken *after* the fallback fired.
    pub fallback_decisions: u64,
    /// Per-tenant series, keyed by tenant index.
    pub users: BTreeMap<usize, UserSeries>,
}

impl TimeSeriesSnapshot {
    /// Fraction of scheduler decisions taken in fallback (round-robin)
    /// mode; 0.0 before any decision.
    pub fn fallback_rate(&self) -> f64 {
        if self.decisions == 0 {
            0.0
        } else {
            self.fallback_decisions as f64 / self.decisions as f64
        }
    }

    /// Mean regret across tenants (0.0 with no tenants yet) — the live
    /// counterpart of the paper's mean-accuracy-loss curves.
    pub fn mean_regret(&self) -> f64 {
        if self.users.is_empty() {
            0.0
        } else {
            self.users.values().map(UserSeries::regret).sum::<f64>() / self.users.len() as f64
        }
    }
}

struct TsState {
    clock: f64,
    rounds: u64,
    decisions: u64,
    fallback_active: bool,
    fallback_decisions: u64,
    users: BTreeMap<usize, UserSeries>,
    targets: BTreeMap<usize, f64>,
}

/// A [`Recorder`] / [`StreamingSink`] that folds events into per-tenant
/// regret time series against the simulated clock.
///
/// Attach it with [`crate::RecorderHandle::new`] for a standalone live
/// view, or as a sink on a [`TeeRecorder`](crate::TeeRecorder) so one event
/// stream feeds the in-memory trace, the disk, and the live curves at
/// once. Counter/gauge/timing calls are ignored — this type only consumes
/// the structured event stream.
pub struct TimeSeriesRecorder {
    sample_interval: f64,
    state: Mutex<TsState>,
}

impl Default for TimeSeriesRecorder {
    fn default() -> Self {
        TimeSeriesRecorder::new()
    }
}

impl TimeSeriesRecorder {
    /// A recorder sampling every completion (interval 0).
    pub fn new() -> Self {
        TimeSeriesRecorder {
            sample_interval: 0.0,
            state: Mutex::new(TsState {
                clock: 0.0,
                rounds: 0,
                decisions: 0,
                fallback_active: false,
                fallback_decisions: 0,
                users: BTreeMap::new(),
                targets: BTreeMap::new(),
            }),
        }
    }

    /// Sets the sampling interval in simulated-clock units: a tenant's
    /// curve appends a new point only after the clock advanced by at least
    /// `interval` since the tenant's previous point; in between, the last
    /// point is updated in place. This bounds curve memory by
    /// `horizon / interval` regardless of how many runs complete.
    pub fn with_sample_interval(mut self, interval: f64) -> Self {
        self.sample_interval = interval.max(0.0);
        self
    }

    /// Declares the best achievable quality μ* for `user`, making the
    /// tenant's regret the paper's true accuracy loss instead of the
    /// default loss-to-1.0. Applies retroactively to the current best.
    pub fn set_target(&self, user: usize, target: f64) {
        let mut state = self.state.lock();
        state.targets.insert(user, target);
        if let Some(series) = state.users.get_mut(&user) {
            series.target = target;
        }
    }

    /// Folds one event into the series. This is what both trait impls call.
    pub fn fold(&self, event: &Event) {
        match event {
            Event::TrainingCompleted {
                user,
                model,
                cost,
                quality,
            } => {
                let interval = self.sample_interval;
                let mut state = self.state.lock();
                state.clock += cost;
                state.rounds += 1;
                let clock = state.clock;
                let target = state.targets.get(user).copied().unwrap_or(1.0);
                let series = state
                    .users
                    .entry(*user)
                    .or_insert_with(|| UserSeries::new(target));
                series.served += 1;
                series.cumulative_cost += cost;
                series.last_quality = *quality;
                if *quality > series.best_quality {
                    series.best_quality = *quality;
                }
                *series.arm_pulls.entry(*model).or_insert(0) += 1;
                let regret = series.regret();
                if series.regret_curve.is_empty() || clock - series.sample_anchor >= interval {
                    series.regret_curve.push((clock, regret));
                    series.sample_anchor = clock;
                } else {
                    // Within the sampling interval: update the final point
                    // in place so the curve still ends at the latest state.
                    *series.regret_curve.last_mut().unwrap() = (clock, regret);
                }
            }
            Event::SchedulerDecision { .. } => {
                let mut state = self.state.lock();
                state.decisions += 1;
                if state.fallback_active {
                    state.fallback_decisions += 1;
                }
            }
            Event::HybridFallback { .. } => {
                self.state.lock().fallback_active = true;
            }
            Event::ArmChosen { .. } | Event::PosteriorUpdated { .. } => {}
        }
    }

    /// A copy of the current folded state.
    pub fn snapshot(&self) -> TimeSeriesSnapshot {
        let state = self.state.lock();
        TimeSeriesSnapshot {
            clock: state.clock,
            rounds: state.rounds,
            decisions: state.decisions,
            fallback_active: state.fallback_active,
            fallback_decisions: state.fallback_decisions,
            users: state.users.clone(),
        }
    }
}

impl Recorder for TimeSeriesRecorder {
    fn record(&self, event: Event) {
        self.fold(&event);
    }

    fn add_counter(&self, _name: &'static str, _delta: u64) {}
    fn set_gauge(&self, _name: &'static str, _value: f64) {}
    fn record_timing(&self, _component: Component, _nanos: u64) {}
}

impl StreamingSink for TimeSeriesRecorder {
    fn append(&self, _seq: u64, event: &Event) {
        self.fold(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn completed(user: usize, model: usize, cost: f64, quality: f64) -> Event {
        Event::TrainingCompleted {
            user,
            model,
            cost,
            quality,
        }
    }

    #[test]
    fn folds_training_events_into_per_user_series() {
        let ts = TimeSeriesRecorder::new();
        ts.set_target(0, 0.9);
        ts.fold(&completed(0, 2, 1.0, 0.5));
        ts.fold(&completed(1, 0, 2.0, 0.8));
        ts.fold(&completed(0, 2, 1.0, 0.7));
        ts.fold(&completed(0, 3, 1.0, 0.6)); // worse run: best stays 0.7

        let snap = ts.snapshot();
        assert_eq!(snap.rounds, 4);
        assert!((snap.clock - 5.0).abs() < 1e-12);
        let u0 = &snap.users[&0];
        assert_eq!(u0.served, 3);
        assert!((u0.cumulative_cost - 3.0).abs() < 1e-12);
        assert!((u0.best_quality - 0.7).abs() < 1e-12);
        assert!((u0.last_quality - 0.6).abs() < 1e-12);
        assert!((u0.regret() - 0.2).abs() < 1e-12, "target 0.9 - best 0.7");
        assert_eq!(u0.arm_pulls[&2], 2);
        assert_eq!(u0.arm_pulls[&3], 1);
        // Default target (no μ* declared) is 1.0.
        let u1 = &snap.users[&1];
        assert!((u1.regret() - 0.2).abs() < 1e-12, "1.0 - 0.8");
        // Curves advance on the *global* simulated clock.
        assert_eq!(u0.regret_curve.len(), 3);
        assert_eq!(u0.regret_curve[0].0, 1.0);
        assert_eq!(u0.regret_curve[1].0, 4.0);
        assert_eq!(u0.regret_curve[2].0, 5.0);
        // Regret is non-increasing for a fixed target.
        for w in u0.regret_curve.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-12);
        }
    }

    #[test]
    fn sampling_interval_bounds_curve_length_but_keeps_the_latest() {
        let ts = TimeSeriesRecorder::new().with_sample_interval(10.0);
        for i in 0..100 {
            ts.fold(&completed(0, 0, 1.0, 0.001 * i as f64));
        }
        let snap = ts.snapshot();
        let curve = &snap.users[&0].regret_curve;
        // 100 cost units at one sample per ≥10 units: ~10 points, not 100.
        assert!(curve.len() <= 11, "curve has {} points", curve.len());
        // The last point reflects the very latest state.
        let last = curve.last().unwrap();
        assert_eq!(last.0, 100.0);
        assert!((last.1 - (1.0 - 0.099)).abs() < 1e-12);
    }

    #[test]
    fn fallback_rate_counts_decisions_after_the_switch() {
        let ts = TimeSeriesRecorder::new();
        let decision = Event::SchedulerDecision {
            round: 0,
            user: 0,
            rule: "hybrid".into(),
            scores: vec![],
        };
        for _ in 0..6 {
            ts.fold(&decision);
        }
        assert_eq!(ts.snapshot().fallback_rate(), 0.0);
        ts.fold(&Event::HybridFallback {
            reason: "frozen".into(),
        });
        for _ in 0..2 {
            ts.fold(&decision);
        }
        let snap = ts.snapshot();
        assert!(snap.fallback_active);
        assert_eq!(snap.decisions, 8);
        assert_eq!(snap.fallback_decisions, 2);
        assert!((snap.fallback_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn mean_regret_averages_users() {
        let ts = TimeSeriesRecorder::new();
        assert_eq!(ts.snapshot().mean_regret(), 0.0);
        ts.fold(&completed(0, 0, 1.0, 0.8)); // regret 0.2
        ts.fold(&completed(1, 0, 1.0, 0.6)); // regret 0.4
        assert!((ts.snapshot().mean_regret() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn set_target_applies_retroactively() {
        let ts = TimeSeriesRecorder::new();
        ts.fold(&completed(0, 0, 1.0, 0.75));
        assert!((ts.snapshot().users[&0].regret() - 0.25).abs() < 1e-12);
        ts.set_target(0, 0.8);
        assert!((ts.snapshot().users[&0].regret() - 0.05).abs() < 1e-12);
    }
}
