//! Folding the event stream into live per-tenant time series.
//!
//! Ease.ml's evaluation (Fig. 8–10) is all about *regret trajectories over
//! simulated time*: how fast each tenant's accuracy gap closes as the
//! shared cluster spends cost. [`TimeSeriesRecorder`] produces exactly
//! those curves during a run, not after it: it folds
//! `TrainingCompleted` / `SchedulerDecision` / `HybridFallback` events into
//! per-user regret curves sampled against the simulated clock (cumulative
//! cost), cumulative per-user cost, arm-pull counts, and the
//! hybrid-fallback rate. It implements both [`Recorder`] (attach it
//! directly) and [`StreamingSink`] (hang it off a
//! [`TeeRecorder`](crate::TeeRecorder) next to a file sink), and its
//! memory footprint is bounded by the sampling interval, not the run
//! length.

use crate::event::Event;
use crate::recorder::{Component, Recorder};
use crate::sink::StreamingSink;
use parking_lot::Mutex;
use std::collections::BTreeMap;

/// Cost-weighted cumulative regret split into the two terms of the paper's
/// Theorem 1 analysis.
///
/// Regret is integrated over the simulated clock: each completed run of
/// cost `Δc` adds `regret · Δc` for every tenant that still had regret
/// during that interval. The interval is attributed to the tenant's
/// **arm-picking** term when the tenant itself was the one being served
/// (any remaining regret is the GP-UCB arm picker's responsibility) and to
/// its **user-picking** term when the scheduler served someone else (the
/// regret persisted because the user picker made the tenant wait). By
/// construction `arm_picking + user_picking` equals the undecomposed
/// integral, which is accumulated separately in `total` as a consistency
/// check (equal up to floating-point accumulation order).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RegretDecomposition {
    /// Regret·cost accrued over intervals in which this tenant was served.
    pub arm_picking: f64,
    /// Regret·cost accrued over intervals in which another tenant was
    /// served.
    pub user_picking: f64,
    /// The undecomposed integral `∫ regret dcost`, accumulated in one sum.
    pub total: f64,
}

impl RegretDecomposition {
    /// The decomposed sum `arm_picking + user_picking`; matches
    /// [`RegretDecomposition::total`] within floating-point tolerance.
    pub fn sum(&self) -> f64 {
        self.arm_picking + self.user_picking
    }

    /// Accumulates another decomposition into this one.
    pub fn accumulate(&mut self, other: &RegretDecomposition) {
        self.arm_picking += other.arm_picking;
        self.user_picking += other.user_picking;
        self.total += other.total;
    }
}

/// One tenant's live series, folded from `TrainingCompleted` events.
#[derive(Debug, Clone)]
pub struct UserSeries {
    /// Number of training runs completed for this tenant.
    pub served: u64,
    /// Number of failed (censored) training runs charged to this tenant.
    pub failed: u64,
    /// Total cost charged to this tenant so far.
    pub cumulative_cost: f64,
    /// Best quality any of the tenant's runs reached.
    pub best_quality: f64,
    /// Quality of the tenant's most recent run.
    pub last_quality: f64,
    /// The quality target regret is measured against (the best achievable
    /// quality μ* when known; defaults to 1.0, i.e. loss to perfect
    /// accuracy).
    pub target: f64,
    /// Training runs per model index (arm-pull counts).
    pub arm_pulls: BTreeMap<usize, u64>,
    /// `(simulated clock, regret)` samples, oldest first. The final sample
    /// always reflects the latest completed run.
    pub regret_curve: Vec<(f64, f64)>,
    /// Cost-weighted cumulative regret, split into the Theorem 1 terms.
    pub cum_regret: RegretDecomposition,
    /// Clock at which the last curve point was *appended* (in-place updates
    /// of the final point do not move this), driving interval sampling.
    sample_anchor: f64,
}

impl UserSeries {
    fn new(target: f64) -> Self {
        UserSeries {
            served: 0,
            failed: 0,
            cumulative_cost: 0.0,
            best_quality: 0.0,
            last_quality: 0.0,
            target,
            arm_pulls: BTreeMap::new(),
            regret_curve: Vec::new(),
            cum_regret: RegretDecomposition::default(),
            sample_anchor: 0.0,
        }
    }

    /// Current regret: how far the tenant's best model still sits below
    /// the target (never negative).
    pub fn regret(&self) -> f64 {
        (self.target - self.best_quality).max(0.0)
    }
}

/// A point-in-time copy of everything the recorder has folded.
#[derive(Debug, Clone)]
pub struct TimeSeriesSnapshot {
    /// The simulated clock: cumulative cost across all completed runs.
    pub clock: f64,
    /// Total completed training runs.
    pub rounds: u64,
    /// Total failed (censored) training runs: they advanced the clock and
    /// charged their tenant but produced no quality observation.
    pub failed_rounds: u64,
    /// Total `SchedulerDecision` events seen.
    pub decisions: u64,
    /// Whether a `HybridFallback` has fired (the hybrid scheduler is in its
    /// round-robin phase).
    pub fallback_active: bool,
    /// Scheduler decisions taken *after* the fallback fired.
    pub fallback_decisions: u64,
    /// Per-tenant series, keyed by tenant index.
    pub users: BTreeMap<usize, UserSeries>,
}

impl TimeSeriesSnapshot {
    /// Fraction of scheduler decisions taken in fallback (round-robin)
    /// mode; 0.0 before any decision.
    pub fn fallback_rate(&self) -> f64 {
        if self.decisions == 0 {
            0.0
        } else {
            self.fallback_decisions as f64 / self.decisions as f64
        }
    }

    /// Mean regret across tenants (0.0 with no tenants yet) — the live
    /// counterpart of the paper's mean-accuracy-loss curves.
    pub fn mean_regret(&self) -> f64 {
        if self.users.is_empty() {
            0.0
        } else {
            self.users.values().map(UserSeries::regret).sum::<f64>() / self.users.len() as f64
        }
    }

    /// Aggregate cost-weighted regret decomposition across all tenants.
    pub fn cum_regret(&self) -> RegretDecomposition {
        let mut out = RegretDecomposition::default();
        for series in self.users.values() {
            out.accumulate(&series.cum_regret);
        }
        out
    }
}

struct TsState {
    clock: f64,
    rounds: u64,
    failed_rounds: u64,
    decisions: u64,
    fallback_active: bool,
    fallback_decisions: u64,
    users: BTreeMap<usize, UserSeries>,
    targets: BTreeMap<usize, f64>,
}

/// A [`Recorder`] / [`StreamingSink`] that folds events into per-tenant
/// regret time series against the simulated clock.
///
/// Attach it with [`crate::RecorderHandle::new`] for a standalone live
/// view, or as a sink on a [`TeeRecorder`](crate::TeeRecorder) so one event
/// stream feeds the in-memory trace, the disk, and the live curves at
/// once. Counter/gauge/timing calls are ignored — this type only consumes
/// the structured event stream.
pub struct TimeSeriesRecorder {
    sample_interval: f64,
    state: Mutex<TsState>,
}

impl Default for TimeSeriesRecorder {
    fn default() -> Self {
        TimeSeriesRecorder::new()
    }
}

impl TimeSeriesRecorder {
    /// A recorder sampling every completion (interval 0).
    pub fn new() -> Self {
        TimeSeriesRecorder {
            sample_interval: 0.0,
            state: Mutex::new(TsState {
                clock: 0.0,
                rounds: 0,
                failed_rounds: 0,
                decisions: 0,
                fallback_active: false,
                fallback_decisions: 0,
                users: BTreeMap::new(),
                targets: BTreeMap::new(),
            }),
        }
    }

    /// Sets the sampling interval in simulated-clock units: a tenant's
    /// curve appends a new point only after the clock advanced by at least
    /// `interval` since the tenant's previous point; in between, the last
    /// point is updated in place. This bounds curve memory by
    /// `horizon / interval` regardless of how many runs complete.
    pub fn with_sample_interval(mut self, interval: f64) -> Self {
        self.sample_interval = interval.max(0.0);
        self
    }

    /// Declares the best achievable quality μ* for `user`, making the
    /// tenant's regret the paper's true accuracy loss instead of the
    /// default loss-to-1.0. Applies retroactively to the current best.
    pub fn set_target(&self, user: usize, target: f64) {
        let mut state = self.state.lock();
        state.targets.insert(user, target);
        if let Some(series) = state.users.get_mut(&user) {
            series.target = target;
        }
    }

    /// Folds one event into the series. This is what both trait impls call.
    pub fn fold(&self, event: &Event) {
        match event {
            Event::TrainingCompleted {
                user,
                model,
                cost,
                quality,
                ..
            } => {
                let interval = self.sample_interval;
                // Sanitize the clock advance: a malformed trace (negative or
                // non-finite cost) must not run time backwards — every curve
                // stays monotone in the simulated clock.
                let dt = if cost.is_finite() && *cost > 0.0 {
                    *cost
                } else {
                    0.0
                };
                let mut state = self.state.lock();
                state.rounds += 1;
                let target = state.targets.get(user).copied().unwrap_or(1.0);
                // Materialize the served tenant before accrual so its
                // interval is attributed even on its very first run.
                state
                    .users
                    .entry(*user)
                    .or_insert_with(|| UserSeries::new(target));
                // Integrate every tenant's pre-completion regret over the
                // interval this run occupied: the served tenant's share is
                // arm-picking regret, everyone else's is user-picking
                // regret (they waited), per the Theorem 1 decomposition.
                if dt > 0.0 {
                    for (&tenant, series) in state.users.iter_mut() {
                        let regret = series.regret();
                        if regret <= 0.0 {
                            continue;
                        }
                        if tenant == *user {
                            series.cum_regret.arm_picking += regret * dt;
                        } else {
                            series.cum_regret.user_picking += regret * dt;
                        }
                        series.cum_regret.total += regret * dt;
                    }
                }
                state.clock += dt;
                let clock = state.clock;
                let series = state.users.get_mut(user).expect("materialized above");
                series.served += 1;
                series.cumulative_cost += dt;
                series.last_quality = *quality;
                if *quality > series.best_quality {
                    series.best_quality = *quality;
                }
                *series.arm_pulls.entry(*model).or_insert(0) += 1;
                let regret = series.regret();
                if series.regret_curve.is_empty() || clock - series.sample_anchor >= interval {
                    series.regret_curve.push((clock, regret));
                    series.sample_anchor = clock;
                } else {
                    // Within the sampling interval: update the final point
                    // in place so the curve still ends at the latest state.
                    *series.regret_curve.last_mut().unwrap() = (clock, regret);
                }
            }
            Event::TrainingFailed {
                user,
                cost: charged,
                ..
            } => {
                // A censored run: the cluster clock and the tenant's cost
                // advance by the cost consumed, regret keeps integrating
                // over the wasted interval (same Theorem 1 attribution as a
                // completed run), but no quality observation lands.
                let interval = self.sample_interval;
                let dt = if charged.is_finite() && *charged > 0.0 {
                    *charged
                } else {
                    0.0
                };
                let mut state = self.state.lock();
                state.failed_rounds += 1;
                let target = state.targets.get(user).copied().unwrap_or(1.0);
                state
                    .users
                    .entry(*user)
                    .or_insert_with(|| UserSeries::new(target));
                if dt > 0.0 {
                    for (&tenant, series) in state.users.iter_mut() {
                        let regret = series.regret();
                        if regret <= 0.0 {
                            continue;
                        }
                        if tenant == *user {
                            series.cum_regret.arm_picking += regret * dt;
                        } else {
                            series.cum_regret.user_picking += regret * dt;
                        }
                        series.cum_regret.total += regret * dt;
                    }
                }
                state.clock += dt;
                let clock = state.clock;
                let series = state.users.get_mut(user).expect("materialized above");
                series.failed += 1;
                series.cumulative_cost += dt;
                let regret = series.regret();
                if series.regret_curve.is_empty() || clock - series.sample_anchor >= interval {
                    series.regret_curve.push((clock, regret));
                    series.sample_anchor = clock;
                } else {
                    *series.regret_curve.last_mut().unwrap() = (clock, regret);
                }
            }
            Event::SchedulerDecision { .. } => {
                let mut state = self.state.lock();
                state.decisions += 1;
                if state.fallback_active {
                    state.fallback_decisions += 1;
                }
            }
            Event::HybridFallback { .. } => {
                self.state.lock().fallback_active = true;
            }
            Event::ArmChosen { .. }
            | Event::PosteriorUpdated { .. }
            | Event::RetryScheduled { .. }
            | Event::ArmQuarantined { .. }
            | Event::CheckpointWritten { .. }
            // Dispatch/device events carry no cost charge: the clock only
            // advances on TrainingCompleted / TrainingFailed, so multi-
            // device traces fold into the same cost-domain decomposition.
            | Event::RunDispatched { .. }
            | Event::RunFinished { .. }
            | Event::DeviceIdle { .. }
            | Event::SpanStart { .. }
            | Event::SpanEnd { .. }
            | Event::JitterRetry { .. }
            | Event::PsdProjectionApplied { .. } => {}
        }
    }

    /// A copy of the current folded state.
    pub fn snapshot(&self) -> TimeSeriesSnapshot {
        let state = self.state.lock();
        TimeSeriesSnapshot {
            clock: state.clock,
            rounds: state.rounds,
            failed_rounds: state.failed_rounds,
            decisions: state.decisions,
            fallback_active: state.fallback_active,
            fallback_decisions: state.fallback_decisions,
            users: state.users.clone(),
        }
    }
}

impl Recorder for TimeSeriesRecorder {
    fn record(&self, event: Event) {
        self.fold(&event);
    }

    fn add_counter(&self, _name: &'static str, _delta: u64) {}
    fn set_gauge(&self, _name: &'static str, _value: f64) {}
    fn record_timing(&self, _component: Component, _nanos: u64) {}
}

impl StreamingSink for TimeSeriesRecorder {
    fn append(&self, _seq: u64, event: &Event) {
        self.fold(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn completed(user: usize, model: usize, cost: f64, quality: f64) -> Event {
        Event::TrainingCompleted {
            user,
            model,
            cost,
            quality,
            parent: 0,
        }
    }

    fn assert_curve_monotone(curve: &[(f64, f64)]) {
        for w in curve.windows(2) {
            assert!(w[1].0 >= w[0].0, "curve went back in time: {curve:?}");
        }
    }

    #[test]
    fn folds_training_events_into_per_user_series() {
        let ts = TimeSeriesRecorder::new();
        ts.set_target(0, 0.9);
        ts.fold(&completed(0, 2, 1.0, 0.5));
        ts.fold(&completed(1, 0, 2.0, 0.8));
        ts.fold(&completed(0, 2, 1.0, 0.7));
        ts.fold(&completed(0, 3, 1.0, 0.6)); // worse run: best stays 0.7

        let snap = ts.snapshot();
        assert_eq!(snap.rounds, 4);
        assert!((snap.clock - 5.0).abs() < 1e-12);
        let u0 = &snap.users[&0];
        assert_eq!(u0.served, 3);
        assert!((u0.cumulative_cost - 3.0).abs() < 1e-12);
        assert!((u0.best_quality - 0.7).abs() < 1e-12);
        assert!((u0.last_quality - 0.6).abs() < 1e-12);
        assert!((u0.regret() - 0.2).abs() < 1e-12, "target 0.9 - best 0.7");
        assert_eq!(u0.arm_pulls[&2], 2);
        assert_eq!(u0.arm_pulls[&3], 1);
        // Default target (no μ* declared) is 1.0.
        let u1 = &snap.users[&1];
        assert!((u1.regret() - 0.2).abs() < 1e-12, "1.0 - 0.8");
        // Curves advance on the *global* simulated clock.
        assert_eq!(u0.regret_curve.len(), 3);
        assert_eq!(u0.regret_curve[0].0, 1.0);
        assert_eq!(u0.regret_curve[1].0, 4.0);
        assert_eq!(u0.regret_curve[2].0, 5.0);
        // Regret is non-increasing for a fixed target.
        for w in u0.regret_curve.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-12);
        }
    }

    #[test]
    fn sampling_interval_bounds_curve_length_but_keeps_the_latest() {
        let ts = TimeSeriesRecorder::new().with_sample_interval(10.0);
        for i in 0..100 {
            ts.fold(&completed(0, 0, 1.0, 0.001 * i as f64));
        }
        let snap = ts.snapshot();
        let curve = &snap.users[&0].regret_curve;
        // 100 cost units at one sample per ≥10 units: ~10 points, not 100.
        assert!(curve.len() <= 11, "curve has {} points", curve.len());
        // The last point reflects the very latest state.
        let last = curve.last().unwrap();
        assert_eq!(last.0, 100.0);
        assert!((last.1 - (1.0 - 0.099)).abs() < 1e-12);
    }

    fn failed(user: usize, model: usize, cost: f64) -> Event {
        Event::TrainingFailed {
            user,
            model,
            cost,
            kind: "crash".into(),
            attempt: 1,
            parent: 0,
        }
    }

    #[test]
    fn failed_runs_are_censored_but_still_charged() {
        let ts = TimeSeriesRecorder::new();
        ts.set_target(0, 1.0);
        ts.set_target(1, 1.0);
        ts.fold(&completed(0, 0, 2.0, 0.5));
        // User 0's next run crashes after 3 cost units: the clock and the
        // tenant's cost advance, regret keeps integrating, but no quality
        // lands and `served` stays put.
        ts.fold(&failed(0, 1, 3.0));
        ts.fold(&completed(1, 0, 1.0, 0.8));

        let snap = ts.snapshot();
        assert_eq!(snap.rounds, 2);
        assert_eq!(snap.failed_rounds, 1);
        assert!((snap.clock - 6.0).abs() < 1e-12);
        let u0 = &snap.users[&0];
        assert_eq!(u0.served, 1);
        assert_eq!(u0.failed, 1);
        assert!((u0.cumulative_cost - 5.0).abs() < 1e-12);
        assert!((u0.best_quality - 0.5).abs() < 1e-12, "censored quality");
        // The wasted interval is arm-picking regret for the served tenant:
        // 1.0·2 (first run) + 0.5·3 (the crash).
        assert!((u0.cum_regret.arm_picking - 3.5).abs() < 1e-12);
        // User 1 waited through both intervals after materializing only on
        // its own round, so it accrues nothing yet.
        let d = snap.cum_regret();
        assert!((d.sum() - d.total).abs() < 1e-9, "{d:?}");
        assert_curve_monotone(&u0.regret_curve);
        assert_eq!(u0.regret_curve.last().unwrap().0, 5.0);
    }

    #[test]
    fn malformed_failed_costs_do_not_rewind_the_clock() {
        let ts = TimeSeriesRecorder::new();
        ts.fold(&completed(0, 0, 1.0, 0.4));
        ts.fold(&failed(0, 1, -2.0));
        ts.fold(&failed(0, 1, f64::NAN));
        let snap = ts.snapshot();
        assert!((snap.clock - 1.0).abs() < 1e-12);
        assert_eq!(snap.failed_rounds, 2);
        assert_curve_monotone(&snap.users[&0].regret_curve);
    }

    #[test]
    fn fallback_rate_counts_decisions_after_the_switch() {
        let ts = TimeSeriesRecorder::new();
        let decision = Event::SchedulerDecision {
            round: 0,
            user: 0,
            rule: "hybrid".into(),
            scores: vec![],
            parent: 0,
        };
        for _ in 0..6 {
            ts.fold(&decision);
        }
        assert_eq!(ts.snapshot().fallback_rate(), 0.0);
        ts.fold(&Event::HybridFallback {
            reason: "frozen".into(),
            parent: 0,
        });
        for _ in 0..2 {
            ts.fold(&decision);
        }
        let snap = ts.snapshot();
        assert!(snap.fallback_active);
        assert_eq!(snap.decisions, 8);
        assert_eq!(snap.fallback_decisions, 2);
        assert!((snap.fallback_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn mean_regret_averages_users() {
        let ts = TimeSeriesRecorder::new();
        assert_eq!(ts.snapshot().mean_regret(), 0.0);
        ts.fold(&completed(0, 0, 1.0, 0.8)); // regret 0.2
        ts.fold(&completed(1, 0, 1.0, 0.6)); // regret 0.4
        assert!((ts.snapshot().mean_regret() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn set_target_applies_retroactively() {
        let ts = TimeSeriesRecorder::new();
        ts.fold(&completed(0, 0, 1.0, 0.75));
        assert!((ts.snapshot().users[&0].regret() - 0.25).abs() < 1e-12);
        ts.set_target(0, 0.8);
        assert!((ts.snapshot().users[&0].regret() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn regret_decomposition_splits_served_vs_waiting_intervals() {
        let ts = TimeSeriesRecorder::new();
        ts.set_target(0, 1.0);
        ts.set_target(1, 1.0);
        // Round 1: user 0 served, cost 2, reaches 0.5. Pre-completion
        // regret of user 0 is 1.0 (best 0.0) → arm term 1.0·2. User 1 is
        // unknown yet, so it accrues nothing.
        ts.fold(&completed(0, 0, 2.0, 0.5));
        // Round 2: user 1 served, cost 1, reaches 0.8. User 1's own
        // pre-completion regret 1.0 → arm term 1.0·1; user 0 waited with
        // regret 0.5 → user term 0.5·1.
        ts.fold(&completed(1, 0, 1.0, 0.8));
        // Round 3: user 0 served again, cost 4, reaches 0.9. User 0 arm
        // term += 0.5·4; user 1 waited: user term 0.2·4.
        ts.fold(&completed(0, 1, 4.0, 0.9));

        let snap = ts.snapshot();
        let u0 = &snap.users[&0].cum_regret;
        let u1 = &snap.users[&1].cum_regret;
        assert!((u0.arm_picking - (2.0 + 2.0)).abs() < 1e-12, "{u0:?}");
        assert!((u0.user_picking - 0.5).abs() < 1e-12, "{u0:?}");
        assert!((u1.arm_picking - 1.0).abs() < 1e-12, "{u1:?}");
        assert!((u1.user_picking - 0.8).abs() < 1e-12, "{u1:?}");
        // The two terms sum to the undecomposed integral, per user and in
        // aggregate.
        for d in [u0, u1, &snap.cum_regret()] {
            assert!((d.sum() - d.total).abs() < 1e-9, "{d:?}");
        }
        assert!((snap.cum_regret().total - (2.0 + 1.5 + 2.8)).abs() < 1e-12);
    }

    #[test]
    fn decomposition_stops_accruing_once_target_is_reached() {
        let ts = TimeSeriesRecorder::new();
        ts.set_target(0, 0.8);
        ts.fold(&completed(0, 0, 1.0, 0.8)); // hits μ* immediately
        ts.fold(&completed(1, 0, 5.0, 0.1)); // user 0 waits with zero regret
        let snap = ts.snapshot();
        let u0 = &snap.users[&0].cum_regret;
        assert!((u0.arm_picking - 0.8).abs() < 1e-12, "first interval only");
        assert_eq!(u0.user_picking, 0.0);
    }

    #[test]
    fn duplicate_timestamps_keep_curves_monotone() {
        // Zero-cost completions do not advance the simulated clock: the
        // curve may hold duplicate timestamps but must never go backwards,
        // and the last point must reflect the latest state.
        let ts = TimeSeriesRecorder::new();
        ts.fold(&completed(0, 0, 1.0, 0.3));
        ts.fold(&completed(0, 1, 0.0, 0.5));
        ts.fold(&completed(0, 2, 0.0, 0.7));
        ts.fold(&completed(0, 3, 1.0, 0.9));
        let snap = ts.snapshot();
        assert!((snap.clock - 2.0).abs() < 1e-12);
        let curve = &snap.users[&0].regret_curve;
        assert_curve_monotone(curve);
        let last = curve.last().unwrap();
        assert_eq!(last.0, 2.0);
        assert!((last.1 - 0.1).abs() < 1e-12);
        // Zero-length intervals contribute nothing to the integral: only
        // the two unit-cost rounds accrue (regret 1.0, then 1.0 − 0.7).
        let d = &snap.users[&0].cum_regret;
        assert!((d.total - (1.0 + 0.3)).abs() < 1e-12, "{d:?}");
    }

    #[test]
    fn out_of_order_and_malformed_costs_never_run_time_backwards() {
        // A replayed trace can hand the recorder garbage: negative or
        // non-finite costs must be treated as zero-length intervals rather
        // than rewinding the clock.
        let ts = TimeSeriesRecorder::new().with_sample_interval(0.5);
        ts.fold(&completed(0, 0, 2.0, 0.4));
        ts.fold(&completed(0, 1, -3.0, 0.6));
        ts.fold(&completed(0, 2, f64::NAN, 0.65));
        ts.fold(&completed(0, 3, 1.0, 0.7));
        let snap = ts.snapshot();
        assert!((snap.clock - 3.0).abs() < 1e-12, "clock = {}", snap.clock);
        let u0 = &snap.users[&0];
        assert_curve_monotone(&u0.regret_curve);
        assert!((u0.cumulative_cost - 3.0).abs() < 1e-12);
        assert!(u0.cum_regret.total.is_finite());
        assert!(u0.cum_regret.sum() >= 0.0);
        // The best quality still tracked through the malformed events.
        assert!((u0.best_quality - 0.7).abs() < 1e-12);
    }

    #[test]
    fn interleaved_multi_user_folding_keeps_every_curve_monotone() {
        // Simulates out-of-order arrival from concurrent completions: the
        // per-event costs arrive in no particular order, yet every curve
        // must advance monotonically on the shared clock.
        let ts = TimeSeriesRecorder::new();
        let costs = [3.0, 1.0, 0.0, 2.0, 1.0, 5.0, 0.5, 0.25];
        for (i, &cost) in costs.iter().enumerate() {
            ts.fold(&completed(i % 3, i % 4, cost, 0.1 * i as f64));
        }
        let snap = ts.snapshot();
        for series in snap.users.values() {
            assert_curve_monotone(&series.regret_curve);
        }
        let expected: f64 = costs.iter().sum();
        assert!((snap.clock - expected).abs() < 1e-12);
    }
}
