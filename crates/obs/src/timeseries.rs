//! Folding the event stream into live per-tenant time series.
//!
//! Ease.ml's evaluation (Fig. 8–10) is all about *regret trajectories over
//! simulated time*: how fast each tenant's accuracy gap closes as the
//! shared cluster spends cost. [`TimeSeriesRecorder`] produces exactly
//! those curves during a run, not after it: it folds
//! `TrainingCompleted` / `SchedulerDecision` / `HybridFallback` events into
//! per-user regret curves sampled against the simulated clock (cumulative
//! cost), cumulative per-user cost, arm-pull counts, and the
//! hybrid-fallback rate. It implements both [`Recorder`] (attach it
//! directly) and [`StreamingSink`] (hang it off a
//! [`TeeRecorder`](crate::TeeRecorder) next to a file sink).
//!
//! # Two modes, one fold
//!
//! The recorder runs in one of two modes, chosen at construction:
//!
//! * **Exact** ([`TimeSeriesRecorder::new`]) keeps one [`UserSeries`] per
//!   tenant — bit-exact curves and Theorem 1 decompositions, O(U) memory.
//!   Right for simulations and services with up to a few thousand tenants.
//! * **Aggregate** ([`TimeSeriesRecorder::aggregate`]) is the
//!   million-tenant mode: memory is a *constant* governed by the
//!   [`ScaleConfig`] cardinality budget, independent of the tenant count.
//!   Per-tenant series exist only for a reservoir-sampled set of exemplar
//!   tenants; everything else folds into mergeable summaries.
//!
//! Both modes additionally maintain the *scale layer*: per-strategy
//! regret/cost/quality [`QuantileSketch`]es over per-run observations,
//! Space-Saving top-K worst-regret / worst-cost tenant trackers, and
//! self-overhead accounting (ns spent folding, events sampled into
//! exemplar series vs. dropped to sketches only). The per-run regret
//! observation is `max(target − quality, 0)` — a censored (failed) run
//! observes quality 0, i.e. full regret — which is O(1) to compute with no
//! per-tenant state, so the same definition folds identically online, in
//! aggregate mode, and offline in `easeml-trace`.

use crate::event::Event;
use crate::recorder::{Component, Recorder};
use crate::sink::StreamingSink;
use crate::sketch::{
    QuantileSketch, Reservoir, ReservoirOutcome, SpaceSaving, DEFAULT_SKETCH_ALPHA,
    DEFAULT_SKETCH_MAX_BUCKETS,
};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Cost-weighted cumulative regret split into the two terms of the paper's
/// Theorem 1 analysis.
///
/// Regret is integrated over the simulated clock: each completed run of
/// cost `Δc` adds `regret · Δc` for every tenant that still had regret
/// during that interval. The interval is attributed to the tenant's
/// **arm-picking** term when the tenant itself was the one being served
/// (any remaining regret is the GP-UCB arm picker's responsibility) and to
/// its **user-picking** term when the scheduler served someone else (the
/// regret persisted because the user picker made the tenant wait). By
/// construction `arm_picking + user_picking` equals the undecomposed
/// integral, which is accumulated separately in `total` as a consistency
/// check (equal up to floating-point accumulation order).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RegretDecomposition {
    /// Regret·cost accrued over intervals in which this tenant was served.
    pub arm_picking: f64,
    /// Regret·cost accrued over intervals in which another tenant was
    /// served.
    pub user_picking: f64,
    /// The undecomposed integral `∫ regret dcost`, accumulated in one sum.
    pub total: f64,
}

impl RegretDecomposition {
    /// The decomposed sum `arm_picking + user_picking`; matches
    /// [`RegretDecomposition::total`] within floating-point tolerance.
    pub fn sum(&self) -> f64 {
        self.arm_picking + self.user_picking
    }

    /// Accumulates another decomposition into this one.
    pub fn accumulate(&mut self, other: &RegretDecomposition) {
        self.arm_picking += other.arm_picking;
        self.user_picking += other.user_picking;
        self.total += other.total;
    }
}

/// One tenant's live series, folded from `TrainingCompleted` events.
#[derive(Debug, Clone)]
pub struct UserSeries {
    /// Number of training runs completed for this tenant.
    pub served: u64,
    /// Number of failed (censored) training runs charged to this tenant.
    pub failed: u64,
    /// Total cost charged to this tenant so far.
    pub cumulative_cost: f64,
    /// Best quality any of the tenant's runs reached.
    pub best_quality: f64,
    /// Quality of the tenant's most recent run.
    pub last_quality: f64,
    /// The quality target regret is measured against (the best achievable
    /// quality μ* when known; defaults to 1.0, i.e. loss to perfect
    /// accuracy).
    pub target: f64,
    /// Training runs per model index (arm-pull counts).
    pub arm_pulls: BTreeMap<usize, u64>,
    /// `(simulated clock, regret)` samples, oldest first. The final sample
    /// always reflects the latest completed run.
    pub regret_curve: Vec<(f64, f64)>,
    /// Cost-weighted cumulative regret, split into the Theorem 1 terms.
    pub cum_regret: RegretDecomposition,
    /// Clock at which the last curve point was *appended* (in-place updates
    /// of the final point do not move this), driving interval sampling.
    sample_anchor: f64,
}

impl UserSeries {
    fn new(target: f64) -> Self {
        UserSeries {
            served: 0,
            failed: 0,
            cumulative_cost: 0.0,
            best_quality: 0.0,
            last_quality: 0.0,
            target,
            arm_pulls: BTreeMap::new(),
            regret_curve: Vec::new(),
            cum_regret: RegretDecomposition::default(),
            sample_anchor: 0.0,
        }
    }

    /// Current regret: how far the tenant's best model still sits below
    /// the target (never negative).
    pub fn regret(&self) -> f64 {
        (self.target - self.best_quality).max(0.0)
    }

    fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + 32 * self.arm_pulls.len() + 16 * self.regret_curve.capacity()
    }
}

/// Cardinality budget for [`TimeSeriesRecorder::aggregate`] mode: every
/// knob that lets per-tenant state grow is bounded here, so the recorder's
/// memory and the `/metrics` body it feeds are constants independent of
/// the tenant count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleConfig {
    /// Hard cap on distinct per-tenant label values the recorder may
    /// materialize (exemplar curves plus both top-K trackers). The other
    /// knobs are clamped so `2·topk + exemplars ≤ max_tenant_series`.
    pub max_tenant_series: usize,
    /// Relative-error target for the quantile sketches.
    pub quantile_alpha: f64,
    /// Bucket cap per quantile sketch (see [`QuantileSketch`]).
    pub sketch_max_buckets: usize,
    /// Slots in each Space-Saving worst-regret / worst-cost tracker.
    pub topk: usize,
    /// Reservoir size for exemplar tenant curves kept live in aggregate
    /// mode.
    pub exemplars: usize,
    /// Cap on distinct scheduler-rule labels; overflow folds into
    /// `"other"`.
    pub max_strategies: usize,
    /// Seed for the exemplar reservoir's deterministic sampling stream.
    pub seed: u64,
}

impl Default for ScaleConfig {
    fn default() -> Self {
        ScaleConfig {
            max_tenant_series: 128,
            quantile_alpha: DEFAULT_SKETCH_ALPHA,
            sketch_max_buckets: DEFAULT_SKETCH_MAX_BUCKETS,
            topk: 10,
            exemplars: 8,
            max_strategies: 8,
            seed: 0x00ea_5e31,
        }
    }
}

impl ScaleConfig {
    fn normalized(mut self) -> Self {
        self.max_tenant_series = self.max_tenant_series.max(3);
        self.topk = self.topk.clamp(1, self.max_tenant_series / 3);
        self.exemplars = self
            .exemplars
            .clamp(1, self.max_tenant_series - 2 * self.topk);
        self.max_strategies = self.max_strategies.max(1);
        self
    }

    fn sketch(&self) -> QuantileSketch {
        QuantileSketch::with_max_buckets(self.quantile_alpha, self.sketch_max_buckets)
    }
}

/// The quantile sketches folded per scheduler-rule label.
#[derive(Debug, Clone, PartialEq)]
pub struct StrategySketches {
    /// Per-run regret observations `max(target − quality, 0)`; a censored
    /// run observes full regret.
    pub regret: QuantileSketch,
    /// Per-run charged cost (zero-cost runs are skipped: they carry no
    /// clock signal).
    pub cost: QuantileSketch,
    /// Per-run observed quality (completed runs only).
    pub quality: QuantileSketch,
}

impl StrategySketches {
    fn new(cfg: &ScaleConfig) -> Self {
        StrategySketches {
            regret: cfg.sketch(),
            cost: cfg.sketch(),
            quality: cfg.sketch(),
        }
    }

    fn approx_bytes(&self) -> usize {
        self.regret.approx_bytes() + self.cost.approx_bytes() + self.quality.approx_bytes()
    }
}

/// One entry of a top-K offender ranking: estimated weight over-counts the
/// truth by at most `error` (the Space-Saving guarantee).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopTenant {
    /// Tenant index.
    pub user: usize,
    /// Estimated accumulated weight (cost, or cost-weighted regret).
    pub weight: f64,
    /// Upper bound on the overestimate.
    pub error: f64,
}

/// The telemetry pipeline accounting for itself: how much work the
/// recorder did, and what the aggregate mode sampled away.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TelemetryOverhead {
    /// Wall-clock nanoseconds spent inside [`TimeSeriesRecorder::fold`].
    pub fold_ns: u64,
    /// Total events folded (all variants).
    pub events_folded: u64,
    /// Run events that updated a materialized per-tenant series.
    pub events_sampled: u64,
    /// Run events that hit only the bounded sketches (aggregate mode:
    /// the tenant was sampled out of the exemplar reservoir).
    pub events_dropped: u64,
    /// Exemplar tenants whose live curve was evicted by reservoir
    /// replacement.
    pub exemplar_evictions: u64,
}

/// Point-in-time copy of the bounded scale layer: sketches, top-K
/// offenders, exemplars, and self-overhead.
#[derive(Debug, Clone)]
pub struct ScaleSnapshot {
    /// True when the recorder runs in aggregate (bounded-memory) mode.
    pub aggregate: bool,
    /// Relative-error target of the quantile sketches.
    pub quantile_alpha: f64,
    /// Sketches keyed by scheduler-rule label (`"unknown"` before the
    /// first `SchedulerDecision`, `"other"` past the strategy cap).
    pub strategies: BTreeMap<String, StrategySketches>,
    /// Worst tenants by cost-weighted regret (`regret_obs · Δcost`),
    /// heaviest first.
    pub worst_regret: Vec<TopTenant>,
    /// Worst tenants by charged cost, heaviest first.
    pub worst_cost: Vec<TopTenant>,
    /// Tenants currently holding a live exemplar curve.
    pub exemplar_users: Vec<usize>,
    /// The recorder's self-accounting.
    pub overhead: TelemetryOverhead,
    /// Estimated in-memory footprint of the whole recorder state.
    pub approx_state_bytes: usize,
}

impl ScaleSnapshot {
    /// Sketches for all strategies merged into one (losslessly: equal
    /// alpha buckets add).
    pub fn merged(&self) -> Option<StrategySketches> {
        let mut it = self.strategies.values();
        let mut merged = it.next()?.clone();
        for group in it {
            merged.regret.merge(&group.regret);
            merged.cost.merge(&group.cost);
            merged.quality.merge(&group.quality);
        }
        Some(merged)
    }
}

/// A point-in-time copy of everything the recorder has folded.
#[derive(Debug, Clone)]
pub struct TimeSeriesSnapshot {
    /// The simulated clock: cumulative cost across all completed runs.
    pub clock: f64,
    /// Total completed training runs.
    pub rounds: u64,
    /// Total failed (censored) training runs: they advanced the clock and
    /// charged their tenant but produced no quality observation.
    pub failed_rounds: u64,
    /// Total `SchedulerDecision` events seen.
    pub decisions: u64,
    /// Whether a `HybridFallback` has fired (the hybrid scheduler is in its
    /// round-robin phase).
    pub fallback_active: bool,
    /// Scheduler decisions taken *after* the fallback fired.
    pub fallback_decisions: u64,
    /// Per-tenant series, keyed by tenant index. In aggregate mode this
    /// holds only the exemplar tenants, windowed from when each joined the
    /// reservoir.
    pub users: BTreeMap<usize, UserSeries>,
    /// The bounded scale layer: sketches, top-K offenders, self-overhead.
    pub scale: ScaleSnapshot,
}

impl TimeSeriesSnapshot {
    /// Fraction of scheduler decisions taken in fallback (round-robin)
    /// mode; 0.0 before any decision.
    pub fn fallback_rate(&self) -> f64 {
        if self.decisions == 0 {
            0.0
        } else {
            self.fallback_decisions as f64 / self.decisions as f64
        }
    }

    /// Mean regret across materialized tenants (0.0 with no tenants yet) —
    /// the live counterpart of the paper's mean-accuracy-loss curves. In
    /// aggregate mode this averages the exemplar sample only.
    pub fn mean_regret(&self) -> f64 {
        if self.users.is_empty() {
            0.0
        } else {
            self.users.values().map(UserSeries::regret).sum::<f64>() / self.users.len() as f64
        }
    }

    /// Aggregate cost-weighted regret decomposition across materialized
    /// tenants (exemplars only in aggregate mode).
    pub fn cum_regret(&self) -> RegretDecomposition {
        let mut out = RegretDecomposition::default();
        for series in self.users.values() {
            out.accumulate(&series.cum_regret);
        }
        out
    }
}

/// The always-on bounded layer: per-strategy sketches, offender trackers,
/// exemplar reservoir, and the sampled/dropped accounting.
struct ScaleState {
    cfg: ScaleConfig,
    current_rule: String,
    strategies: BTreeMap<String, StrategySketches>,
    worst_regret: SpaceSaving,
    worst_cost: SpaceSaving,
    exemplars: Reservoir<usize>,
    events_sampled: u64,
    events_dropped: u64,
    exemplar_evictions: u64,
}

impl ScaleState {
    fn new(cfg: ScaleConfig) -> Self {
        ScaleState {
            current_rule: "unknown".to_string(),
            strategies: BTreeMap::new(),
            worst_regret: SpaceSaving::new(cfg.topk),
            worst_cost: SpaceSaving::new(cfg.topk),
            exemplars: Reservoir::new(cfg.exemplars, cfg.seed),
            events_sampled: 0,
            events_dropped: 0,
            exemplar_evictions: 0,
            cfg,
        }
    }

    /// The sketch group for the current scheduler rule, folding overflow
    /// labels into `"other"` so strategy cardinality stays capped.
    fn group(&mut self) -> &mut StrategySketches {
        let key = if self.strategies.contains_key(&self.current_rule)
            || self.strategies.len() < self.cfg.max_strategies
        {
            self.current_rule.clone()
        } else {
            "other".to_string()
        };
        let cfg = self.cfg;
        self.strategies
            .entry(key)
            .or_insert_with(|| StrategySketches::new(&cfg))
    }

    fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .strategies
                .iter()
                .map(|(k, v)| k.len() + 48 + v.approx_bytes())
                .sum::<usize>()
            + self.worst_regret.approx_bytes()
            + self.worst_cost.approx_bytes()
            + 8 * self.cfg.exemplars
    }
}

struct TsState {
    clock: f64,
    rounds: u64,
    failed_rounds: u64,
    decisions: u64,
    fallback_active: bool,
    fallback_decisions: u64,
    users: BTreeMap<usize, UserSeries>,
    targets: BTreeMap<usize, f64>,
    default_target: f64,
    scale: ScaleState,
}

impl TsState {
    fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .users
                .values()
                .map(|s| 32 + s.approx_bytes())
                .sum::<usize>()
            + 32 * self.targets.len()
            + self.scale.approx_bytes()
    }
}

/// A [`Recorder`] / [`StreamingSink`] that folds events into per-tenant
/// regret time series against the simulated clock.
///
/// Attach it with [`crate::RecorderHandle::new`] for a standalone live
/// view, or as a sink on a [`TeeRecorder`](crate::TeeRecorder) so one event
/// stream feeds the in-memory trace, the disk, and the live curves at
/// once. Counter/gauge/timing calls are ignored — this type only consumes
/// the structured event stream.
///
/// [`TimeSeriesRecorder::new`] gives the exact per-tenant mode;
/// [`TimeSeriesRecorder::aggregate`] gives the bounded sketch-backed mode
/// for large tenant counts.
pub struct TimeSeriesRecorder {
    sample_interval: f64,
    aggregate: bool,
    fold_ns: AtomicU64,
    events_folded: AtomicU64,
    state: Mutex<TsState>,
}

impl Default for TimeSeriesRecorder {
    fn default() -> Self {
        TimeSeriesRecorder::new()
    }
}

impl TimeSeriesRecorder {
    /// An exact-mode recorder sampling every completion (interval 0): one
    /// [`UserSeries`] per tenant, O(U) memory.
    pub fn new() -> Self {
        Self::with_mode(false, ScaleConfig::default())
    }

    /// A bounded-memory recorder for large tenant populations: per-tenant
    /// state is limited to `cfg`'s cardinality budget (exemplar reservoir
    /// plus top-K trackers); everything else folds into mergeable
    /// sketches. Memory is a constant independent of the tenant count.
    pub fn aggregate(cfg: ScaleConfig) -> Self {
        Self::with_mode(true, cfg)
    }

    fn with_mode(aggregate: bool, cfg: ScaleConfig) -> Self {
        TimeSeriesRecorder {
            sample_interval: 0.0,
            aggregate,
            fold_ns: AtomicU64::new(0),
            events_folded: AtomicU64::new(0),
            state: Mutex::new(TsState {
                clock: 0.0,
                rounds: 0,
                failed_rounds: 0,
                decisions: 0,
                fallback_active: false,
                fallback_decisions: 0,
                users: BTreeMap::new(),
                targets: BTreeMap::new(),
                default_target: 1.0,
                scale: ScaleState::new(cfg.normalized()),
            }),
        }
    }

    /// Whether this recorder runs in bounded (aggregate) mode.
    pub fn is_aggregate(&self) -> bool {
        self.aggregate
    }

    /// Sets the sampling interval in simulated-clock units: a tenant's
    /// curve appends a new point only after the clock advanced by at least
    /// `interval` since the tenant's previous point; in between, the last
    /// point is updated in place. This bounds curve memory by
    /// `horizon / interval` regardless of how many runs complete.
    pub fn with_sample_interval(mut self, interval: f64) -> Self {
        self.sample_interval = interval.max(0.0);
        self
    }

    /// Declares the best achievable quality μ* for `user`, making the
    /// tenant's regret the paper's true accuracy loss instead of the
    /// default loss-to-1.0. Applies retroactively to the current best.
    ///
    /// Note: this map is caller-controlled O(#declared users). At large U,
    /// prefer [`TimeSeriesRecorder::set_default_target`].
    pub fn set_target(&self, user: usize, target: f64) {
        let mut state = self.state.lock();
        state.targets.insert(user, target);
        if let Some(series) = state.users.get_mut(&user) {
            series.target = target;
        }
    }

    /// Sets the target used for every tenant without an explicit
    /// [`TimeSeriesRecorder::set_target`] entry (default 1.0) — the O(1)
    /// way to calibrate regret across a large uniform population.
    pub fn set_default_target(&self, target: f64) {
        let mut state = self.state.lock();
        state.default_target = target;
        for series in state.users.values_mut() {
            series.target = target;
        }
        let targets = std::mem::take(&mut state.targets);
        for (&user, &t) in &targets {
            if let Some(series) = state.users.get_mut(&user) {
                series.target = t;
            }
        }
        state.targets = targets;
    }

    /// Estimated in-memory footprint of the folded state right now. In
    /// aggregate mode this is bounded by the [`ScaleConfig`] budget and
    /// the sampling interval, independent of the tenant count.
    pub fn approx_state_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.state.lock().approx_bytes()
    }

    /// Folds one training-run event (completed or censored). `quality` is
    /// `None` for censored runs: they advance the clock and charge the
    /// tenant but observe no quality — i.e. full regret for the sketch.
    fn fold_run(&self, user: usize, model: usize, cost: f64, quality: Option<f64>) {
        let interval = self.sample_interval;
        // Sanitize the clock advance: a malformed trace (negative or
        // non-finite cost) must not run time backwards — every curve
        // stays monotone in the simulated clock.
        let dt = if cost.is_finite() && cost > 0.0 {
            cost
        } else {
            0.0
        };
        let mut state = self.state.lock();
        if quality.is_some() {
            state.rounds += 1;
        } else {
            state.failed_rounds += 1;
        }
        let target = state
            .targets
            .get(&user)
            .copied()
            .unwrap_or(state.default_target);

        // --- the bounded scale layer (both modes, O(1) per event) -------
        let sane_quality = quality
            .filter(|q| q.is_finite())
            .map(|q| q.clamp(0.0, f64::MAX));
        let regret_obs = (target - sane_quality.unwrap_or(0.0)).max(0.0);
        let group = state.scale.group();
        group.regret.insert(regret_obs);
        if dt > 0.0 {
            group.cost.insert(dt);
        }
        if let Some(q) = sane_quality {
            group.quality.insert(q);
        }
        state.scale.worst_cost.offer(user as u64, dt);
        state.scale.worst_regret.offer(user as u64, regret_obs * dt);

        // --- materialize the served tenant (mode-dependent) -------------
        // Exact mode tracks everyone; aggregate mode only the reservoir's
        // exemplars, whose curves are windowed from when they joined.
        let materialized = if self.aggregate {
            if state.users.contains_key(&user) {
                true
            } else {
                match state.scale.exemplars.offer(user) {
                    ReservoirOutcome::Added => {
                        state.users.insert(user, UserSeries::new(target));
                        true
                    }
                    ReservoirOutcome::Replaced { evicted, .. } => {
                        state.users.remove(&evicted);
                        state.scale.exemplar_evictions += 1;
                        state.users.insert(user, UserSeries::new(target));
                        true
                    }
                    ReservoirOutcome::Rejected => false,
                }
            }
        } else {
            state
                .users
                .entry(user)
                .or_insert_with(|| UserSeries::new(target));
            true
        };
        if materialized {
            state.scale.events_sampled += 1;
        } else {
            state.scale.events_dropped += 1;
        }

        // Integrate every materialized tenant's pre-completion regret over
        // the interval this run occupied: the served tenant's share is
        // arm-picking regret, everyone else's is user-picking regret (they
        // waited), per the Theorem 1 decomposition. Exact mode integrates
        // all tenants; aggregate mode only the exemplar sample.
        if dt > 0.0 {
            for (&tenant, series) in state.users.iter_mut() {
                let regret = series.regret();
                if regret <= 0.0 {
                    continue;
                }
                if tenant == user {
                    series.cum_regret.arm_picking += regret * dt;
                } else {
                    series.cum_regret.user_picking += regret * dt;
                }
                series.cum_regret.total += regret * dt;
            }
        }
        state.clock += dt;
        let clock = state.clock;
        if !materialized {
            return;
        }
        let series = state.users.get_mut(&user).expect("materialized above");
        match quality {
            Some(q) => {
                series.served += 1;
                series.cumulative_cost += dt;
                series.last_quality = q;
                if q > series.best_quality {
                    series.best_quality = q;
                }
                *series.arm_pulls.entry(model).or_insert(0) += 1;
            }
            None => {
                // A censored run: the tenant's cost advances by the cost
                // consumed, but no quality observation lands.
                series.failed += 1;
                series.cumulative_cost += dt;
            }
        }
        let regret = series.regret();
        if series.regret_curve.is_empty() || clock - series.sample_anchor >= interval {
            series.regret_curve.push((clock, regret));
            series.sample_anchor = clock;
        } else {
            // Within the sampling interval: update the final point in
            // place so the curve still ends at the latest state.
            *series.regret_curve.last_mut().unwrap() = (clock, regret);
        }
    }

    /// Folds one event into the series. This is what both trait impls call.
    pub fn fold(&self, event: &Event) {
        let start = Instant::now();
        match event {
            Event::TrainingCompleted {
                user,
                model,
                cost,
                quality,
                ..
            } => self.fold_run(*user, *model, *cost, Some(*quality)),
            Event::TrainingFailed {
                user,
                model,
                cost: charged,
                ..
            } => self.fold_run(*user, *model, *charged, None),
            Event::SchedulerDecision { rule, .. } => {
                let mut state = self.state.lock();
                state.decisions += 1;
                if state.fallback_active {
                    state.fallback_decisions += 1;
                }
                if state.scale.current_rule != *rule {
                    state.scale.current_rule = rule.clone();
                }
            }
            Event::HybridFallback { .. } => {
                self.state.lock().fallback_active = true;
            }
            Event::ArmChosen { .. }
            | Event::PosteriorUpdated { .. }
            | Event::RetryScheduled { .. }
            | Event::ArmQuarantined { .. }
            | Event::CheckpointWritten { .. }
            // Dispatch/device events carry no cost charge: the clock only
            // advances on TrainingCompleted / TrainingFailed, so multi-
            // device traces fold into the same cost-domain decomposition.
            | Event::RunDispatched { .. }
            | Event::RunFinished { .. }
            | Event::DeviceIdle { .. }
            | Event::SpanStart { .. }
            | Event::SpanEnd { .. }
            | Event::JitterRetry { .. }
            | Event::PsdProjectionApplied { .. }
            // Witness events are provenance, not cost: the decisions and
            // charges they describe are already folded from the events
            // above.
            | Event::UserScored { .. }
            | Event::ArmScored { .. }
            | Event::DecisionWitness { .. }
            // Workload lifecycle/arrival events carry no cost either: the
            // runs a joined tenant eventually executes fold through the
            // completion events above, and arrivals only time the queue.
            | Event::TenantJoined { .. }
            | Event::TenantRetired { .. }
            | Event::JobArrived { .. } => {}
        }
        self.events_folded.fetch_add(1, Ordering::Relaxed);
        self.fold_ns
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }

    /// A copy of the current folded state.
    pub fn snapshot(&self) -> TimeSeriesSnapshot {
        let state = self.state.lock();
        let approx_state_bytes = std::mem::size_of::<Self>() + state.approx_bytes();
        let scale = ScaleSnapshot {
            aggregate: self.aggregate,
            quantile_alpha: state.scale.cfg.quantile_alpha,
            strategies: state.scale.strategies.clone(),
            worst_regret: top_tenants(&state.scale.worst_regret, state.scale.cfg.topk),
            worst_cost: top_tenants(&state.scale.worst_cost, state.scale.cfg.topk),
            exemplar_users: state.scale.exemplars.items().to_vec(),
            overhead: TelemetryOverhead {
                fold_ns: self.fold_ns.load(Ordering::Relaxed),
                events_folded: self.events_folded.load(Ordering::Relaxed),
                events_sampled: state.scale.events_sampled,
                events_dropped: state.scale.events_dropped,
                exemplar_evictions: state.scale.exemplar_evictions,
            },
            approx_state_bytes,
        };
        TimeSeriesSnapshot {
            clock: state.clock,
            rounds: state.rounds,
            failed_rounds: state.failed_rounds,
            decisions: state.decisions,
            fallback_active: state.fallback_active,
            fallback_decisions: state.fallback_decisions,
            users: state.users.clone(),
            scale,
        }
    }
}

fn top_tenants(tracker: &SpaceSaving, k: usize) -> Vec<TopTenant> {
    tracker
        .top(k)
        .into_iter()
        .map(|h| TopTenant {
            user: h.key as usize,
            weight: h.weight,
            error: h.error,
        })
        .collect()
}

impl Recorder for TimeSeriesRecorder {
    fn record(&self, event: Event) {
        self.fold(&event);
    }

    fn add_counter(&self, _name: &'static str, _delta: u64) {}
    fn set_gauge(&self, _name: &'static str, _value: f64) {}
    fn record_timing(&self, _component: Component, _nanos: u64) {}
}

impl StreamingSink for TimeSeriesRecorder {
    fn append(&self, _seq: u64, event: &Event) {
        self.fold(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn completed(user: usize, model: usize, cost: f64, quality: f64) -> Event {
        Event::TrainingCompleted {
            user,
            model,
            cost,
            quality,
            parent: 0,
        }
    }

    fn assert_curve_monotone(curve: &[(f64, f64)]) {
        for w in curve.windows(2) {
            assert!(w[1].0 >= w[0].0, "curve went back in time: {curve:?}");
        }
    }

    #[test]
    fn folds_training_events_into_per_user_series() {
        let ts = TimeSeriesRecorder::new();
        ts.set_target(0, 0.9);
        ts.fold(&completed(0, 2, 1.0, 0.5));
        ts.fold(&completed(1, 0, 2.0, 0.8));
        ts.fold(&completed(0, 2, 1.0, 0.7));
        ts.fold(&completed(0, 3, 1.0, 0.6)); // worse run: best stays 0.7

        let snap = ts.snapshot();
        assert_eq!(snap.rounds, 4);
        assert!((snap.clock - 5.0).abs() < 1e-12);
        let u0 = &snap.users[&0];
        assert_eq!(u0.served, 3);
        assert!((u0.cumulative_cost - 3.0).abs() < 1e-12);
        assert!((u0.best_quality - 0.7).abs() < 1e-12);
        assert!((u0.last_quality - 0.6).abs() < 1e-12);
        assert!((u0.regret() - 0.2).abs() < 1e-12, "target 0.9 - best 0.7");
        assert_eq!(u0.arm_pulls[&2], 2);
        assert_eq!(u0.arm_pulls[&3], 1);
        // Default target (no μ* declared) is 1.0.
        let u1 = &snap.users[&1];
        assert!((u1.regret() - 0.2).abs() < 1e-12, "1.0 - 0.8");
        // Curves advance on the *global* simulated clock.
        assert_eq!(u0.regret_curve.len(), 3);
        assert_eq!(u0.regret_curve[0].0, 1.0);
        assert_eq!(u0.regret_curve[1].0, 4.0);
        assert_eq!(u0.regret_curve[2].0, 5.0);
        // Regret is non-increasing for a fixed target.
        for w in u0.regret_curve.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-12);
        }
    }

    #[test]
    fn sampling_interval_bounds_curve_length_but_keeps_the_latest() {
        let ts = TimeSeriesRecorder::new().with_sample_interval(10.0);
        for i in 0..100 {
            ts.fold(&completed(0, 0, 1.0, 0.001 * i as f64));
        }
        let snap = ts.snapshot();
        let curve = &snap.users[&0].regret_curve;
        // 100 cost units at one sample per ≥10 units: ~10 points, not 100.
        assert!(curve.len() <= 11, "curve has {} points", curve.len());
        // The last point reflects the very latest state.
        let last = curve.last().unwrap();
        assert_eq!(last.0, 100.0);
        assert!((last.1 - (1.0 - 0.099)).abs() < 1e-12);
    }

    fn failed(user: usize, model: usize, cost: f64) -> Event {
        Event::TrainingFailed {
            user,
            model,
            cost,
            kind: "crash".into(),
            attempt: 1,
            parent: 0,
        }
    }

    #[test]
    fn failed_runs_are_censored_but_still_charged() {
        let ts = TimeSeriesRecorder::new();
        ts.set_target(0, 1.0);
        ts.set_target(1, 1.0);
        ts.fold(&completed(0, 0, 2.0, 0.5));
        // User 0's next run crashes after 3 cost units: the clock and the
        // tenant's cost advance, regret keeps integrating, but no quality
        // lands and `served` stays put.
        ts.fold(&failed(0, 1, 3.0));
        ts.fold(&completed(1, 0, 1.0, 0.8));

        let snap = ts.snapshot();
        assert_eq!(snap.rounds, 2);
        assert_eq!(snap.failed_rounds, 1);
        assert!((snap.clock - 6.0).abs() < 1e-12);
        let u0 = &snap.users[&0];
        assert_eq!(u0.served, 1);
        assert_eq!(u0.failed, 1);
        assert!((u0.cumulative_cost - 5.0).abs() < 1e-12);
        assert!((u0.best_quality - 0.5).abs() < 1e-12, "censored quality");
        // The wasted interval is arm-picking regret for the served tenant:
        // 1.0·2 (first run) + 0.5·3 (the crash).
        assert!((u0.cum_regret.arm_picking - 3.5).abs() < 1e-12);
        // User 1 waited through both intervals after materializing only on
        // its own round, so it accrues nothing yet.
        let d = snap.cum_regret();
        assert!((d.sum() - d.total).abs() < 1e-9, "{d:?}");
        assert_curve_monotone(&u0.regret_curve);
        assert_eq!(u0.regret_curve.last().unwrap().0, 5.0);
    }

    #[test]
    fn malformed_failed_costs_do_not_rewind_the_clock() {
        let ts = TimeSeriesRecorder::new();
        ts.fold(&completed(0, 0, 1.0, 0.4));
        ts.fold(&failed(0, 1, -2.0));
        ts.fold(&failed(0, 1, f64::NAN));
        let snap = ts.snapshot();
        assert!((snap.clock - 1.0).abs() < 1e-12);
        assert_eq!(snap.failed_rounds, 2);
        assert_curve_monotone(&snap.users[&0].regret_curve);
    }

    #[test]
    fn fallback_rate_counts_decisions_after_the_switch() {
        let ts = TimeSeriesRecorder::new();
        let decision = Event::SchedulerDecision {
            round: 0,
            user: 0,
            rule: "hybrid".into(),
            scores: vec![],
            parent: 0,
        };
        for _ in 0..6 {
            ts.fold(&decision);
        }
        assert_eq!(ts.snapshot().fallback_rate(), 0.0);
        ts.fold(&Event::HybridFallback {
            reason: "frozen".into(),
            parent: 0,
        });
        for _ in 0..2 {
            ts.fold(&decision);
        }
        let snap = ts.snapshot();
        assert!(snap.fallback_active);
        assert_eq!(snap.decisions, 8);
        assert_eq!(snap.fallback_decisions, 2);
        assert!((snap.fallback_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn mean_regret_averages_users() {
        let ts = TimeSeriesRecorder::new();
        assert_eq!(ts.snapshot().mean_regret(), 0.0);
        ts.fold(&completed(0, 0, 1.0, 0.8)); // regret 0.2
        ts.fold(&completed(1, 0, 1.0, 0.6)); // regret 0.4
        assert!((ts.snapshot().mean_regret() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn set_target_applies_retroactively() {
        let ts = TimeSeriesRecorder::new();
        ts.fold(&completed(0, 0, 1.0, 0.75));
        assert!((ts.snapshot().users[&0].regret() - 0.25).abs() < 1e-12);
        ts.set_target(0, 0.8);
        assert!((ts.snapshot().users[&0].regret() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn regret_decomposition_splits_served_vs_waiting_intervals() {
        let ts = TimeSeriesRecorder::new();
        ts.set_target(0, 1.0);
        ts.set_target(1, 1.0);
        // Round 1: user 0 served, cost 2, reaches 0.5. Pre-completion
        // regret of user 0 is 1.0 (best 0.0) → arm term 1.0·2. User 1 is
        // unknown yet, so it accrues nothing.
        ts.fold(&completed(0, 0, 2.0, 0.5));
        // Round 2: user 1 served, cost 1, reaches 0.8. User 1's own
        // pre-completion regret 1.0 → arm term 1.0·1; user 0 waited with
        // regret 0.5 → user term 0.5·1.
        ts.fold(&completed(1, 0, 1.0, 0.8));
        // Round 3: user 0 served again, cost 4, reaches 0.9. User 0 arm
        // term += 0.5·4; user 1 waited: user term 0.2·4.
        ts.fold(&completed(0, 1, 4.0, 0.9));

        let snap = ts.snapshot();
        let u0 = &snap.users[&0].cum_regret;
        let u1 = &snap.users[&1].cum_regret;
        assert!((u0.arm_picking - (2.0 + 2.0)).abs() < 1e-12, "{u0:?}");
        assert!((u0.user_picking - 0.5).abs() < 1e-12, "{u0:?}");
        assert!((u1.arm_picking - 1.0).abs() < 1e-12, "{u1:?}");
        assert!((u1.user_picking - 0.8).abs() < 1e-12, "{u1:?}");
        // The two terms sum to the undecomposed integral, per user and in
        // aggregate.
        for d in [u0, u1, &snap.cum_regret()] {
            assert!((d.sum() - d.total).abs() < 1e-9, "{d:?}");
        }
        assert!((snap.cum_regret().total - (2.0 + 1.5 + 2.8)).abs() < 1e-12);
    }

    #[test]
    fn decomposition_stops_accruing_once_target_is_reached() {
        let ts = TimeSeriesRecorder::new();
        ts.set_target(0, 0.8);
        ts.fold(&completed(0, 0, 1.0, 0.8)); // hits μ* immediately
        ts.fold(&completed(1, 0, 5.0, 0.1)); // user 0 waits with zero regret
        let snap = ts.snapshot();
        let u0 = &snap.users[&0].cum_regret;
        assert!((u0.arm_picking - 0.8).abs() < 1e-12, "first interval only");
        assert_eq!(u0.user_picking, 0.0);
    }

    #[test]
    fn duplicate_timestamps_keep_curves_monotone() {
        // Zero-cost completions do not advance the simulated clock: the
        // curve may hold duplicate timestamps but must never go backwards,
        // and the last point must reflect the latest state.
        let ts = TimeSeriesRecorder::new();
        ts.fold(&completed(0, 0, 1.0, 0.3));
        ts.fold(&completed(0, 1, 0.0, 0.5));
        ts.fold(&completed(0, 2, 0.0, 0.7));
        ts.fold(&completed(0, 3, 1.0, 0.9));
        let snap = ts.snapshot();
        assert!((snap.clock - 2.0).abs() < 1e-12);
        let curve = &snap.users[&0].regret_curve;
        assert_curve_monotone(curve);
        let last = curve.last().unwrap();
        assert_eq!(last.0, 2.0);
        assert!((last.1 - 0.1).abs() < 1e-12);
        // Zero-length intervals contribute nothing to the integral: only
        // the two unit-cost rounds accrue (regret 1.0, then 1.0 − 0.7).
        let d = &snap.users[&0].cum_regret;
        assert!((d.total - (1.0 + 0.3)).abs() < 1e-12, "{d:?}");
    }

    #[test]
    fn out_of_order_and_malformed_costs_never_run_time_backwards() {
        // A replayed trace can hand the recorder garbage: negative or
        // non-finite costs must be treated as zero-length intervals rather
        // than rewinding the clock.
        let ts = TimeSeriesRecorder::new().with_sample_interval(0.5);
        ts.fold(&completed(0, 0, 2.0, 0.4));
        ts.fold(&completed(0, 1, -3.0, 0.6));
        ts.fold(&completed(0, 2, f64::NAN, 0.65));
        ts.fold(&completed(0, 3, 1.0, 0.7));
        let snap = ts.snapshot();
        assert!((snap.clock - 3.0).abs() < 1e-12, "clock = {}", snap.clock);
        let u0 = &snap.users[&0];
        assert_curve_monotone(&u0.regret_curve);
        assert!((u0.cumulative_cost - 3.0).abs() < 1e-12);
        assert!(u0.cum_regret.total.is_finite());
        assert!(u0.cum_regret.sum() >= 0.0);
        // The best quality still tracked through the malformed events.
        assert!((u0.best_quality - 0.7).abs() < 1e-12);
    }

    #[test]
    fn interleaved_multi_user_folding_keeps_every_curve_monotone() {
        // Simulates out-of-order arrival from concurrent completions: the
        // per-event costs arrive in no particular order, yet every curve
        // must advance monotonically on the shared clock.
        let ts = TimeSeriesRecorder::new();
        let costs = [3.0, 1.0, 0.0, 2.0, 1.0, 5.0, 0.5, 0.25];
        for (i, &cost) in costs.iter().enumerate() {
            ts.fold(&completed(i % 3, i % 4, cost, 0.1 * i as f64));
        }
        let snap = ts.snapshot();
        for series in snap.users.values() {
            assert_curve_monotone(&series.regret_curve);
        }
        let expected: f64 = costs.iter().sum();
        assert!((snap.clock - expected).abs() < 1e-12);
    }

    // --- aggregate (bounded) mode ------------------------------------

    /// Deterministic synthetic run stream shared by the scale tests.
    fn synth_stream(users: usize, events: usize) -> Vec<Event> {
        let mut rng: u64 = 0x5eed;
        let mut next = move || {
            rng = rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = rng;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        (0..events)
            .map(|i| {
                let user = (next() % users as u64) as usize;
                let quality = (next() % 1000) as f64 / 1000.0;
                let cost = 0.1 + (next() % 100) as f64 / 50.0;
                if i % 97 == 13 {
                    Event::TrainingFailed {
                        user,
                        model: i % 20,
                        cost,
                        kind: "crash".into(),
                        attempt: 1,
                        parent: 0,
                    }
                } else {
                    completed(user, i % 20, cost, quality)
                }
            })
            .collect()
    }

    #[test]
    fn aggregate_mode_memory_is_independent_of_tenant_count() {
        let mut bytes = Vec::new();
        for users in [1_000usize, 100_000] {
            let ts =
                TimeSeriesRecorder::aggregate(ScaleConfig::default()).with_sample_interval(10.0);
            for event in synth_stream(users, 4 * 1_000) {
                ts.fold(&event);
            }
            let snap = ts.snapshot();
            assert!(
                snap.users.len() <= ScaleConfig::default().exemplars,
                "exemplars leaked: {}",
                snap.users.len()
            );
            bytes.push(ts.approx_state_bytes());
        }
        // 100× the tenants must not grow recorder state: same event count,
        // same budget, so the footprint stays flat within jitter from
        // bucket counts, exemplar curve lengths, and Vec doubling.
        let (small, large) = (bytes[0] as f64, bytes[1] as f64);
        assert!(
            large <= small * 1.5,
            "state grew with U: {small} -> {large}"
        );
        assert!(large < 512.0 * 1024.0, "state unbounded: {large} bytes");
    }

    #[test]
    fn aggregate_sketches_agree_with_exact_fold_within_alpha() {
        let events = synth_stream(50, 2_000);
        let exact = TimeSeriesRecorder::new();
        let bounded = TimeSeriesRecorder::aggregate(ScaleConfig::default());
        let mut observations = Vec::new();
        for event in &events {
            exact.fold(event);
            bounded.fold(event);
            match event {
                Event::TrainingCompleted { quality, .. } => {
                    observations.push((1.0 - quality).max(0.0));
                }
                Event::TrainingFailed { .. } => observations.push(1.0),
                _ => {}
            }
        }
        observations.sort_by(f64::total_cmp);
        // Both modes fold the identical sketch, and the sketch matches an
        // exact sort of the same per-run regret observations within alpha.
        let exact_sketch = exact.snapshot().scale.merged().unwrap();
        let bounded_sketch = bounded.snapshot().scale.merged().unwrap();
        assert_eq!(exact_sketch.regret, bounded_sketch.regret);
        assert_eq!(exact_sketch.regret.count(), observations.len() as u64);
        let alpha = ScaleConfig::default().quantile_alpha;
        for q in [0.1, 0.5, 0.9, 0.99] {
            let rank = (q * (observations.len() - 1) as f64).floor() as usize;
            let truth = observations[rank];
            let est = exact_sketch.regret.quantile(q).unwrap();
            assert!(
                (est - truth).abs() <= alpha * truth + 1e-9,
                "q={q}: {est} vs {truth}"
            );
        }
    }

    #[test]
    fn top_offenders_surface_the_heavy_tenants() {
        let ts = TimeSeriesRecorder::aggregate(ScaleConfig::default());
        // Tenant 7 burns 10× the cost of 200 background tenants and never
        // improves, so it must dominate both offender boards.
        for i in 0..2_000usize {
            ts.fold(&completed(i % 200 + 100, 0, 0.1, 0.95));
            ts.fold(&completed(7, 1, 1.0, 0.05));
        }
        let scale = ts.snapshot().scale;
        assert_eq!(scale.worst_cost[0].user, 7);
        assert_eq!(scale.worst_regret[0].user, 7);
        assert!(scale.worst_cost[0].weight >= 2_000.0 - 1e-6);
    }

    #[test]
    fn strategy_labels_are_capped_and_follow_decisions() {
        let cfg = ScaleConfig {
            max_strategies: 2,
            ..ScaleConfig::default()
        };
        let ts = TimeSeriesRecorder::aggregate(cfg);
        for (i, rule) in ["hybrid", "round-robin", "greedy", "random"]
            .iter()
            .enumerate()
        {
            ts.fold(&Event::SchedulerDecision {
                round: i as u64,
                user: i,
                rule: rule.to_string(),
                scores: vec![],
                parent: 0,
            });
            ts.fold(&completed(i, 0, 1.0, 0.5));
        }
        let scale = ts.snapshot().scale;
        // Two real labels plus the overflow bucket.
        assert!(scale.strategies.len() <= 3, "{:?}", scale.strategies.keys());
        assert!(scale.strategies.contains_key("hybrid"));
        assert!(scale.strategies.contains_key("other"));
        let total: u64 = scale.strategies.values().map(|g| g.regret.count()).sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn overhead_accounting_tracks_folds_and_sampling() {
        let cfg = ScaleConfig {
            exemplars: 2,
            ..ScaleConfig::default()
        };
        let ts = TimeSeriesRecorder::aggregate(cfg);
        for event in synth_stream(100, 500) {
            ts.fold(&event);
        }
        let overhead = ts.snapshot().scale.overhead;
        assert_eq!(overhead.events_folded, 500);
        assert_eq!(overhead.events_sampled + overhead.events_dropped, 500);
        assert!(overhead.events_dropped > 0, "{overhead:?}");
        assert!(overhead.fold_ns > 0);
    }

    #[test]
    fn exact_mode_samples_every_event_and_keeps_sketches() {
        let ts = TimeSeriesRecorder::new();
        ts.fold(&completed(0, 0, 1.0, 0.25));
        ts.fold(&completed(1, 0, 2.0, 0.75));
        let snap = ts.snapshot();
        assert!(!snap.scale.aggregate);
        assert_eq!(snap.scale.overhead.events_sampled, 2);
        assert_eq!(snap.scale.overhead.events_dropped, 0);
        let merged = snap.scale.merged().unwrap();
        assert_eq!(merged.regret.count(), 2);
        assert_eq!(merged.cost.count(), 2);
        // Per-run regret observations 0.75 and 0.25 land in the sketch.
        let p100 = merged.regret.quantile(1.0).unwrap();
        assert!((p100 - 0.75).abs() <= 0.01 * 0.75 + 1e-9);
    }

    #[test]
    fn default_target_calibrates_unlisted_tenants() {
        let ts = TimeSeriesRecorder::aggregate(ScaleConfig::default());
        ts.set_default_target(0.8);
        ts.set_target(1, 0.9);
        ts.fold(&completed(0, 0, 1.0, 0.8)); // meets the default target
        ts.fold(&completed(1, 0, 1.0, 0.8)); // 0.1 short of its own target
        let merged = ts.snapshot().scale.merged().unwrap();
        assert_eq!(merged.regret.quantile(0.0), Some(0.0));
        let p100 = merged.regret.quantile(1.0).unwrap();
        assert!((p100 - 0.1).abs() <= 0.01 * 0.1 + 1e-9, "{p100}");
    }
}
