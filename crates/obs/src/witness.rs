//! Decision provenance: rolling trajectory digests, bounded top-K
//! selection, and the per-round witness records folded back out of a
//! trace.
//!
//! The capture side (scheduler, simulator, executor) emits a witness chain
//! per round — [`Event::UserScored`]/[`Event::ArmScored`] first, a single
//! [`Event::DecisionWitness`] last as the commit marker — and threads a
//! [`RollingDigest`] through every resolved round. Because the digest is
//! rolling, equal digests at round `r` certify that *every* round `≤ r`
//! resolved identically, which turns "find the first divergent round
//! between two runs" into a binary search over `O(log R)` digest
//! comparisons instead of a linear scan of full witnesses.
//!
//! The read side ([`witness_records`]) folds a trace's witness chains back
//! into [`WitnessRecord`]s. Only rounds whose `DecisionWitness` commit
//! marker has landed are surfaced, so a concurrent reader scraping a trace
//! mid-round never observes a torn (half-emitted) witness.

use crate::event::Event;
use crate::json;
use serde::Serialize;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A rolling 64-bit FNV-1a digest over a run's decision/outcome stream.
///
/// # Examples
///
/// ```
/// use easeml_obs::RollingDigest;
///
/// let mut a = RollingDigest::new();
/// let mut b = RollingDigest::new();
/// a.absorb_u64(7);
/// b.absorb_u64(7);
/// assert_eq!(a.value(), b.value());
/// b.absorb_u64(8);
/// assert_ne!(a.value(), b.value(), "the digest is order- and content-sensitive");
/// assert_eq!(a.hex().len(), 16);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RollingDigest {
    state: u64,
}

impl Default for RollingDigest {
    fn default() -> Self {
        RollingDigest::new()
    }
}

impl RollingDigest {
    /// The empty digest (FNV-1a offset basis).
    pub fn new() -> Self {
        RollingDigest { state: FNV_OFFSET }
    }

    /// Resumes a digest from a previously exported [`RollingDigest::value`].
    pub fn from_value(state: u64) -> Self {
        RollingDigest { state }
    }

    /// Absorbs one little-endian `u64`.
    pub fn absorb_u64(&mut self, x: u64) {
        for byte in x.to_le_bytes() {
            self.state ^= u64::from(byte);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs one `f64` by its IEEE-754 bit pattern (bit-exact, so two
    /// runs only digest equal if their floating-point outcomes match bit
    /// for bit).
    pub fn absorb_f64(&mut self, x: f64) {
        self.absorb_u64(x.to_bits());
    }

    /// Absorbs a string (length-prefixed, so `"ab" + "c"` ≠ `"a" + "bc"`).
    pub fn absorb_str(&mut self, s: &str) {
        self.absorb_u64(s.len() as u64);
        for byte in s.bytes() {
            self.state ^= u64::from(byte);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// The current digest value.
    pub fn value(&self) -> u64 {
        self.state
    }

    /// The current digest as 16 lowercase hex digits — the form stamped
    /// into [`Event::DecisionWitness`].
    pub fn hex(&self) -> String {
        format!("{:016x}", self.state)
    }
}

/// Indices of the `k` largest scores, descending (ties broken toward the
/// lower index, matching `vec_ops::argmax`). NaN scores are skipped; `-∞`
/// scores (quarantine-masked arms) rank last naturally. `O(n·k)` with no
/// full sort, so a bounded-K witness never pays `O(n log n)`.
///
/// # Examples
///
/// ```
/// use easeml_obs::top_k_indices;
///
/// let scores = [0.1, 0.9, f64::NAN, 0.9, 0.5];
/// assert_eq!(top_k_indices(&scores, 3), vec![1, 3, 4]);
/// assert_eq!(top_k_indices(&scores, 10).len(), 4, "NaN is skipped");
/// ```
pub fn top_k_indices(scores: &[f64], k: usize) -> Vec<usize> {
    if k == 0 {
        return Vec::new();
    }
    let mut top: Vec<usize> = Vec::with_capacity(k + 1);
    for (i, &score) in scores.iter().enumerate() {
        if score.is_nan() {
            continue;
        }
        if top.len() == k {
            let worst = *top.last().expect("k > 0");
            if scores[worst] >= score {
                continue;
            }
        }
        let pos = top.partition_point(|&j| scores[j] >= score);
        top.insert(pos, i);
        top.truncate(k);
    }
    top
}

/// One scored user of a committed witness round.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct WitnessUser {
    /// Tenant index.
    pub user: usize,
    /// The picker's score for the tenant.
    pub score: f64,
    /// Whether the tenant was in the candidate set `V_t`.
    pub candidate: bool,
}

/// One scored arm of a committed witness round.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct WitnessArm {
    /// Arm (model) index.
    pub arm: usize,
    /// Posterior mean at selection time.
    pub mean: f64,
    /// Posterior standard deviation at selection time.
    pub sigma: f64,
    /// The acquisition value the arm was ranked on.
    pub ucb: f64,
    /// Whether the arm was quarantine-masked.
    pub masked: bool,
}

/// A committed per-round decision witness, folded back out of a trace.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct WitnessRecord {
    /// Scheduling round (0-based).
    pub round: u64,
    /// Tenant served.
    pub user: usize,
    /// Arm (model) trained.
    pub arm: usize,
    /// Winner's user score minus the runner-up's (NaN when unscored).
    pub user_margin: f64,
    /// Winning arm's acquisition minus the runner-up's (NaN when single-arm).
    pub arm_margin: f64,
    /// Decision path taken (`"greedy(max-gap)"`, `"warm-up"`, ...).
    pub path: String,
    /// Censoring fault kind or fallback reason; empty when nothing fired.
    pub fallback: String,
    /// Whether the round was censored.
    pub censored: bool,
    /// Size of the candidate set the pick ranked.
    pub candidates: u64,
    /// Rolling trajectory digest after this round (16 hex digits).
    pub digest: String,
    /// Top-K scored users, best first.
    pub top_users: Vec<WitnessUser>,
    /// Top-K scored arms, best first.
    pub top_arms: Vec<WitnessArm>,
}

impl WitnessRecord {
    /// Serializes the record as one JSON object — the `/explain?round=N`
    /// response body.
    pub fn to_json(&self) -> String {
        json::to_string(self)
    }
}

/// Folds a trace's witness chains into per-round [`WitnessRecord`]s, in
/// commit order. `UserScored`/`ArmScored` events are buffered per round and
/// only surfaced once that round's `DecisionWitness` commit marker arrives;
/// score events of never-committed rounds (e.g. a run cut off mid-round)
/// are dropped, so readers never see a torn witness.
pub fn witness_records(events: &[Event]) -> Vec<WitnessRecord> {
    let mut records = Vec::new();
    // Witness chains are emitted contiguously per round, but the fold
    // tolerates interleaving across rounds (multi-device traces) by keying
    // the buffers on the round id.
    let mut pending_users: Vec<(u64, WitnessUser)> = Vec::new();
    let mut pending_arms: Vec<(u64, WitnessArm)> = Vec::new();
    for event in events {
        match event {
            Event::UserScored {
                round,
                user,
                score,
                candidate,
                ..
            } => pending_users.push((
                *round,
                WitnessUser {
                    user: *user,
                    score: *score,
                    candidate: *candidate,
                },
            )),
            Event::ArmScored {
                round,
                arm,
                mean,
                sigma,
                ucb,
                masked,
                ..
            } => pending_arms.push((
                *round,
                WitnessArm {
                    arm: *arm,
                    mean: *mean,
                    sigma: *sigma,
                    ucb: *ucb,
                    masked: *masked,
                },
            )),
            Event::DecisionWitness {
                round,
                user,
                arm,
                user_margin,
                arm_margin,
                path,
                fallback,
                censored,
                candidates,
                digest,
                ..
            } => {
                let top_users = drain_round(&mut pending_users, *round);
                let top_arms = drain_round(&mut pending_arms, *round);
                records.push(WitnessRecord {
                    round: *round,
                    user: *user,
                    arm: *arm,
                    user_margin: *user_margin,
                    arm_margin: *arm_margin,
                    path: path.clone(),
                    fallback: fallback.clone(),
                    censored: *censored,
                    candidates: *candidates,
                    digest: digest.clone(),
                    top_users,
                    top_arms,
                });
            }
            _ => {}
        }
    }
    records
}

/// Removes and returns the entries buffered for `round`, preserving
/// emission (rank) order.
fn drain_round<T>(pending: &mut Vec<(u64, T)>, round: u64) -> Vec<T> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < pending.len() {
        if pending[i].0 == round {
            out.push(pending.remove(i).1);
        } else {
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_rolling_and_prefix_sensitive() {
        let mut a = RollingDigest::new();
        let mut b = RollingDigest::new();
        for x in [3_u64, 1, 4, 1, 5] {
            a.absorb_u64(x);
            b.absorb_u64(x);
            assert_eq!(a.value(), b.value());
        }
        b.absorb_u64(9);
        let diverged = b.value();
        b.absorb_u64(5);
        a.absorb_u64(5);
        a.absorb_u64(9);
        assert_ne!(a.value(), diverged);
        assert_ne!(a.value(), b.value(), "a divergence never cancels out");
        assert_eq!(RollingDigest::from_value(a.value()).hex(), a.hex());
    }

    #[test]
    fn digest_absorbs_floats_bit_exactly_and_strings_framed() {
        let mut a = RollingDigest::new();
        let mut b = RollingDigest::new();
        a.absorb_f64(0.1 + 0.2);
        b.absorb_f64(0.3);
        assert_ne!(a.value(), b.value(), "0.1+0.2 != 0.3 bit-for-bit");
        let mut c = RollingDigest::new();
        let mut d = RollingDigest::new();
        c.absorb_str("ab");
        c.absorb_str("c");
        d.absorb_str("a");
        d.absorb_str("bc");
        assert_ne!(c.value(), d.value(), "length framing prevents splicing");
    }

    #[test]
    fn top_k_ranks_descending_with_stable_ties() {
        assert_eq!(top_k_indices(&[], 3), Vec::<usize>::new());
        assert_eq!(top_k_indices(&[1.0, 2.0, 3.0], 0), Vec::<usize>::new());
        assert_eq!(top_k_indices(&[0.5, 0.5, 0.5], 2), vec![0, 1]);
        let scores = [0.2, f64::NEG_INFINITY, 0.9, 0.2, 0.7];
        assert_eq!(top_k_indices(&scores, 3), vec![2, 4, 0]);
        assert_eq!(top_k_indices(&scores, 10), vec![2, 4, 0, 3, 1]);
    }

    fn chain(round: u64, digest: &str) -> Vec<Event> {
        vec![
            Event::UserScored {
                round,
                user: 1,
                score: 0.9,
                rank: 0,
                candidate: true,
                parent: 0,
            },
            Event::ArmScored {
                round,
                user: 1,
                arm: 4,
                mean: 0.6,
                sigma: 0.1,
                ucb: 0.8,
                rank: 0,
                masked: false,
                parent: 0,
            },
            Event::DecisionWitness {
                round,
                user: 1,
                arm: 4,
                user_margin: 0.2,
                arm_margin: 0.1,
                path: "greedy(max-gap)".into(),
                fallback: String::new(),
                censored: false,
                candidates: 2,
                digest: digest.into(),
                parent: 0,
            },
        ]
    }

    #[test]
    fn fold_commits_on_decision_witness_and_drops_torn_chains() {
        let mut events = chain(0, "aa");
        events.extend(chain(1, "bb"));
        // A torn round: scores emitted, commit marker never landed.
        events.push(Event::UserScored {
            round: 2,
            user: 0,
            score: 0.1,
            rank: 0,
            candidate: false,
            parent: 0,
        });
        let records = witness_records(&events);
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].round, 0);
        assert_eq!(records[0].digest, "aa");
        assert_eq!(records[0].top_users.len(), 1);
        assert_eq!(records[0].top_arms.len(), 1);
        assert_eq!(records[1].round, 1);
    }

    #[test]
    fn fold_tolerates_interleaved_rounds() {
        let a = chain(0, "aa");
        let b = chain(1, "bb");
        // Interleave: scores of both rounds land before either commits.
        let events = vec![
            a[0].clone(),
            b[0].clone(),
            a[1].clone(),
            b[1].clone(),
            b[2].clone(),
            a[2].clone(),
        ];
        let records = witness_records(&events);
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].round, 1, "commit order, not round order");
        assert_eq!(records[0].top_users[0].user, 1);
        assert_eq!(records[1].round, 0);
        assert_eq!(records[1].top_arms[0].arm, 4);
    }

    #[test]
    fn witness_record_serializes_to_json() {
        let records = witness_records(&chain(7, "cc"));
        let line = records[0].to_json();
        assert!(line.contains("\"round\":7"), "{line}");
        assert!(line.contains("\"digest\":\"cc\""), "{line}");
        assert!(line.contains("\"top_users\":[{"), "{line}");
    }
}
