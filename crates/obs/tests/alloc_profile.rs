//! End-to-end allocation attribution with the counting global allocator
//! actually installed — integration tests get their own binary, so the
//! allocator swap is scoped to this file.
//!
//! The global profiler and the allocator counters are process/thread
//! state, so everything runs as one `#[test]` in a controlled order.

use easeml_obs::{
    counting_allocator_active, set_global_profiler, thread_alloc_stats, CountingAlloc, Profiler,
    RecorderHandle,
};
use std::sync::Arc;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::system();

#[test]
fn counting_allocator_attribution_lifecycle() {
    // --- the wrapper counts real allocations on this thread.
    let before = thread_alloc_stats();
    let v: Vec<u8> = Vec::with_capacity(4096);
    let mid = thread_alloc_stats();
    assert!(counting_allocator_active());
    assert!(mid.allocs > before.allocs, "Vec allocation not counted");
    assert!(mid.bytes >= before.bytes + 4096);
    assert!(mid.live_bytes >= before.live_bytes + 4096);
    drop(v);
    let after = thread_alloc_stats();
    assert!(after.frees > mid.frees, "Vec free not counted");
    assert!(after.live_bytes <= mid.live_bytes - 4096);

    // --- the noop span path allocates nothing when no profiler is
    // registered (the `obs_overhead` guarantee, asserted directly).
    let handle = RecorderHandle::noop();
    drop(handle.span("warmup")); // touch lazy statics outside the window
    let before = thread_alloc_stats();
    for _ in 0..10_000 {
        let _span = handle.span("scheduler_step");
    }
    let after = thread_alloc_stats();
    assert_eq!(
        (before.allocs, before.bytes),
        (after.allocs, after.bytes),
        "noop span path must stay allocation-free"
    );

    // --- with a profiler registered, a span's allocations land on its
    // node, and a child's allocations are *not* double-counted in the
    // parent's self-attribution.
    let profiler = Arc::new(Profiler::new());
    assert!(set_global_profiler(Some(profiler.clone())).is_none());
    {
        let _step = handle.span("scheduler_step");
        let parent_side: Vec<u8> = Vec::with_capacity(100);
        {
            let _train = handle.span("train");
            let child_side: Vec<u8> = Vec::with_capacity(10_000);
            drop(child_side);
        }
        drop(parent_side);
    }
    set_global_profiler(None);
    let snap = profiler.snapshot();
    let step = snap.find(&["scheduler_step"]).expect("step node");
    let train = snap.find(&["scheduler_step", "train"]).expect("train node");
    assert!(train.allocs >= 1, "child allocation not attributed");
    assert!(train.alloc_bytes >= 10_000);
    assert!(train.peak_bytes >= 10_000);
    assert!(step.allocs >= 1, "parent self-allocation not attributed");
    assert!(
        step.alloc_bytes >= 100 && step.alloc_bytes < 10_000,
        "parent self bytes must exclude the child's ({} bytes)",
        step.alloc_bytes
    );
    // The parent's peak covers the child's burst (inclusive watermark).
    assert!(step.peak_bytes >= train.peak_bytes);
}
