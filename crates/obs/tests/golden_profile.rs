//! Golden-file test pinning the folded-stacks profile format.
//!
//! Flamegraph tooling (`flamegraph.pl`, speedscope, inferno) consumes the
//! `path;to;node self_ns` lines byte-for-byte, so the rendering is pinned
//! against `tests/golden/profile.folded`. Regenerate with
//! `UPDATE_GOLDEN=1` after an intentional format change.

use easeml_obs::{CallTreeProfile, Event};
use std::path::PathBuf;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("profile.folded")
}

fn start(span: u64, parent: u64, name: &str, ts_ns: u64) -> Event {
    Event::SpanStart {
        span,
        parent,
        name: name.to_string(),
        ts_ns,
    }
}

fn end(span: u64, ts_ns: u64) -> Event {
    Event::SpanEnd { span, ts_ns }
}

/// A deterministic two-step span stream covering the full serial-path
/// vocabulary plus an exec dispatch, with fixed timestamps.
fn sample_events() -> Vec<Event> {
    vec![
        // Step 1: full serial pipeline.
        start(1, 0, "scheduler_step", 0),
        start(2, 1, "pick_user", 100),
        end(2, 1_600),
        start(3, 1, "pick_arm", 1_700),
        end(3, 2_900),
        start(4, 1, "train", 3_000),
        end(4, 53_000),
        start(5, 1, "posterior_update", 53_100),
        end(5, 58_100),
        end(1, 58_400),
        // Step 2: censored run — no posterior update.
        start(6, 0, "scheduler_step", 60_000),
        start(7, 6, "pick_user", 60_100),
        end(7, 61_550),
        start(8, 6, "pick_arm", 61_600),
        end(8, 62_900),
        start(9, 6, "train", 63_000),
        end(9, 80_000),
        end(6, 80_300),
        // A multi-device dispatch with its nested user pick.
        start(10, 0, "dispatch", 90_000),
        start(11, 10, "pick_user", 90_200),
        end(11, 91_700),
        end(10, 92_000),
        start(12, 0, "complete", 95_000),
        end(12, 96_200),
    ]
}

#[test]
fn folded_stacks_match_the_golden_file() {
    let rendered = CallTreeProfile::fold(&sample_events()).folded_stacks();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(golden_path(), &rendered).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(golden_path())
        .expect("golden file missing; regenerate with UPDATE_GOLDEN=1");
    assert_eq!(
        rendered, golden,
        "folded-stacks rendering drifted from tests/golden/profile.folded; \
         if intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn golden_file_stacks_are_flamegraph_ready() {
    let golden = std::fs::read_to_string(golden_path()).unwrap();
    let mut total = 0u64;
    for line in golden.lines() {
        let (stack, value) = line.rsplit_once(' ').expect("`stack value` lines");
        assert!(!stack.is_empty() && !stack.ends_with(';'));
        total += value.parse::<u64>().expect("integer self-ns value");
    }
    // Self-times over all stacks reconstruct total wall time exactly.
    let profile = CallTreeProfile::fold(&sample_events());
    let wall: u64 = [("scheduler_step", ()), ("dispatch", ()), ("complete", ())]
        .iter()
        .map(|(name, _)| profile.phase_coverage(name).unwrap().1)
        .sum();
    assert_eq!(total, wall);
}
