//! Golden-file test pinning the on-disk trace schema.
//!
//! The checked-in `tests/golden/schema_v6.jsonl` is the authoritative
//! serialization of one sample of every event variant. If a change to the
//! event vocabulary alters any byte of the output, this test fails — which
//! is the prompt to bump [`easeml_obs::TRACE_SCHEMA_VERSION`], extend
//! `Event::from_json`'s backward-compat defaults, and regenerate the golden
//! file by running the test with `UPDATE_GOLDEN=1`.

use easeml_obs::{schema_header_line, Event, TRACE_SCHEMA_VERSION};
use std::path::PathBuf;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("schema_v6.jsonl")
}

/// One sample of every variant, exercising the fields a real trace carries:
/// span parents, calibration stats, numerical-health payloads.
fn samples() -> Vec<Event> {
    vec![
        Event::SchedulerDecision {
            round: 42,
            user: 3,
            rule: "greedy(max-gap)".into(),
            scores: vec![0.1, 0.25, -0.5, 1.75e-3],
            parent: 9,
        },
        Event::ArmChosen {
            user: 3,
            arm: 7,
            ucb: 0.912,
            beta: 2.77,
            cost: 1.0,
            mean: 0.8,
            sigma: 0.04,
            parent: 10,
        },
        Event::HybridFallback {
            reason: "frozen set stable for 10 rounds".into(),
            parent: 9,
        },
        Event::TrainingCompleted {
            user: 3,
            model: 7,
            cost: 12.5,
            quality: 0.843,
            parent: 11,
        },
        Event::TrainingFailed {
            user: 3,
            model: 7,
            cost: 4.5,
            kind: "crash".into(),
            attempt: 2,
            parent: 11,
        },
        Event::RetryScheduled {
            user: 3,
            model: 7,
            attempt: 3,
            backoff_cost: 0.5,
            parent: 11,
        },
        Event::ArmQuarantined {
            user: 3,
            model: 7,
            failures: 3,
            probation_rounds: 16,
            parent: 11,
        },
        Event::CheckpointWritten {
            rounds: 40,
            users: 4,
            bytes: 8192,
            parent: 0,
        },
        Event::RunDispatched {
            user: 3,
            model: 7,
            device: 2,
            cost: 4.5,
            at: 17.25,
            parent: 13,
        },
        Event::RunFinished {
            user: 3,
            model: 7,
            device: 2,
            at: 21.75,
            ok: true,
            parent: 13,
        },
        Event::DeviceIdle {
            device: 1,
            idle: 1.5,
            at: 17.25,
            parent: 13,
        },
        Event::PosteriorUpdated {
            arm: 7,
            reward: 0.843,
            num_obs: 11,
            cond: 3.5,
            parent: 12,
        },
        Event::SpanStart {
            span: 9,
            parent: 0,
            name: "scheduler_step".into(),
            ts_ns: 12_345,
        },
        Event::SpanEnd {
            span: 9,
            ts_ns: 99_999,
        },
        Event::JitterRetry {
            attempts: 3,
            jitter: 1e-8,
            parent: 12,
        },
        Event::PsdProjectionApplied {
            floor: 1e-9,
            clipped: 2,
            clipped_mass: 0.031,
            parent: 0,
        },
        // A witness chain for a healthy round: scores first, the
        // DecisionWitness commit marker last.
        Event::UserScored {
            round: 42,
            user: 3,
            score: 0.177,
            rank: 0,
            candidate: true,
            parent: 9,
        },
        Event::ArmScored {
            round: 42,
            user: 3,
            arm: 7,
            mean: 0.8,
            sigma: 0.04,
            ucb: 0.912,
            rank: 0,
            masked: false,
            parent: 9,
        },
        Event::DecisionWitness {
            round: 42,
            user: 3,
            arm: 7,
            user_margin: 0.012,
            arm_margin: 0.033,
            path: "hybrid:greedy(max-gap)".into(),
            fallback: String::new(),
            censored: false,
            candidates: 2,
            digest: "d2700d8249289c29".into(),
            parent: 9,
        },
        // A witness chain for a censored round under quarantine: the
        // served arm is masked, the round charges cost without an
        // observation, and the witness still commits — censored rounds
        // carry provenance too.
        Event::ArmScored {
            round: 43,
            user: 3,
            arm: 7,
            mean: 0.8,
            sigma: 0.04,
            ucb: 0.912,
            rank: 1,
            masked: true,
            parent: 14,
        },
        Event::DecisionWitness {
            round: 43,
            user: 3,
            arm: 5,
            user_margin: f64::NAN,
            arm_margin: 0.004,
            path: "hybrid:rr-after-switch".into(),
            fallback: "crash".into(),
            censored: true,
            candidates: 0,
            digest: "81b2f09b1a368569".into(),
            parent: 14,
        },
        // The v6 open-loop workload vocabulary: a tenant joins mid-run,
        // submits jobs on its own clock, and later retires.
        Event::TenantJoined {
            user: 4,
            name: "tenant-d".into(),
            models: 8,
            at: 33.5,
            parent: 15,
        },
        Event::JobArrived {
            user: 4,
            seq: 112,
            at: 34.75,
            parent: 0,
        },
        Event::TenantRetired {
            user: 4,
            serves: 27,
            at: 41.0,
            parent: 15,
        },
    ]
}

fn render() -> String {
    let mut out = String::new();
    out.push_str(&schema_header_line());
    out.push('\n');
    for event in samples() {
        out.push_str(&event.to_json());
        out.push('\n');
    }
    out
}

#[test]
fn serialized_trace_matches_the_golden_file() {
    let rendered = render();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(golden_path(), &rendered).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(golden_path())
        .expect("golden file missing; regenerate with UPDATE_GOLDEN=1");
    assert_eq!(
        rendered, golden,
        "trace serialization drifted from tests/golden/schema_v6.jsonl; \
         if intentional, bump TRACE_SCHEMA_VERSION and regenerate with \
         UPDATE_GOLDEN=1"
    );
}

#[test]
fn golden_file_parses_back_to_the_same_events() {
    let golden = std::fs::read_to_string(golden_path()).unwrap();
    let mut lines = golden.lines();
    let header = lines.next().unwrap();
    assert!(header.contains(&format!("\"version\":{TRACE_SCHEMA_VERSION}")));
    let parsed: Vec<String> = lines
        .map(|l| Event::from_json(l).unwrap().to_json())
        .collect();
    // Compare re-serialized forms rather than the events themselves so the
    // NaN margins a warm-up witness carries (NaN != NaN under PartialEq)
    // still round-trip through their `null` serialization.
    let expected: Vec<String> = samples().iter().map(Event::to_json).collect();
    assert_eq!(parsed, expected);
}
