//! Property-based tests of the call-tree fold's published invariants:
//! for any well-formed span stream, every node satisfies
//! `self_ns ≤ total_ns` and `Σ child total ≤ parent total`, and folding a
//! concatenation equals merging the individual folds for every mergeable
//! field.

use easeml_obs::{CallTreeProfile, Event, ProfileNode};
use proptest::prelude::*;

const NAMES: [&str; 5] = [
    "scheduler_step",
    "pick_user",
    "pick_arm",
    "train",
    "posterior_update",
];

/// Interprets a byte program into a *well-formed* span stream: each byte
/// either opens a nested span (name chosen by value) or closes the
/// innermost open one; everything left open closes at the end. Span ids
/// are stream-local and timestamps strictly increase by byte-derived
/// increments, so any two generated streams are independently balanced.
fn build_stream(program: &[u8], first_span: u64, start_ts: u64) -> (Vec<Event>, u64, u64) {
    let mut events = Vec::new();
    let mut stack: Vec<u64> = Vec::new();
    let mut next_span = first_span;
    let mut ts = start_ts;
    for &op in program {
        ts += 1 + (op as u64 % 97);
        if op % 3 != 0 || stack.is_empty() {
            let span = next_span;
            next_span += 1;
            events.push(Event::SpanStart {
                span,
                parent: stack.last().copied().unwrap_or(0),
                name: NAMES[op as usize % NAMES.len()].to_string(),
                ts_ns: ts,
            });
            stack.push(span);
        } else {
            let span = stack.pop().expect("checked non-empty");
            events.push(Event::SpanEnd { span, ts_ns: ts });
        }
    }
    while let Some(span) = stack.pop() {
        ts += 1;
        events.push(Event::SpanEnd { span, ts_ns: ts });
    }
    (events, next_span, ts)
}

fn check_node_invariants(profile: &CallTreeProfile, idx: usize) {
    let nodes = profile.nodes();
    let node: &ProfileNode = &nodes[idx];
    assert!(
        node.self_ns <= node.total_ns,
        "{}: self {} > total {}",
        node.name,
        node.self_ns,
        node.total_ns
    );
    if idx != 0 {
        let child_total: u64 = node.children.iter().map(|&c| nodes[c].total_ns).sum();
        assert!(
            child_total <= node.total_ns,
            "{}: children total {} > own total {}",
            node.name,
            child_total,
            node.total_ns
        );
        assert_eq!(node.total_ns, node.self_ns + child_total);
    }
    for &c in &node.children {
        check_node_invariants(profile, c);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn fold_invariants_hold_on_any_well_formed_stream(
        program in prop::collection::vec(0u8..255u8, 0..200),
    ) {
        let (events, _, _) = build_stream(&program, 1, 0);
        let profile = CallTreeProfile::fold(&events);
        prop_assert_eq!(profile.unclosed_spans, 0);
        prop_assert_eq!(profile.orphan_ends, 0);
        prop_assert_eq!(2 * profile.closed_spans(), events.len() as u64);
        check_node_invariants(&profile, 0);
    }

    #[test]
    fn fold_of_concat_equals_merge_of_folds(
        prog_a in prop::collection::vec(0u8..255u8, 0..120),
        prog_b in prop::collection::vec(0u8..255u8, 0..120),
    ) {
        // Disjoint span-id ranges and advancing timestamps, exactly as
        // two rotated segments of one trace would carry.
        let (a, next_span, next_ts) = build_stream(&prog_a, 1, 0);
        let (b, _, _) = build_stream(&prog_b, next_span, next_ts);
        let concat: Vec<Event> = a.iter().chain(b.iter()).cloned().collect();

        let folded = CallTreeProfile::fold(&concat);
        let mut merged = CallTreeProfile::fold(&a);
        merged.merge(&CallTreeProfile::fold(&b));

        prop_assert_eq!(folded.nodes().len(), merged.nodes().len());
        for (f, m) in folded.nodes().iter().zip(merged.nodes().iter()) {
            prop_assert_eq!(&f.name, &m.name);
            prop_assert_eq!(f.count, m.count);
            prop_assert_eq!(f.total_ns, m.total_ns);
            prop_assert_eq!(f.self_ns, m.self_ns);
            prop_assert_eq!(f.children.len(), m.children.len());
            // Latency sketches agree as distributions (equal-alpha merge
            // is lossless: same multiset of buckets either way).
            prop_assert_eq!(f.latency.count(), m.latency.count());
            prop_assert_eq!(f.latency.sum(), m.latency.sum());
            for q in [0.0, 0.5, 0.95, 1.0] {
                prop_assert_eq!(f.latency.quantile(q), m.latency.quantile(q));
            }
        }
        prop_assert_eq!(folded.folded_stacks(), merged.folded_stacks());
    }
}
