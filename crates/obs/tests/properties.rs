//! Property-based tests of the event trace format: every `Event` variant
//! must survive `to_json` → `from_json` exactly (including extreme floats),
//! and malformed / truncated JSONL lines must be rejected, never
//! misparsed.

use easeml_obs::Event;
use proptest::prelude::*;

/// Floats that must round-trip bit-exactly through the trace format:
/// zeros, subnormals, huge, tiny, negative, and awkward decimals.
/// (NaN is excluded — it serializes to `null` by design and `NaN != NaN`.)
fn extreme_f64() -> impl Strategy<Value = f64> {
    prop::sample::select(vec![
        0.0,
        -0.0,
        1.0,
        -1.0,
        0.1,
        1.0 / 3.0,
        1.75e-3,
        1e308,
        -1e308,
        f64::MAX,
        f64::MIN,
        f64::MIN_POSITIVE,
        5e-324, // smallest subnormal
        123456789.123456,
        0.843,
        f64::EPSILON,
    ])
}

/// Any float the events might plausibly carry: extremes plus a dense range.
fn any_f64() -> impl Strategy<Value = f64> {
    (0usize..2, extreme_f64(), -1.0e6f64..1.0e6)
        .prop_map(|(which, extreme, dense)| if which == 0 { extreme } else { dense })
}

fn any_string() -> impl Strategy<Value = String> {
    prop::sample::select(vec![
        "hybrid".to_string(),
        "greedy(max-gap)".to_string(),
        "round-robin".to_string(),
        "no improvement for 10 rounds".to_string(),
        "frozen set {1, 2}\nline two\t\"quoted\"".to_string(),
        "unicode: héllo ∑ — “curly”".to_string(),
        "control char: \u{1}".to_string(),
        String::new(),
    ])
}

/// Draws one event, covering all nine variants. The shim's tuple strategies
/// top out at 8 elements, so the value pool is a nested tuple and the first
/// coordinate selects the variant. Span/parent ids stay below the trace
/// format's 9e15 integer ceiling.
fn any_event() -> impl Strategy<Value = Event> {
    (
        (0usize..9, 0u64..1_000_000, 0usize..64, 0usize..256),
        (any_f64(), any_f64(), any_f64(), any_f64(), any_f64()),
        (
            any_string(),
            prop::collection::vec(any_f64(), 0..8),
            0usize..100_000,
            0u64..1_000_000_000,
            0u64..1_000_000_000,
        ),
    )
        .prop_map(
            |(
                (variant, round, user, arm),
                (f1, f2, f3, f4, f5),
                (text, scores, num_obs, parent, span),
            )| match variant {
                0 => Event::SchedulerDecision {
                    round,
                    user,
                    rule: text,
                    scores,
                    parent,
                },
                1 => Event::ArmChosen {
                    user,
                    arm,
                    ucb: f1,
                    beta: f2,
                    cost: f3,
                    mean: f4,
                    sigma: f5,
                    parent,
                },
                2 => Event::HybridFallback {
                    reason: text,
                    parent,
                },
                3 => Event::TrainingCompleted {
                    user,
                    model: arm,
                    cost: f1,
                    quality: f2,
                    parent,
                },
                4 => Event::PosteriorUpdated {
                    arm,
                    reward: f1,
                    num_obs,
                    cond: f2,
                    parent,
                },
                5 => Event::SpanStart {
                    span: span + 1,
                    parent,
                    name: text,
                    ts_ns: round,
                },
                6 => Event::SpanEnd {
                    span: span + 1,
                    ts_ns: round,
                },
                7 => Event::JitterRetry {
                    attempts: 1 + round % 16,
                    jitter: f1,
                    parent,
                },
                _ => Event::PsdProjectionApplied {
                    floor: f1,
                    clipped: round % 64,
                    clipped_mass: f2,
                    parent,
                },
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn every_event_round_trips_exactly(event in any_event()) {
        let line = event.to_json();
        prop_assert!(!line.contains('\n'), "JSONL lines must be single-line: {line}");
        let back = Event::from_json(&line)
            .map_err(|e| TestCaseError::fail(format!("{e} for {line}")))?;
        prop_assert_eq!(&back, &event);
        // Float fields must round-trip bit-exactly, which PartialEq alone
        // does not prove for -0.0 vs 0.0: re-serialize and compare the text.
        prop_assert_eq!(back.to_json(), line);
    }

    #[test]
    fn truncated_lines_are_rejected((event, keep) in (any_event(), 0.0f64..1.0)) {
        let line = event.to_json();
        // Any strict prefix is structurally incomplete: the outer object
        // only closes at the final byte. Cut at a char boundary derived
        // from `keep`.
        let cut = (keep * line.len() as f64) as usize;
        let cut = (0..=cut).rev().find(|&i| line.is_char_boundary(i)).unwrap();
        let prefix = &line[..cut];
        prop_assert!(
            Event::from_json(prefix).is_err(),
            "truncated line must not parse: {:?}",
            prefix
        );
    }

    #[test]
    fn trailing_garbage_is_rejected(event in any_event()) {
        let line = event.to_json();
        for garbage in ["x", " {}", "{\"seq\":1}", "]"] {
            let bad = format!("{line}{garbage}");
            prop_assert!(Event::from_json(&bad).is_err(), "{}", bad);
        }
    }
}

#[test]
fn malformed_lines_are_rejected() {
    for bad in [
        "",
        "   ",
        "not json",
        "42",
        "null",
        "[]",
        "{}",
        "{\"TwoKeys\":{},\"Extra\":{}}",
        "{\"UnknownVariant\":{}}",
        "{\"TrainingCompleted\":{}}",
        "{\"TrainingCompleted\":{\"user\":1,\"model\":2,\"cost\":1.0}}", // missing field
        "{\"TrainingCompleted\":{\"user\":\"zero\",\"model\":2,\"cost\":1.0,\"quality\":0.5}}",
        "{\"TrainingCompleted\":{\"user\":-1,\"model\":2,\"cost\":1.0,\"quality\":0.5}}",
        "{\"TrainingCompleted\":{\"user\":1.5,\"model\":2,\"cost\":1.0,\"quality\":0.5}}",
        "{\"SchedulerDecision\":{\"round\":1,\"user\":0,\"rule\":\"x\",\"scores\":[true]}}",
        "{\"HybridFallback\":{\"reason\":null}}",
        "{\"HybridFallback\":\"reason\"}",
    ] {
        assert!(Event::from_json(bad).is_err(), "{bad:?} must be rejected");
    }
}

#[test]
fn non_finite_floats_degrade_to_nan_not_errors() {
    // Non-finite floats serialize as `null` (documented trace-format
    // behavior) and come back as NaN — lossy, but never a parse error and
    // never a wrong finite number.
    let event = Event::ArmChosen {
        user: 1,
        arm: 2,
        ucb: f64::INFINITY,
        beta: f64::NEG_INFINITY,
        cost: f64::NAN,
        mean: f64::NAN,
        sigma: f64::INFINITY,
        parent: 0,
    };
    let line = event.to_json();
    assert!(line.contains("null"), "{line}");
    match Event::from_json(&line).unwrap() {
        Event::ArmChosen {
            ucb,
            beta,
            cost,
            mean,
            sigma,
            ..
        } => {
            assert!(ucb.is_nan() && beta.is_nan() && cost.is_nan());
            assert!(mean.is_nan() && sigma.is_nan());
        }
        other => panic!("wrong variant: {other:?}"),
    }
}
