//! Property-based tests of the sketch layer's published guarantees:
//! quantile sketches merge associatively/commutatively and stay within
//! their relative-error bound against an exact sort; Space-Saving never
//! under-counts a tracked key and never over-counts by more than its
//! reported error; the reservoir is a uniform, bounded, seeded sample.

use easeml_obs::{HeavyHitter, QuantileSketch, Reservoir, SpaceSaving};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Adversarial value distributions: dense uniform, many orders of
/// magnitude, heavy duplicates, and zero-spiked streams.
fn value_stream() -> impl Strategy<Value = Vec<f64>> {
    (0usize..4, prop::collection::vec(0.0f64..1.0, 1..200)).prop_map(|(kind, raw)| {
        raw.into_iter()
            .map(|u| match kind {
                0 => u * 1e3,                     // dense uniform
                1 => 10f64.powf(-6.0 + 14.0 * u), // log-uniform, 14 decades
                2 => (u * 8.0).floor(),           // heavy duplicates (incl. 0)
                _ => {
                    if u < 0.3 {
                        0.0 // zero-spiked
                    } else {
                        u * 42.0
                    }
                }
            })
            .collect()
    })
}

fn sketch_of(values: &[f64], alpha: f64) -> QuantileSketch {
    let mut sketch = QuantileSketch::new(alpha);
    for &v in values {
        sketch.insert(v);
    }
    sketch
}

fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
    let rank = (q * (sorted.len() - 1) as f64).floor() as usize;
    sorted[rank]
}

const QS: [f64; 7] = [0.0, 0.1, 0.25, 0.5, 0.9, 0.99, 1.0];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn quantiles_stay_within_the_relative_error_bound(values in value_stream()) {
        let alpha = 0.01;
        let sketch = sketch_of(&values, alpha);
        let mut sorted = values.clone();
        sorted.sort_by(f64::total_cmp);
        for q in QS {
            let exact = exact_quantile(&sorted, q);
            let est = sketch.quantile(q).unwrap();
            prop_assert!(
                (est - exact).abs() <= alpha * exact + 1e-9,
                "q={}: est {} vs exact {} over {} values",
                q, est, exact, values.len()
            );
        }
    }

    #[test]
    fn sketch_merge_is_commutative_and_associative(
        a in value_stream(),
        b in value_stream(),
        c in value_stream(),
    ) {
        let (sa, sb, sc) = (sketch_of(&a, 0.02), sketch_of(&b, 0.02), sketch_of(&c, 0.02));

        // Commutativity: a∪b == b∪a (identical buckets → identical quantiles).
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(ab.count(), ba.count());
        for q in QS {
            prop_assert_eq!(ab.quantile(q), ba.quantile(q));
        }

        // Associativity: (a∪b)∪c == a∪(b∪c).
        let mut left = ab;
        left.merge(&sc);
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);
        prop_assert_eq!(left.count(), right.count());
        for q in QS {
            prop_assert_eq!(left.quantile(q), right.quantile(q));
        }

        // Merging equals folding the concatenated stream.
        let mut whole: Vec<f64> = a.clone();
        whole.extend(&b);
        whole.extend(&c);
        let folded = sketch_of(&whole, 0.02);
        prop_assert_eq!(left.count(), folded.count());
        for q in QS {
            prop_assert_eq!(left.quantile(q), folded.quantile(q));
        }
    }

    #[test]
    fn space_saving_count_error_guarantee_holds(
        offers in prop::collection::vec((0u64..24, 0.1f64..10.0), 1..300),
        capacity in 1usize..8,
    ) {
        let mut tracker = SpaceSaving::new(capacity);
        let mut truth: BTreeMap<u64, f64> = BTreeMap::new();
        for &(key, weight) in &offers {
            tracker.offer(key, weight);
            *truth.entry(key).or_insert(0.0) += weight;
        }
        let total: f64 = truth.values().sum();
        prop_assert!((tracker.total() - total).abs() <= 1e-6 * total.max(1.0));

        let tracked: Vec<HeavyHitter> = tracker.top(tracker.len());
        for entry in &tracked {
            let true_weight = truth[&entry.key];
            // Never an under-count, never over by more than the reported
            // error, and the error itself is bounded by total/capacity.
            prop_assert!(entry.weight >= true_weight - 1e-9, "{:?} vs {}", entry, true_weight);
            prop_assert!(entry.weight - entry.error <= true_weight + 1e-9);
            prop_assert!(entry.error <= total / capacity as f64 + 1e-9);
        }
        // Every key heavier than total/capacity must be tracked.
        for (&key, &weight) in &truth {
            if weight > total / capacity as f64 {
                prop_assert!(
                    tracked.iter().any(|e| e.key == key),
                    "heavy key {} (weight {}) not tracked", key, weight
                );
            }
        }
    }

    #[test]
    fn reservoir_is_bounded_deterministic_and_counts_the_stream(
        n in 1u64..500,
        capacity in 1usize..16,
        seed in 0u64..1000,
    ) {
        let mut reservoir = Reservoir::new(capacity, seed);
        for i in 0..n {
            reservoir.offer(i);
        }
        prop_assert_eq!(reservoir.seen(), n);
        prop_assert_eq!(reservoir.items().len(), capacity.min(n as usize));
        // Samples are distinct stream elements within range.
        let mut items = reservoir.items().to_vec();
        items.sort_unstable();
        items.dedup();
        prop_assert_eq!(items.len(), reservoir.items().len());
        prop_assert!(items.iter().all(|&i| i < n));
        // Same seed, same stream → same sample.
        let mut again = Reservoir::new(capacity, seed);
        for i in 0..n {
            again.offer(i);
        }
        prop_assert_eq!(reservoir.items(), again.items());
    }
}

/// Uniformity of the seeded reservoir: across many seeds, every stream
/// position is sampled at close to the nominal `capacity / n` rate —
/// Algorithm R must not favor early or late arrivals.
#[test]
fn reservoir_sampling_is_uniform_across_seeds() {
    let n = 50u64;
    let capacity = 5usize;
    let trials = 2000u64;
    let mut hits = vec![0u64; n as usize];
    for seed in 0..trials {
        let mut reservoir = Reservoir::new(capacity, seed.wrapping_mul(0x9E37_79B9));
        for i in 0..n {
            reservoir.offer(i);
        }
        for &kept in reservoir.items() {
            hits[kept as usize] += 1;
        }
    }
    let expected = trials as f64 * capacity as f64 / n as f64; // 200
    for (position, &count) in hits.iter().enumerate() {
        assert!(
            (count as f64 - expected).abs() < 0.35 * expected,
            "position {position} sampled {count} times, expected ~{expected}"
        );
    }
}
