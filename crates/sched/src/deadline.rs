//! Deadline-aware user picking — an extension addressing §4.5's open
//! question of integrating "hard rules such as each user's deadline".
//!
//! [`DeadlinePicker`] wraps any base picker (GREEDY, HYBRID, …) and
//! overrides it whenever a tenant is in danger of missing a service-level
//! deadline: *user i must have been served at least `min_serves` times by
//! global round `round`*. Urgent tenants (deadline within the look-ahead
//! horizon and still short of their quota) preempt the base policy, most
//! imminent deadline first. Regret-wise this degrades gracefully: when no
//! deadline is urgent, the wrapped picker's behaviour — and hence its
//! regret bound — is untouched.

use crate::picker::UserPicker;
use crate::tenant::Tenant;
use easeml_obs::{Event, RecorderHandle};

/// A per-tenant deadline: serve the tenant at least `min_serves` times by
/// global round `round`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    /// Global round (0-based) by which the quota must be met.
    pub round: usize,
    /// Required number of serves.
    pub min_serves: usize,
}

/// Wraps a base picker with deadline enforcement.
#[derive(Debug)]
pub struct DeadlinePicker<P> {
    inner: P,
    deadlines: Vec<Option<Deadline>>,
    /// How many rounds before a deadline a tenant becomes urgent. The
    /// horizon must cover the remaining quota; a generous default is the
    /// number of tenants times the outstanding serves.
    horizon: usize,
    recorder: RecorderHandle,
}

impl<P: UserPicker> DeadlinePicker<P> {
    /// Wraps `inner`. `deadlines[i]` is tenant i's deadline, if any.
    ///
    /// # Panics
    ///
    /// Panics if `horizon == 0`.
    pub fn new(inner: P, deadlines: Vec<Option<Deadline>>, horizon: usize) -> Self {
        assert!(horizon > 0, "horizon must be positive");
        DeadlinePicker {
            inner,
            deadlines,
            horizon,
            recorder: RecorderHandle::noop(),
        }
    }

    /// The wrapped picker.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Whether tenant `i` is urgent at `step`: its deadline is within the
    /// horizon and its quota is unmet.
    fn is_urgent(&self, tenants: &[Tenant], i: usize, step: usize) -> bool {
        if !tenants[i].is_active() {
            // A retired tenant's deadline lapses with it.
            return false;
        }
        match self.deadlines.get(i).copied().flatten() {
            Some(d) => tenants[i].serves() < d.min_serves && step + self.horizon >= d.round,
            None => false,
        }
    }

    /// The most urgent tenant at `step`, if any: unmet quota, deadline
    /// within the horizon, earliest deadline first (largest outstanding
    /// quota breaks ties).
    pub fn most_urgent(&self, tenants: &[Tenant], step: usize) -> Option<usize> {
        (0..tenants.len())
            .filter(|&i| self.is_urgent(tenants, i, step))
            .min_by_key(|&i| {
                let d = self.deadlines[i].expect("urgent tenants have deadlines");
                let outstanding = d.min_serves - tenants[i].serves();
                (d.round, usize::MAX - outstanding)
            })
    }
}

impl<P: UserPicker> UserPicker for DeadlinePicker<P> {
    fn name(&self) -> &'static str {
        "deadline"
    }

    fn needs_warmup(&self) -> bool {
        self.inner.needs_warmup()
    }

    fn pick(&mut self, tenants: &[Tenant], step: usize, rng: &mut dyn rand::RngCore) -> usize {
        if let Some(urgent) = self.most_urgent(tenants, step) {
            // A preemption is this round's decision; the inner picker did
            // not run, so no second decision is emitted.
            self.recorder.emit(|| Event::SchedulerDecision {
                round: step as u64,
                user: urgent,
                rule: self.name().to_string(),
                scores: Vec::new(),
                parent: easeml_obs::current_span(),
            });
            return urgent;
        }
        self.inner.pick(tenants, step, rng)
    }

    fn after_observe(&mut self, tenants: &[Tenant], served: usize) {
        self.inner.after_observe(tenants, served);
    }

    fn set_recorder(&mut self, recorder: RecorderHandle) {
        self.recorder = recorder.clone();
        self.inner.set_recorder(recorder);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::picker::RoundRobin;
    use easeml_bandit::{BetaSchedule, GpUcb};
    use easeml_gp::ArmPrior;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tenants(n: usize) -> Vec<Tenant> {
        (0..n)
            .map(|i| {
                let beta = BetaSchedule::Simple {
                    num_arms: 2,
                    delta: 0.1,
                };
                Tenant::new(
                    i,
                    GpUcb::cost_oblivious(ArmPrior::independent(2, 1.0), 0.01, beta),
                )
            })
            .collect()
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(31)
    }

    #[test]
    fn no_deadlines_delegates_to_inner() {
        let ts = tenants(3);
        let mut p = DeadlinePicker::new(RoundRobin::default(), vec![None, None, None], 5);
        let mut r = rng();
        let picks: Vec<usize> = (0..6).map(|s| p.pick(&ts, s, &mut r)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
        assert_eq!(p.name(), "deadline");
        assert!(!p.needs_warmup());
    }

    #[test]
    fn urgent_tenant_preempts() {
        let ts = tenants(3);
        // Tenant 2 must be served twice by round 4; horizon 3 makes it
        // urgent from round 1 on.
        let deadlines = vec![
            None,
            None,
            Some(Deadline {
                round: 4,
                min_serves: 2,
            }),
        ];
        let mut p = DeadlinePicker::new(RoundRobin::default(), deadlines, 3);
        let mut r = rng();
        assert_eq!(p.pick(&ts, 0, &mut r), 0, "not yet urgent at step 0");
        assert_eq!(p.pick(&ts, 1, &mut r), 2, "urgent from step 1");
        assert_eq!(p.pick(&ts, 2, &mut r), 2, "still short of quota");
    }

    #[test]
    fn met_quota_releases_the_override() {
        let mut ts = tenants(2);
        let deadlines = vec![
            Some(Deadline {
                round: 2,
                min_serves: 1,
            }),
            None,
        ];
        let mut p = DeadlinePicker::new(RoundRobin::default(), deadlines, 10);
        let mut r = rng();
        assert_eq!(p.pick(&ts, 0, &mut r), 0, "urgent");
        ts[0].observe(0, 0.5); // quota met
                               // Back to round robin (step 1 → tenant 1).
        assert_eq!(p.pick(&ts, 1, &mut r), 1);
    }

    #[test]
    fn earliest_deadline_wins() {
        let ts = tenants(3);
        let deadlines = vec![
            Some(Deadline {
                round: 9,
                min_serves: 1,
            }),
            Some(Deadline {
                round: 3,
                min_serves: 1,
            }),
            None,
        ];
        let mut p = DeadlinePicker::new(RoundRobin::default(), deadlines, 20);
        let mut r = rng();
        assert_eq!(p.pick(&ts, 0, &mut r), 1, "round-3 deadline beats round-9");
        assert_eq!(p.most_urgent(&ts, 0), Some(1));
    }

    #[test]
    #[should_panic(expected = "horizon")]
    fn zero_horizon_panics() {
        let _ = DeadlinePicker::new(RoundRobin::default(), vec![], 0);
    }
}
