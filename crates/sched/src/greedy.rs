//! The GREEDY user picker of Algorithm 2.

use crate::picker::UserPicker;
use crate::tenant::Tenant;
use easeml_linalg::vec_ops;
use easeml_obs::{Event, RecorderHandle};

/// How to break ties among the candidate set `V_t` (Algorithm 2 line 8).
///
/// The paper notes the regret bound holds for *any* rule and reports that
/// ease.ml uses the maximum UCB-gap rule in production; max-σ̃ and random
/// are provided for the line-8 ablation study.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PickRule {
    /// Pick the candidate with the maximum gap between its largest upper
    /// confidence bound and its best accuracy so far (ease.ml's rule).
    MaxUcbGap,
    /// Pick the candidate with the maximum empirical variance σ̃.
    MaxSigmaTilde,
    /// Pick uniformly at random among the candidates.
    Random,
}

impl PickRule {
    /// A stable string name for the rule, used by checkpoint files.
    pub fn name(self) -> &'static str {
        match self {
            PickRule::MaxUcbGap => "max-gap",
            PickRule::MaxSigmaTilde => "max-sigma",
            PickRule::Random => "random",
        }
    }

    /// Parses a rule from its [`PickRule::name`] form.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "max-gap" => Some(PickRule::MaxUcbGap),
            "max-sigma" => Some(PickRule::MaxSigmaTilde),
            "random" => Some(PickRule::Random),
            _ => None,
        }
    }
}

/// GREEDY (Algorithm 2): serve a tenant whose estimated potential for
/// improvement σ̃ is at least the average over all tenants.
///
/// The candidate set is
///
/// ```text
/// V_t = { i : σ̃_i ≥ (1/n) Σ_j σ̃_j }
/// ```
///
/// (never empty, since the maximum is always ≥ the mean), and one candidate
/// is selected by the configured [`PickRule`].
///
/// # Examples
///
/// ```
/// use easeml_bandit::{BetaSchedule, GpUcb};
/// use easeml_gp::ArmPrior;
/// use easeml_sched::{Greedy, Tenant, UserPicker};
/// use rand::SeedableRng;
///
/// let beta = BetaSchedule::Simple { num_arms: 2, delta: 0.1 };
/// let mut tenants: Vec<Tenant> = (0..2)
///     .map(|i| Tenant::new(i, GpUcb::cost_oblivious(
///         ArmPrior::independent(2, 1.0), 1e-3, beta)))
///     .collect();
/// // Tenant 0 is thoroughly explored; tenant 1 has barely started.
/// for _ in 0..10 {
///     tenants[0].observe(0, 0.9);
///     tenants[0].observe(1, 0.8);
/// }
/// tenants[1].observe(0, 0.3);
///
/// let mut greedy = Greedy::ease_ml();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// assert_eq!(greedy.pick(&tenants, 0, &mut rng), 1); // the open tenant
/// ```
#[derive(Debug, Clone)]
pub struct Greedy {
    rule: PickRule,
    /// Candidate set of the most recent pick (exposed for HYBRID's freeze
    /// detector and for diagnostics).
    last_candidates: Vec<usize>,
    /// Test-only seeded mutation: from this step on, the final choice is
    /// rotated by one tenant. `None` in every real configuration; set via
    /// the `EASEML_PICKER_MUTATE_AT` environment variable (read once at
    /// construction) or [`Greedy::set_test_mutation`], and used by the
    /// `replay-diff` harness to prove it pinpoints the exact first
    /// divergent round.
    mutate_at: Option<usize>,
    recorder: RecorderHandle,
}

impl Greedy {
    /// Creates a GREEDY picker with the given line-8 rule.
    pub fn new(rule: PickRule) -> Self {
        Greedy {
            rule,
            last_candidates: Vec::new(),
            mutate_at: std::env::var("EASEML_PICKER_MUTATE_AT")
                .ok()
                .and_then(|s| s.parse().ok()),
            recorder: RecorderHandle::noop(),
        }
    }

    /// Arms (or with `None` disarms) the test-only pick mutation: from step
    /// `at_step` on, the chosen tenant is rotated by one. Exists solely so
    /// the differential-replay harness can seed a known divergence.
    pub fn set_test_mutation(&mut self, at_step: Option<usize>) {
        self.mutate_at = at_step;
    }

    /// Ease.ml's production configuration: the maximum UCB-gap rule.
    pub fn ease_ml() -> Self {
        Self::new(PickRule::MaxUcbGap)
    }

    /// The rule used for line 8.
    pub fn rule(&self) -> PickRule {
        self.rule
    }

    /// The candidate set computed at the most recent pick.
    pub fn last_candidates(&self) -> &[usize] {
        &self.last_candidates
    }

    /// Computes the candidate set `V_t` from the live tenants' σ̃ values.
    ///
    /// Retired tenants are excluded from both the mean and the set, so a
    /// churned-out tenant can never re-enter `V_t`; indices in the result
    /// remain global tenant ids.
    pub fn candidate_set(tenants: &[Tenant]) -> Vec<usize> {
        let active = crate::picker::active_indices(tenants);
        let sigmas: Vec<f64> = active.iter().map(|&i| tenants[i].sigma_tilde()).collect();
        let mean = vec_ops::mean(&sigmas);
        let mut v: Vec<usize> = active
            .iter()
            .enumerate()
            .filter(|&(j, _)| sigmas[j] >= mean)
            .map(|(_, &i)| i)
            .collect();
        if v.is_empty() {
            // Mathematically max σ̃ ≥ mean, but when all σ̃ are (nearly)
            // equal, floating-point rounding of the mean can edge above
            // every element; fall back to the argmax.
            v.push(active[vec_ops::argmax(&sigmas).expect("at least one tenant")]);
        }
        v
    }

    /// The per-tenant score the configured rule ranks on — what a recorded
    /// `SchedulerDecision` carries in its `scores` column and the witness
    /// layer folds into top-K `UserScored` events.
    fn scores_for_rule(&self, tenants: &[Tenant]) -> Vec<f64> {
        match self.rule {
            PickRule::MaxUcbGap => tenants.iter().map(Tenant::ucb_gap).collect(),
            PickRule::MaxSigmaTilde | PickRule::Random => {
                tenants.iter().map(Tenant::sigma_tilde).collect()
            }
        }
    }

    fn pick_from_candidates(
        &self,
        tenants: &[Tenant],
        candidates: &[usize],
        rng: &mut dyn rand::RngCore,
    ) -> usize {
        match self.rule {
            PickRule::MaxUcbGap => {
                let gaps: Vec<f64> = candidates.iter().map(|&i| tenants[i].ucb_gap()).collect();
                candidates[vec_ops::argmax(&gaps).expect("non-empty candidates")]
            }
            PickRule::MaxSigmaTilde => {
                let sigmas: Vec<f64> = candidates
                    .iter()
                    .map(|&i| tenants[i].sigma_tilde())
                    .collect();
                candidates[vec_ops::argmax(&sigmas).expect("non-empty candidates")]
            }
            PickRule::Random => {
                use rand::Rng;
                candidates[rng.gen_range(0..candidates.len())]
            }
        }
    }
}

impl UserPicker for Greedy {
    fn name(&self) -> &'static str {
        match self.rule {
            PickRule::MaxUcbGap => "greedy(max-gap)",
            PickRule::MaxSigmaTilde => "greedy(max-sigma)",
            PickRule::Random => "greedy(random)",
        }
    }

    fn needs_warmup(&self) -> bool {
        true
    }

    fn pick(&mut self, tenants: &[Tenant], step: usize, rng: &mut dyn rand::RngCore) -> usize {
        let candidates = Self::candidate_set(tenants);
        let mut choice = self.pick_from_candidates(tenants, &candidates, rng);
        if let Some(at) = self.mutate_at {
            // Test-only seeded divergence for the replay-diff harness. The
            // rotation walks the *live* tenant list (identical to a plain
            // `+1 mod n` rotation when nobody has retired).
            if step >= at {
                let active = crate::picker::active_indices(tenants);
                let pos = active.iter().position(|&i| i == choice).unwrap_or(0);
                choice = active[(pos + 1) % active.len()];
            }
        }
        self.last_candidates = candidates;
        self.recorder.emit(|| Event::SchedulerDecision {
            round: step as u64,
            user: choice,
            rule: self.name().to_string(),
            scores: self.scores_for_rule(tenants),
            parent: easeml_obs::current_span(),
        });
        choice
    }

    fn set_recorder(&mut self, recorder: RecorderHandle) {
        self.recorder = recorder;
    }

    fn decision_scores(&self, tenants: &[Tenant]) -> Vec<f64> {
        self.scores_for_rule(tenants)
    }

    fn last_candidates(&self) -> &[usize] {
        &self.last_candidates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easeml_bandit::{BetaSchedule, GpUcb};
    use easeml_gp::ArmPrior;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tenant(id: usize, k: usize) -> Tenant {
        let beta = BetaSchedule::Simple {
            num_arms: k,
            delta: 0.1,
        };
        Tenant::new(
            id,
            GpUcb::cost_oblivious(ArmPrior::independent(k, 1.0), 0.01, beta),
        )
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(17)
    }

    /// A tenant whose exploration is essentially complete: tight posterior,
    /// σ̃ near zero.
    fn settled_tenant(id: usize) -> Tenant {
        let mut t = tenant(id, 2);
        for _ in 0..30 {
            t.observe(0, 0.9);
            t.observe(1, 0.85);
        }
        t
    }

    /// A tenant with one observation and plenty of remaining uncertainty.
    fn open_tenant(id: usize) -> Tenant {
        let mut t = tenant(id, 2);
        t.observe(0, 0.3);
        t
    }

    #[test]
    fn candidate_set_contains_the_most_uncertain_tenant() {
        let tenants = vec![settled_tenant(0), open_tenant(1), settled_tenant(2)];
        let v = Greedy::candidate_set(&tenants);
        assert!(v.contains(&1), "open tenant must be a candidate: {v:?}");
        assert!(!v.is_empty());
    }

    #[test]
    fn greedy_serves_the_user_with_more_potential() {
        let tenants = vec![settled_tenant(0), open_tenant(1)];
        for rule in [PickRule::MaxUcbGap, PickRule::MaxSigmaTilde] {
            let mut g = Greedy::new(rule);
            let mut r = rng();
            assert_eq!(
                g.pick(&tenants, 0, &mut r),
                1,
                "rule {rule:?} must pick the open tenant"
            );
            assert_eq!(g.last_candidates(), &[1]);
        }
    }

    #[test]
    fn random_rule_stays_within_candidates() {
        let tenants = vec![settled_tenant(0), open_tenant(1), open_tenant(2)];
        let mut g = Greedy::new(PickRule::Random);
        let mut r = rng();
        for _ in 0..50 {
            let p = g.pick(&tenants, 0, &mut r);
            assert!(g.last_candidates().contains(&p));
        }
    }

    #[test]
    fn candidate_set_is_never_empty_even_when_all_equal() {
        let tenants = vec![tenant(0, 2), tenant(1, 2)];
        let v = Greedy::candidate_set(&tenants);
        assert_eq!(v, vec![0, 1], "equal σ̃ ⇒ everyone is a candidate");
    }

    #[test]
    fn pick_rule_names_round_trip() {
        for rule in [
            PickRule::MaxUcbGap,
            PickRule::MaxSigmaTilde,
            PickRule::Random,
        ] {
            assert_eq!(PickRule::from_name(rule.name()), Some(rule));
        }
        assert_eq!(PickRule::from_name("nope"), None);
    }

    #[test]
    fn names_and_warmup() {
        assert_eq!(Greedy::ease_ml().name(), "greedy(max-gap)");
        assert_eq!(Greedy::ease_ml().rule(), PickRule::MaxUcbGap);
        assert!(Greedy::ease_ml().needs_warmup());
        assert_eq!(Greedy::new(PickRule::Random).name(), "greedy(random)");
    }

    #[test]
    fn witness_accessors_expose_scores_candidates_and_path() {
        let tenants = vec![settled_tenant(0), open_tenant(1)];
        let mut g = Greedy::ease_ml();
        let mut r = rng();
        let choice = g.pick(&tenants, 0, &mut r);
        let scores = UserPicker::decision_scores(&g, &tenants);
        assert_eq!(scores.len(), 2, "one score per tenant");
        assert!(
            scores[choice] >= scores[1 - choice],
            "the winner carries the top score: {scores:?}"
        );
        assert_eq!(UserPicker::last_candidates(&g), &[1]);
        assert_eq!(g.pick_path(), "greedy(max-gap)");
    }

    #[test]
    fn test_mutation_rotates_the_choice_from_the_armed_step() {
        let tenants = vec![settled_tenant(0), open_tenant(1)];
        let mut g = Greedy::ease_ml();
        let mut r = rng();
        g.set_test_mutation(Some(3));
        assert_eq!(g.pick(&tenants, 2, &mut r), 1, "before the armed step");
        assert_eq!(g.pick(&tenants, 3, &mut r), 0, "rotated from the step on");
        assert_eq!(g.pick(&tenants, 9, &mut r), 0, "and for every later step");
        g.set_test_mutation(None);
        assert_eq!(g.pick(&tenants, 9, &mut r), 1, "disarmed again");
    }

    #[test]
    fn retired_tenants_never_enter_the_candidate_set() {
        let mut tenants = vec![settled_tenant(0), open_tenant(1), open_tenant(2)];
        tenants[1].set_active(false);
        let v = Greedy::candidate_set(&tenants);
        assert!(!v.contains(&1), "retiree must stay out of V_t: {v:?}");
        assert!(v.contains(&2), "the live open tenant is a candidate");
        let mut g = Greedy::ease_ml();
        let mut r = rng();
        for step in 0..20 {
            let p = g.pick(&tenants, step, &mut r);
            assert_ne!(p, 1, "greedy must never serve a retiree");
            assert!(!g.last_candidates().contains(&1));
        }
        // Even the most uncertain tenant is invisible once retired.
        tenants[1].set_active(true);
        tenants[2].set_active(false);
        let v = Greedy::candidate_set(&tenants);
        assert!(!v.contains(&2));
    }

    #[test]
    fn max_gap_prefers_low_best_with_high_ucb() {
        // Two open tenants: one already has a great model (best 0.95), the
        // other is stuck at 0.2 with the same uncertainty. The gap rule
        // must prefer the stuck one.
        let mut lucky = tenant(0, 2);
        lucky.observe(0, 0.95);
        let mut stuck = tenant(1, 2);
        stuck.observe(0, 0.2);
        let tenants = vec![lucky, stuck];
        let mut g = Greedy::ease_ml();
        let mut r = rng();
        assert_eq!(g.pick(&tenants, 0, &mut r), 1);
    }
}
