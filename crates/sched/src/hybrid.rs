//! The HYBRID strategy (§4.4) — ease.ml's default scheduler.

use crate::greedy::{Greedy, PickRule};
use crate::picker::UserPicker;
use crate::tenant::Tenant;
use easeml_obs::{Event, RecorderHandle};

/// HYBRID: run [`Greedy`] until it enters the *freezing stage*, then switch
/// permanently to round robin.
///
/// §4.4: "When we notice that the candidate set remains unchanged and the
/// overall regret does not drop for s steps, we know that the algorithm has
/// entered the freezing stage." The overall regret drops exactly when some
/// tenant's best-so-far accuracy improves, so the detector tracks the
/// candidate set and the sum of best rewards; `s = 10` in the paper's
/// evaluation ([`Hybrid::ease_ml`]).
///
/// # Examples
///
/// ```
/// use easeml_sched::Hybrid;
///
/// let hybrid = Hybrid::ease_ml(); // max-UCB-gap rule, s = 10
/// assert!(!hybrid.has_switched());
/// assert_eq!(hybrid.frozen_rounds(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct Hybrid {
    greedy: Greedy,
    /// Freeze threshold s.
    patience: usize,
    /// Consecutive rounds with an unchanged candidate set and no
    /// improvement.
    frozen_rounds: usize,
    /// Candidate set observed at the previous round.
    prev_candidates: Vec<usize>,
    /// Sum of best rewards at the previous round (improvement detector).
    prev_best_sum: f64,
    /// Whether the permanent switch to round robin has happened.
    switched: bool,
    /// Round-robin cursor used after the switch.
    rr_cursor: usize,
    recorder: RecorderHandle,
}

impl Hybrid {
    /// Creates a HYBRID picker with the given greedy rule and freeze
    /// threshold `patience` (the paper's `s`).
    ///
    /// # Panics
    ///
    /// Panics if `patience == 0`.
    pub fn new(rule: PickRule, patience: usize) -> Self {
        assert!(patience > 0, "freeze threshold must be positive");
        Hybrid {
            greedy: Greedy::new(rule),
            patience,
            frozen_rounds: 0,
            prev_candidates: Vec::new(),
            prev_best_sum: f64::NEG_INFINITY,
            switched: false,
            rr_cursor: 0,
            recorder: RecorderHandle::noop(),
        }
    }

    /// The paper's configuration: max-UCB-gap rule, `s = 10`.
    pub fn ease_ml() -> Self {
        Self::new(PickRule::MaxUcbGap, 10)
    }

    /// Whether the scheduler has switched to its round-robin phase.
    #[inline]
    pub fn has_switched(&self) -> bool {
        self.switched
    }

    /// Number of consecutive frozen rounds observed so far.
    #[inline]
    pub fn frozen_rounds(&self) -> usize {
        self.frozen_rounds
    }

    /// Arms the inner greedy picker's test-only mutation — see
    /// [`Greedy::set_test_mutation`]. Only affects the pre-fallback phase.
    pub fn set_test_mutation(&mut self, at_step: Option<usize>) {
        self.greedy.set_test_mutation(at_step);
    }

    fn best_sum(tenants: &[Tenant]) -> f64 {
        tenants.iter().filter_map(Tenant::best_reward).sum()
    }

    /// Snapshots the freeze detector and round-robin cursor for a
    /// checkpoint. The greedy rule travels along so the restored picker is
    /// configured identically.
    pub fn export_state(&self) -> HybridState {
        HybridState {
            rule: self.greedy.rule(),
            patience: self.patience,
            frozen_rounds: self.frozen_rounds,
            prev_candidates: self.prev_candidates.clone(),
            prev_best_sum: self.prev_best_sum,
            switched: self.switched,
            rr_cursor: self.rr_cursor,
        }
    }

    /// Rebuilds a picker from a checkpointed [`HybridState`]. The recorder
    /// is not part of the state; attach one with
    /// [`UserPicker::set_recorder`] afterwards.
    ///
    /// # Panics
    ///
    /// Panics if `state.patience == 0`.
    pub fn from_state(state: HybridState) -> Self {
        let mut h = Hybrid::new(state.rule, state.patience);
        h.frozen_rounds = state.frozen_rounds;
        h.prev_candidates = state.prev_candidates;
        h.prev_best_sum = state.prev_best_sum;
        h.switched = state.switched;
        h.rr_cursor = state.rr_cursor;
        h
    }
}

/// A plain-data snapshot of everything [`Hybrid`] needs to resume exactly
/// where it left off: the freeze detector's memory and the round-robin
/// cursor. Produced by [`Hybrid::export_state`], consumed by
/// [`Hybrid::from_state`].
#[derive(Debug, Clone, PartialEq)]
pub struct HybridState {
    /// The greedy line-8 rule.
    pub rule: PickRule,
    /// Freeze threshold s.
    pub patience: usize,
    /// Consecutive frozen rounds observed so far.
    pub frozen_rounds: usize,
    /// Candidate set at the previous round.
    pub prev_candidates: Vec<usize>,
    /// Best-reward sum at the previous round (`f64::NEG_INFINITY` before
    /// the first observation).
    pub prev_best_sum: f64,
    /// Whether the permanent round-robin switch has happened.
    pub switched: bool,
    /// Round-robin cursor.
    pub rr_cursor: usize,
}

impl UserPicker for Hybrid {
    fn name(&self) -> &'static str {
        "hybrid"
    }

    fn needs_warmup(&self) -> bool {
        true
    }

    fn pick(&mut self, tenants: &[Tenant], step: usize, rng: &mut dyn rand::RngCore) -> usize {
        let choice = if self.switched {
            let active = crate::picker::active_indices(tenants);
            let c = active[self.rr_cursor % active.len()];
            self.rr_cursor += 1;
            c
        } else {
            // The inner greedy keeps its default (noop) recorder, so the
            // only SchedulerDecision per round is the one below, labelled
            // with the canonical "hybrid" rule name.
            self.greedy.pick(tenants, step, rng)
        };
        self.recorder.emit(|| Event::SchedulerDecision {
            round: step as u64,
            user: choice,
            rule: self.name().to_string(),
            scores: if self.switched {
                Vec::new()
            } else {
                UserPicker::decision_scores(&self.greedy, tenants)
            },
            parent: easeml_obs::current_span(),
        });
        choice
    }

    fn after_observe(&mut self, tenants: &[Tenant], _served: usize) {
        if self.switched {
            return;
        }
        let candidates = Greedy::candidate_set(tenants);
        let best_sum = Self::best_sum(tenants);
        let improved = best_sum > self.prev_best_sum + 1e-12;
        let same_candidates = candidates == self.prev_candidates;
        if same_candidates && !improved {
            self.frozen_rounds += 1;
            if self.frozen_rounds >= self.patience {
                self.switched = true;
                self.recorder.emit(|| Event::HybridFallback {
                    reason: format!(
                        "candidate set {:?} unchanged and no regret improvement \
                         for {} rounds (s = {}); switching to round robin",
                        candidates, self.frozen_rounds, self.patience
                    ),
                    parent: easeml_obs::current_span(),
                });
            }
        } else {
            self.frozen_rounds = 0;
        }
        self.prev_candidates = candidates;
        self.prev_best_sum = self.prev_best_sum.max(best_sum);
    }

    fn set_recorder(&mut self, recorder: RecorderHandle) {
        self.recorder = recorder;
    }

    fn decision_scores(&self, tenants: &[Tenant]) -> Vec<f64> {
        if self.switched {
            Vec::new()
        } else {
            UserPicker::decision_scores(&self.greedy, tenants)
        }
    }

    fn last_candidates(&self) -> &[usize] {
        if self.switched {
            &[]
        } else {
            self.greedy.last_candidates()
        }
    }

    fn pick_path(&self) -> String {
        if self.switched {
            "hybrid:rr-after-switch".to_string()
        } else {
            format!("hybrid:{}", self.greedy.name())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easeml_bandit::{BetaSchedule, GpUcb};
    use easeml_gp::ArmPrior;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tenants(n: usize, k: usize) -> Vec<Tenant> {
        (0..n)
            .map(|i| {
                let beta = BetaSchedule::Simple {
                    num_arms: k,
                    delta: 0.1,
                };
                Tenant::new(
                    i,
                    GpUcb::cost_oblivious(ArmPrior::independent(k, 1.0), 0.01, beta),
                )
            })
            .collect()
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(23)
    }

    #[test]
    fn starts_in_greedy_mode() {
        let h = Hybrid::ease_ml();
        assert!(!h.has_switched());
        assert_eq!(h.frozen_rounds(), 0);
        assert_eq!(h.name(), "hybrid");
        assert!(h.needs_warmup());
    }

    #[test]
    fn freeze_detection_triggers_the_switch() {
        let mut ts = tenants(2, 1);
        // Converge both tenants completely: single arm, constant reward.
        for _ in 0..5 {
            ts[0].observe(0, 0.9);
            ts[1].observe(0, 0.8);
        }
        let mut h = Hybrid::new(PickRule::MaxUcbGap, 3);
        let mut r = rng();
        // Simulate frozen rounds: no improvement, stable candidate set.
        for _ in 0..5 {
            let u = h.pick(&ts, 0, &mut r);
            let below_best = ts[u].best_reward().unwrap() - 0.2; // no improvement
            ts[u].observe(0, below_best);
            h.after_observe(&ts, u);
        }
        assert!(h.has_switched(), "freeze detector must fire");
    }

    #[test]
    fn improvement_resets_the_freeze_counter() {
        let mut ts = tenants(2, 1);
        ts[0].observe(0, 0.5);
        ts[1].observe(0, 0.5);
        let mut h = Hybrid::new(PickRule::MaxUcbGap, 3);
        let mut r = rng();
        let mut reward = 0.5;
        for _ in 0..10 {
            let u = h.pick(&ts, 0, &mut r);
            reward += 0.01; // every round improves someone's best
            ts[u].observe(0, reward);
            h.after_observe(&ts, u);
            assert_eq!(h.frozen_rounds(), 0);
        }
        assert!(!h.has_switched());
    }

    #[test]
    fn fallback_event_marks_the_switch() {
        use easeml_obs::{InMemoryRecorder, RecorderHandle};
        use std::sync::Arc;
        let mut ts = tenants(2, 1);
        for _ in 0..5 {
            ts[0].observe(0, 0.9);
            ts[1].observe(0, 0.8);
        }
        let rec = Arc::new(InMemoryRecorder::new());
        let mut h = Hybrid::new(PickRule::MaxUcbGap, 3);
        h.set_recorder(RecorderHandle::new(rec.clone()));
        let mut r = rng();
        for step in 0..5 {
            let u = h.pick(&ts, step, &mut r);
            let below_best = ts[u].best_reward().unwrap() - 0.2;
            ts[u].observe(0, below_best);
            h.after_observe(&ts, u);
        }
        assert!(h.has_switched());
        let fallbacks: Vec<_> = rec
            .events()
            .iter()
            .filter(|e| matches!(e, Event::HybridFallback { .. }))
            .cloned()
            .collect();
        assert_eq!(fallbacks.len(), 1, "exactly one switch: {fallbacks:?}");
        // Every pick produced a decision labelled with the canonical name.
        let decisions = rec.event_counts();
        assert_eq!(decisions.get("SchedulerDecision"), Some(&5));
        assert!(rec.events().iter().all(|e| match e {
            Event::SchedulerDecision { rule, .. } => rule == "hybrid",
            _ => true,
        }));
    }

    #[test]
    fn switched_mode_is_round_robin_and_permanent() {
        let ts = tenants(3, 1);
        let mut h = Hybrid::new(PickRule::MaxUcbGap, 1);
        h.switched = true;
        let mut r = rng();
        let picks: Vec<usize> = (0..6).map(|s| h.pick(&ts, s, &mut r)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
        // after_observe is a no-op once switched.
        h.after_observe(&ts, 0);
        assert!(h.has_switched());
    }

    #[test]
    fn switched_mode_cycles_only_the_live_tenants() {
        let mut ts = tenants(3, 1);
        ts[1].set_active(false);
        let mut h = Hybrid::new(PickRule::MaxUcbGap, 1);
        h.switched = true;
        let mut r = rng();
        let picks: Vec<usize> = (0..6).map(|s| h.pick(&ts, s, &mut r)).collect();
        assert_eq!(picks, vec![0, 2, 0, 2, 0, 2]);
    }

    #[test]
    fn pick_path_tracks_the_phase() {
        let ts = tenants(2, 1);
        let mut h = Hybrid::ease_ml();
        assert_eq!(h.pick_path(), "hybrid:greedy(max-gap)");
        assert_eq!(UserPicker::last_candidates(&h), &[] as &[usize]);
        h.switched = true;
        assert_eq!(h.pick_path(), "hybrid:rr-after-switch");
        assert!(UserPicker::decision_scores(&h, &ts).is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_patience_panics() {
        let _ = Hybrid::new(PickRule::MaxUcbGap, 0);
    }

    #[test]
    fn state_round_trip_resumes_the_same_trajectory() {
        // Drive one picker halfway, export, rebuild, and check both copies
        // make identical picks from there on.
        let mut ts = tenants(3, 1);
        for t in ts.iter_mut() {
            t.observe(0, 0.5);
        }
        let mut h = Hybrid::new(PickRule::MaxUcbGap, 2);
        let mut r = rng();
        for step in 0..4 {
            let u = h.pick(&ts, step, &mut r);
            let below = ts[u].best_reward().unwrap() - 0.1;
            ts[u].observe(0, below);
            h.after_observe(&ts, u);
        }
        let state = h.export_state();
        let mut resumed = Hybrid::from_state(state.clone());
        assert_eq!(resumed.export_state(), state);
        assert_eq!(resumed.has_switched(), h.has_switched());
        let mut r1 = rng();
        let mut r2 = rng();
        for step in 4..12 {
            assert_eq!(
                h.pick(&ts, step, &mut r1),
                resumed.pick(&ts, step, &mut r2),
                "divergence at step {step}"
            );
            h.after_observe(&ts, step % 3);
            resumed.after_observe(&ts, step % 3);
        }
    }
}
