//! Multi-tenant model-selection schedulers (paper §4).
//!
//! In the multi-tenant setting, n users share one computational
//! infrastructure: at each global round exactly one user is served, and the
//! served user runs one step of her own (cost-aware) GP-UCB. The scheduler's
//! job is the *user-picking phase* — deciding who is served next — while the
//! *model-picking phase* is delegated to each tenant's [`easeml_bandit::GpUcb`].
//!
//! Implemented user pickers:
//!
//! * [`Fcfs`] — the §4.1 strawman: serve the earliest-arrived user until her
//!   exploration is complete (regret of order T; kept as a baseline);
//! * [`RoundRobin`] — §4.2: serve user `t mod n` (Theorem 2 regret bound);
//! * [`RandomPicker`] — §5.3's RANDOM baseline (round robin with
//!   replacement);
//! * [`Greedy`] — Algorithm 2: maintain *empirical confidence bounds*
//!   `σ̃` per tenant, form the candidate set `V_t` of tenants whose σ̃ is
//!   above average, and pick by a configurable [`greedy::PickRule`]
//!   (the paper's production rule is the maximum gap between the largest
//!   UCB and the best accuracy so far; Theorem 3 regret bound);
//! * [`Hybrid`] — §4.4, ease.ml's default: run GREEDY until it freezes (the
//!   candidate set and the global best accuracy both stop changing for
//!   `s = 10` consecutive rounds), then switch to round-robin.
//!
//! [`Tenant`] holds the per-user bandit plus the Algorithm-2 recurrence
//! state; [`regret::MultiTenantRegret`] implements the §4.1 cost-aware
//! multi-tenant regret and the "ease.ml regret" variant.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod deadline;
pub mod greedy;
pub mod hybrid;
pub mod picker;
pub mod regret;
pub mod tenant;
pub mod weighted;

pub use deadline::{Deadline, DeadlinePicker};
pub use greedy::{Greedy, PickRule};
pub use hybrid::{Hybrid, HybridState};
pub use picker::{active_indices, Fcfs, RandomPicker, RoundRobin, UserPicker};
pub use regret::MultiTenantRegret;
pub use tenant::Tenant;
pub use weighted::WeightedFair;
