//! The user-picking interface and the workload-agnostic pickers.

use crate::tenant::Tenant;
use easeml_obs::{Event, RecorderHandle};

/// The user-picking phase of the multi-tenant scheduler: given the current
/// tenant states, decide who is served in global round `step` (0-based).
///
/// Pickers that estimate per-tenant potential (GREEDY, HYBRID) require every
/// tenant to have been served once before their estimates mean anything;
/// they signal this with [`UserPicker::needs_warmup`], and the simulation
/// driver serves tenants `0, 1, …, n−1` in order first (Algorithm 2
/// lines 1–4).
pub trait UserPicker {
    /// Human-readable name used in experiment reports.
    fn name(&self) -> &'static str;

    /// Whether the driver must run one warm-up serve per tenant first.
    fn needs_warmup(&self) -> bool {
        false
    }

    /// Chooses the tenant to serve.
    ///
    /// `step` counts *post-warm-up* rounds from 0. Implementations must
    /// return an index `< tenants.len()`.
    fn pick(&mut self, tenants: &[Tenant], step: usize, rng: &mut dyn rand::RngCore) -> usize;

    /// Hook invoked after the served tenant has observed its reward —
    /// HYBRID uses it for freeze detection.
    fn after_observe(&mut self, _tenants: &[Tenant], _served: usize) {}

    /// Attaches a recorder through which the picker emits one
    /// `SchedulerDecision` per pick (plus any strategy-specific events).
    /// The default keeps the picker uninstrumented.
    fn set_recorder(&mut self, _recorder: RecorderHandle) {}

    /// Per-tenant scores the most recent [`UserPicker::pick`] ranked users
    /// on, indexed by tenant — the witness-capture layer turns these into
    /// bounded top-K `UserScored` events. Empty for strategies that do not
    /// score (FCFS, round robin, random, post-fallback HYBRID).
    fn decision_scores(&self, _tenants: &[Tenant]) -> Vec<f64> {
        Vec::new()
    }

    /// Candidate set `V_t` of the most recent pick; empty for strategies
    /// that are not candidate-driven.
    fn last_candidates(&self) -> &[usize] {
        &[]
    }

    /// Label of the decision path the most recent pick took — finer than
    /// [`UserPicker::name`] for strategies with phases (HYBRID reports
    /// `"hybrid:greedy(max-gap)"` before its fallback and
    /// `"hybrid:rr-after-switch"` after).
    fn pick_path(&self) -> String {
        self.name().to_string()
    }
}

/// Indices of the live tenants, in id order — the universe every picker
/// draws from now that tenants can retire mid-run. Falls back to *all*
/// indices when every tenant is inactive, keeping `pick` total; drivers
/// are expected to guard picking behind an any-active check, so the
/// fallback only shields against misuse.
///
/// With every tenant active this is `0..n`, which keeps each picker's
/// choice — and its RNG consumption — bit-identical to the closed-loop
/// fixed-tenancy behavior.
pub fn active_indices(tenants: &[Tenant]) -> Vec<usize> {
    let active: Vec<usize> = tenants
        .iter()
        .enumerate()
        .filter(|(_, t)| t.is_active())
        .map(|(i, _)| i)
        .collect();
    if active.is_empty() {
        (0..tenants.len()).collect()
    } else {
        active
    }
}

/// First-come-first-served: serve the lowest-indexed tenant whose
/// exploration is not yet complete (§4.1's strawman, with "found an optimal
/// algorithm" operationalized as "trained every candidate model"). Once all
/// tenants are exhausted, falls back to round robin.
#[derive(Debug, Clone, Default)]
pub struct Fcfs {
    recorder: RecorderHandle,
}

impl UserPicker for Fcfs {
    fn name(&self) -> &'static str {
        "fcfs"
    }

    fn pick(&mut self, tenants: &[Tenant], step: usize, _rng: &mut dyn rand::RngCore) -> usize {
        let active = active_indices(tenants);
        let user = active
            .iter()
            .copied()
            .find(|&i| !tenants[i].exhausted())
            .unwrap_or(active[step % active.len()]);
        self.recorder.emit(|| Event::SchedulerDecision {
            round: step as u64,
            user,
            rule: self.name().to_string(),
            scores: Vec::new(),
            parent: easeml_obs::current_span(),
        });
        user
    }

    fn set_recorder(&mut self, recorder: RecorderHandle) {
        self.recorder = recorder;
    }
}

/// Round robin: serve user `t mod n` (§4.2, Theorem 2).
#[derive(Debug, Clone, Default)]
pub struct RoundRobin {
    recorder: RecorderHandle,
}

impl UserPicker for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn pick(&mut self, tenants: &[Tenant], step: usize, _rng: &mut dyn rand::RngCore) -> usize {
        let active = active_indices(tenants);
        let user = active[step % active.len()];
        self.recorder.emit(|| Event::SchedulerDecision {
            round: step as u64,
            user,
            rule: self.name().to_string(),
            scores: Vec::new(),
            parent: easeml_obs::current_span(),
        });
        user
    }

    fn set_recorder(&mut self, recorder: RecorderHandle) {
        self.recorder = recorder;
    }
}

/// Uniformly random user choice — §5.3's RANDOM baseline ("round robin with
/// replacement").
#[derive(Debug, Clone, Default)]
pub struct RandomPicker {
    recorder: RecorderHandle,
}

impl UserPicker for RandomPicker {
    fn name(&self) -> &'static str {
        "random"
    }

    fn pick(&mut self, tenants: &[Tenant], step: usize, rng: &mut dyn rand::RngCore) -> usize {
        use rand::Rng;
        let active = active_indices(tenants);
        let user = active[rng.gen_range(0..active.len())];
        self.recorder.emit(|| Event::SchedulerDecision {
            round: step as u64,
            user,
            rule: self.name().to_string(),
            scores: Vec::new(),
            parent: easeml_obs::current_span(),
        });
        user
    }

    fn set_recorder(&mut self, recorder: RecorderHandle) {
        self.recorder = recorder;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easeml_bandit::{BetaSchedule, GpUcb};
    use easeml_gp::ArmPrior;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tenants(n: usize, k: usize) -> Vec<Tenant> {
        (0..n)
            .map(|i| {
                let beta = BetaSchedule::Simple {
                    num_arms: k,
                    delta: 0.1,
                };
                Tenant::new(
                    i,
                    GpUcb::cost_oblivious(ArmPrior::independent(k, 1.0), 0.01, beta),
                )
            })
            .collect()
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(5)
    }

    #[test]
    fn round_robin_cycles() {
        let ts = tenants(3, 2);
        let mut p = RoundRobin::default();
        let mut r = rng();
        let picks: Vec<usize> = (0..7).map(|s| p.pick(&ts, s, &mut r)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2, 0]);
        assert_eq!(p.name(), "round-robin");
        assert!(!p.needs_warmup());
    }

    #[test]
    fn fcfs_sticks_with_the_first_unfinished_user() {
        let mut ts = tenants(2, 2);
        let mut p = Fcfs::default();
        let mut r = rng();
        assert_eq!(p.pick(&ts, 0, &mut r), 0);
        ts[0].observe(0, 0.5);
        // User 0 still has an untried arm.
        assert_eq!(p.pick(&ts, 1, &mut r), 0);
        ts[0].observe(1, 0.6);
        // User 0 exhausted: move to user 1.
        assert_eq!(p.pick(&ts, 2, &mut r), 1);
        ts[1].observe(0, 0.5);
        ts[1].observe(1, 0.5);
        // Everyone exhausted: fall back to round robin.
        assert_eq!(p.pick(&ts, 4, &mut r), 0);
        assert_eq!(p.pick(&ts, 5, &mut r), 1);
    }

    #[test]
    fn pickers_emit_one_decision_per_pick() {
        use easeml_obs::InMemoryRecorder;
        use std::sync::Arc;
        let ts = tenants(3, 2);
        let rec = Arc::new(InMemoryRecorder::new());
        let mut p = RoundRobin::default();
        p.set_recorder(RecorderHandle::new(rec.clone()));
        let mut r = rng();
        for s in 0..4 {
            let user = p.pick(&ts, s, &mut r);
            match &rec.events()[s] {
                Event::SchedulerDecision {
                    round,
                    user: u,
                    rule,
                    scores,
                    ..
                } => {
                    assert_eq!(*round, s as u64);
                    assert_eq!(*u, user);
                    assert_eq!(rule, "round-robin");
                    assert!(scores.is_empty());
                }
                other => panic!("expected a SchedulerDecision, got {other:?}"),
            }
        }
    }

    #[test]
    fn retired_tenants_are_invisible_to_every_picker() {
        let mut ts = tenants(4, 2);
        ts[1].set_active(false);
        let mut r = rng();
        let mut rr = RoundRobin::default();
        let picks: Vec<usize> = (0..6).map(|s| rr.pick(&ts, s, &mut r)).collect();
        assert_eq!(picks, vec![0, 2, 3, 0, 2, 3], "rr cycles the live set");
        let mut fcfs = Fcfs::default();
        for t in ts.iter_mut() {
            t.observe(0, 0.5);
            t.observe(1, 0.5);
        }
        for s in 0..8 {
            assert_ne!(fcfs.pick(&ts, s, &mut r), 1, "fcfs skips the retiree");
        }
        let mut random = RandomPicker::default();
        for s in 0..100 {
            assert_ne!(random.pick(&ts, s, &mut r), 1, "random skips the retiree");
        }
    }

    #[test]
    fn all_active_behavior_is_unchanged() {
        // With no retirements the active set is `0..n`, so the open-loop
        // filtering must be invisible: both the picks and the RNG
        // consumption match a straight `gen_range(0..n)` stream.
        let ts = tenants(4, 2);
        let mut p = RandomPicker::default();
        let mut r = rng();
        let picks: Vec<usize> = (0..50).map(|s| p.pick(&ts, s, &mut r)).collect();
        let mut reference = rng();
        let expected: Vec<usize> = (0..50)
            .map(|_| rand::Rng::gen_range(&mut reference, 0..4))
            .collect();
        assert_eq!(picks, expected);
    }

    #[test]
    fn random_covers_all_users() {
        let ts = tenants(4, 2);
        let mut p = RandomPicker::default();
        let mut r = rng();
        let mut seen = [false; 4];
        for s in 0..200 {
            seen[p.pick(&ts, s, &mut r)] = true;
        }
        assert!(seen.iter().all(|&x| x));
    }
}
