//! Multi-tenant regret accounting (§4.1's definitions).

use easeml_linalg::vec_ops;

/// Tracks the cumulative, multi-tenant, cost-aware regret
///
/// ```text
/// R_T = Σ_t C_t ( Σ_i r^i_{t_i} )
/// ```
///
/// where `C_t` is the cost of the model trained at round t and
/// `r^i_{t_i} = μ*_i − E(X^i_t)` is tenant i's regret for continuing to use
/// the model chosen the last time she was served. Tenants that have never
/// been served have no model at all and incur `μ*_i` (as in the §4.1 FCFS
/// example). The "ease.ml regret" `R'_T` replaces the last-served reward by
/// the best reward so far; the paper notes `R'_T ≤ R_T`.
///
/// # Examples
///
/// ```
/// use easeml_sched::MultiTenantRegret;
///
/// // Two tenants whose best achievable accuracies are 0.9 and 0.8.
/// let mut regret = MultiTenantRegret::new(vec![0.9, 0.8]);
/// // Round 1: tenant 0 trains a model of quality 0.7 at cost 2.0.
/// // Tenant 1 has no model yet, so it contributes its full 0.8.
/// let contribution = regret.record_round(0, 0.7, 2.0);
/// assert!((contribution - 2.0 * ((0.9 - 0.7) + 0.8)).abs() < 1e-12);
/// assert!(regret.easeml_cumulative() <= regret.cumulative());
/// ```
#[derive(Debug, Clone)]
pub struct MultiTenantRegret {
    mu_stars: Vec<f64>,
    /// Quality of the model each tenant currently runs (last serve).
    last_quality: Vec<Option<f64>>,
    /// Best quality each tenant has seen.
    best_quality: Vec<Option<f64>>,
    cumulative: f64,
    easeml_cumulative: f64,
    total_cost: f64,
    rounds: usize,
}

impl MultiTenantRegret {
    /// Creates the tracker from each tenant's best possible quality μ*.
    ///
    /// # Panics
    ///
    /// Panics if `mu_stars` is empty.
    pub fn new(mu_stars: Vec<f64>) -> Self {
        assert!(!mu_stars.is_empty(), "need at least one tenant");
        let n = mu_stars.len();
        MultiTenantRegret {
            mu_stars,
            last_quality: vec![None; n],
            best_quality: vec![None; n],
            cumulative: 0.0,
            easeml_cumulative: 0.0,
            total_cost: 0.0,
            rounds: 0,
        }
    }

    /// Number of tenants n.
    #[inline]
    pub fn num_tenants(&self) -> usize {
        self.mu_stars.len()
    }

    /// Records one global round: tenant `served` trained a model of true
    /// quality `quality` at cost `cost`; everyone else keeps their previous
    /// model. Returns the round's contribution to `R_T`.
    ///
    /// # Panics
    ///
    /// Panics if `served` is out of range or `cost <= 0`.
    pub fn record_round(&mut self, served: usize, quality: f64, cost: f64) -> f64 {
        assert!(served < self.num_tenants(), "tenant index out of range");
        assert!(cost > 0.0, "round cost must be positive");
        self.last_quality[served] = Some(quality);
        if self.best_quality[served].is_none_or(|b| quality > b) {
            self.best_quality[served] = Some(quality);
        }
        let sum_regret: f64 = (0..self.num_tenants())
            .map(|i| self.mu_stars[i] - self.last_quality[i].unwrap_or(0.0))
            .sum();
        let sum_easeml: f64 = (0..self.num_tenants())
            .map(|i| self.mu_stars[i] - self.best_quality[i].unwrap_or(0.0))
            .sum();
        let contribution = cost * sum_regret;
        self.cumulative += contribution;
        self.easeml_cumulative += cost * sum_easeml;
        self.total_cost += cost;
        self.rounds += 1;
        contribution
    }

    /// Cumulative multi-tenant regret `R_T`.
    #[inline]
    pub fn cumulative(&self) -> f64 {
        self.cumulative
    }

    /// The ease.ml regret `R'_T` (best-so-far variant); always ≤ `R_T`.
    #[inline]
    pub fn easeml_cumulative(&self) -> f64 {
        self.easeml_cumulative
    }

    /// Total cost spent over all rounds.
    #[inline]
    pub fn total_cost(&self) -> f64 {
        self.total_cost
    }

    /// Number of rounds recorded.
    #[inline]
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Average regret per round `R_T / T` — the quantity Theorems 2–3 drive
    /// to zero. Zero before the first round.
    pub fn average(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.cumulative / self.rounds as f64
        }
    }

    /// Per-tenant accuracy loss `l_{i,T} = μ*_i − best quality so far`
    /// (Appendix A, eq. 2); `μ*_i` for never-served tenants.
    pub fn accuracy_losses(&self) -> Vec<f64> {
        (0..self.num_tenants())
            .map(|i| (self.mu_stars[i] - self.best_quality[i].unwrap_or(0.0)).max(0.0))
            .collect()
    }

    /// Mean accuracy loss over tenants (Appendix A, eq. 3).
    pub fn mean_accuracy_loss(&self) -> f64 {
        vec_ops::mean(&self.accuracy_losses())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_the_papers_fcfs_example() {
        // §4.1: two users, best quality 100 each (scaled to [0,1] here as
        // 1.0 and rewards 0.9, 0.95, 0.7). Serve U1 twice vs. U1 then U2.
        let scale = 0.01; // paper uses percentages; scale to [0,1]

        // FCFS: serve U1 (M1: 90), then U1 (M2: 95).
        let mut fcfs = MultiTenantRegret::new(vec![1.0, 1.0]);
        fcfs.record_round(0, 90.0 * scale, 1.0);
        fcfs.record_round(0, 95.0 * scale, 1.0);
        // Round 1: U1 regret 0.10, U2 regret 1.0. Round 2: 0.05 + 1.0.
        let expected_fcfs = (0.10 + 1.0) + (0.05 + 1.0);
        assert!((fcfs.cumulative() - expected_fcfs).abs() < 1e-9);
        // Paper reports 215 in percentage points.
        assert!((fcfs.cumulative() / scale - 215.0).abs() < 1e-6);

        // Balanced: serve U1 (M1: 90), then U2 (M1: 70).
        let mut bal = MultiTenantRegret::new(vec![1.0, 1.0]);
        bal.record_round(0, 90.0 * scale, 1.0);
        bal.record_round(1, 70.0 * scale, 1.0);
        assert!((bal.cumulative() / scale - 150.0).abs() < 1e-6);
        assert!(bal.cumulative() < fcfs.cumulative());
    }

    #[test]
    fn easeml_regret_is_never_larger() {
        let mut r = MultiTenantRegret::new(vec![1.0, 0.9]);
        r.record_round(0, 0.5, 2.0);
        r.record_round(0, 0.3, 1.0); // worse than before: R uses last, R' best
        r.record_round(1, 0.9, 0.5);
        assert!(r.easeml_cumulative() <= r.cumulative() + 1e-12);
        assert_eq!(r.rounds(), 3);
        assert!((r.total_cost() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn unserved_tenants_incur_full_regret() {
        let mut r = MultiTenantRegret::new(vec![0.8, 0.6]);
        let c = r.record_round(0, 0.8, 1.0);
        // Tenant 0 reached its optimum; tenant 1 has no model: regret 0.6.
        assert!((c - 0.6).abs() < 1e-12);
        assert_eq!(r.accuracy_losses(), vec![0.0, 0.6]);
        assert!((r.mean_accuracy_loss() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn average_regret_decreases_once_everyone_is_served_well() {
        let mut r = MultiTenantRegret::new(vec![1.0, 1.0]);
        r.record_round(0, 1.0, 1.0);
        r.record_round(1, 1.0, 1.0);
        let avg2 = r.average();
        for _ in 0..8 {
            r.record_round(0, 1.0, 1.0);
            r.record_round(1, 1.0, 1.0);
        }
        assert!(r.average() < avg2);
    }

    #[test]
    fn cost_weights_each_round() {
        let mut r = MultiTenantRegret::new(vec![1.0]);
        let c = r.record_round(0, 0.5, 4.0);
        assert!((c - 2.0).abs() < 1e-12); // 4.0 × 0.5 regret
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_cost_panics() {
        let mut r = MultiTenantRegret::new(vec![1.0]);
        r.record_round(0, 0.5, 0.0);
    }
}
