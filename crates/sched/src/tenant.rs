//! Per-user state: the tenant's bandit plus the Algorithm-2 bookkeeping.

use easeml_bandit::GpUcb;

/// One user in the multi-tenant system.
///
/// Wraps the user's GP-UCB model-picking policy and maintains the empirical
/// confidence bound recurrence of Algorithm 2 line 6:
///
/// ```text
/// σ̃_t = min{ B_t(a_t), min_{t' < t} (y_{t'} + σ̃_{t'}) } − y_t
/// ```
///
/// Since `y_{t'} + σ̃_{t'}` is exactly the empirical bound at round t', the
/// recurrence reduces to a running minimum of the per-round upper confidence
/// bounds; σ̃ is the gap between that bound and the *latest* observed
/// reward. The greedy scheduler treats σ̃ as the tenant's remaining
/// "potential for quality improvement".
#[derive(Debug, Clone)]
pub struct Tenant {
    id: usize,
    policy: GpUcb,
    /// Running minimum of the empirical confidence bounds (the
    /// `min (y + σ̃)` term); `None` until the first observation.
    empirical_bound: Option<f64>,
    /// Latest σ̃; `None` until the first observation.
    sigma_tilde: Option<f64>,
    /// Best reward observed so far.
    best_reward: Option<f64>,
    /// Reward observed at the most recent serve.
    last_reward: Option<f64>,
    /// Arm played at the most recent serve.
    last_arm: Option<usize>,
    /// Distinct arms played (completion detector for FCFS).
    arms_played: Vec<bool>,
    /// Whether the tenant is live. A retired tenant keeps its slot (so
    /// tenant ids stay stable for checkpoints and traces) but is invisible
    /// to every picker's candidate set.
    active: bool,
}

impl Tenant {
    /// Wraps a per-user policy.
    pub fn new(id: usize, policy: GpUcb) -> Self {
        let k = policy.posterior().num_arms();
        Tenant {
            id,
            policy,
            empirical_bound: None,
            sigma_tilde: None,
            best_reward: None,
            last_reward: None,
            last_arm: None,
            arms_played: vec![false; k],
            active: true,
        }
    }

    /// Whether the tenant is live (the default) or retired.
    #[inline]
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Marks the tenant live or retired. Retirement only hides the tenant
    /// from pickers; its GP state stays intact so a checkpoint restore (or
    /// a re-join under the same id) resumes bit-exactly.
    #[inline]
    pub fn set_active(&mut self, active: bool) {
        self.active = active;
    }

    /// The tenant's identifier (index into the scheduler's tenant list).
    #[inline]
    pub fn id(&self) -> usize {
        self.id
    }

    /// The tenant's model-picking policy.
    #[inline]
    pub fn policy(&self) -> &GpUcb {
        &self.policy
    }

    /// Mutable access to the policy — for configuration such as
    /// [`GpUcb::set_recorder`], not for feeding observations (use
    /// [`Tenant::observe`], which also maintains the σ̃ recurrence).
    #[inline]
    pub fn policy_mut(&mut self) -> &mut GpUcb {
        &mut self.policy
    }

    /// Number of times this tenant has been served.
    #[inline]
    pub fn serves(&self) -> usize {
        self.policy.steps()
    }

    /// Selects the model this tenant would train next (Algorithm 2
    /// lines 9–10, delegated to the single-tenant GP-UCB criterion).
    pub fn select_model(&self) -> usize {
        self.policy.select_arm()
    }

    /// Records the outcome of a serve: the tenant played `arm` and observed
    /// `reward`. Updates the GP posterior and the σ̃ recurrence.
    pub fn observe(&mut self, arm: usize, reward: f64) {
        self.policy.observe(arm, reward);
        self.arms_played[arm] = true;
        self.last_arm = Some(arm);
        self.last_reward = Some(reward);
        if self.best_reward.is_none_or(|b| reward > b) {
            self.best_reward = Some(reward);
        }
        // Updated upper confidence bound of the played arm (B_t(a_t) with
        // the refreshed posterior and the next β).
        let b = self.policy.ucb(arm);
        let bound = match self.empirical_bound {
            Some(prev) => prev.min(b),
            None => b,
        };
        self.empirical_bound = Some(bound);
        self.sigma_tilde = Some(bound - reward);
    }

    /// The latest empirical variance estimate σ̃ (the tenant's estimated
    /// potential for improvement). Falls back to the maximum prior
    /// exploration width before the first observation, so fresh tenants look
    /// maximally promising.
    pub fn sigma_tilde(&self) -> f64 {
        self.sigma_tilde.unwrap_or_else(|| {
            (0..self.policy.posterior().num_arms())
                .map(|k| self.policy.exploration_width(k))
                .fold(0.0, f64::max)
        })
    }

    /// Running-minimum empirical confidence bound `y + σ̃`, if any
    /// observation has been made.
    #[inline]
    pub fn empirical_bound(&self) -> Option<f64> {
        self.empirical_bound
    }

    /// Best reward observed so far (the accuracy of the model ease.ml
    /// currently serves this user).
    #[inline]
    pub fn best_reward(&self) -> Option<f64> {
        self.best_reward
    }

    /// Reward observed at the most recent serve.
    #[inline]
    pub fn last_reward(&self) -> Option<f64> {
        self.last_reward
    }

    /// Arm played at the most recent serve.
    #[inline]
    pub fn last_arm(&self) -> Option<usize> {
        self.last_arm
    }

    /// Whether every candidate model has been trained at least once.
    pub fn exhausted(&self) -> bool {
        self.arms_played.iter().all(|&p| p)
    }

    /// The gap between the largest upper confidence bound over all models
    /// and the best accuracy so far — ease.ml's production rule for
    /// choosing among greedy candidates ("the maximum gap between the
    /// largest upper confidence bound and the best accuracy so far", §4.3).
    pub fn ucb_gap(&self) -> f64 {
        let max_ucb = self
            .policy
            .ucbs()
            .into_iter()
            .fold(f64::NEG_INFINITY, f64::max);
        max_ucb - self.best_reward.unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easeml_bandit::BetaSchedule;
    use easeml_gp::ArmPrior;

    fn tenant(id: usize, k: usize) -> Tenant {
        let beta = BetaSchedule::Simple {
            num_arms: k,
            delta: 0.1,
        };
        Tenant::new(
            id,
            GpUcb::cost_oblivious(ArmPrior::independent(k, 1.0), 0.01, beta),
        )
    }

    #[test]
    fn activity_toggles_without_touching_bandit_state() {
        let mut t = tenant(0, 2);
        assert!(t.is_active(), "tenants start live");
        t.observe(1, 0.6);
        t.set_active(false);
        assert!(!t.is_active());
        assert_eq!(t.best_reward(), Some(0.6), "retirement keeps GP state");
        t.set_active(true);
        assert!(t.is_active());
        assert_eq!(t.last_arm(), Some(1));
    }

    #[test]
    fn fresh_tenant_state() {
        let t = tenant(3, 2);
        assert_eq!(t.id(), 3);
        assert_eq!(t.serves(), 0);
        assert_eq!(t.best_reward(), None);
        assert_eq!(t.last_arm(), None);
        assert!(!t.exhausted());
        assert_eq!(t.empirical_bound(), None);
        // Fallback σ̃ equals the max prior exploration width (> 0).
        assert!(t.sigma_tilde() > 0.0);
    }

    #[test]
    fn observe_updates_everything() {
        let mut t = tenant(0, 2);
        t.observe(1, 0.6);
        assert_eq!(t.serves(), 1);
        assert_eq!(t.best_reward(), Some(0.6));
        assert_eq!(t.last_arm(), Some(1));
        assert_eq!(t.last_reward(), Some(0.6));
        assert!(!t.exhausted());
        t.observe(0, 0.4);
        assert_eq!(t.best_reward(), Some(0.6)); // best retained
        assert_eq!(t.last_reward(), Some(0.4)); // last replaced
        assert!(t.exhausted());
    }

    #[test]
    fn empirical_bound_is_a_running_minimum() {
        let mut t = tenant(0, 2);
        t.observe(0, 0.5);
        let b1 = t.empirical_bound().unwrap();
        // Repeated consistent observations tighten the posterior, so the
        // UCB — and hence the running-min bound — cannot increase.
        for _ in 0..5 {
            t.observe(0, 0.5);
            let b = t.empirical_bound().unwrap();
            assert!(b <= b1 + 1e-12);
        }
    }

    #[test]
    fn sigma_tilde_shrinks_as_the_posterior_tightens() {
        let mut t = tenant(0, 1);
        t.observe(0, 0.5);
        let s1 = t.sigma_tilde();
        for _ in 0..20 {
            t.observe(0, 0.5);
        }
        let s2 = t.sigma_tilde();
        assert!(
            s2 < s1,
            "σ̃ should shrink with confidence: {s1:.4} -> {s2:.4}"
        );
    }

    #[test]
    fn ucb_gap_reflects_remaining_potential() {
        let mut explored = tenant(0, 2);
        for _ in 0..10 {
            explored.observe(0, 0.9);
            explored.observe(1, 0.1);
        }
        let mut fresh = tenant(1, 2);
        fresh.observe(0, 0.1);
        // The fresh tenant has one unexplored arm with full prior
        // uncertainty and a low best, so its gap dominates.
        assert!(fresh.ucb_gap() > explored.ucb_gap());
    }

    #[test]
    fn select_model_delegates_to_gp_ucb() {
        let mut t = tenant(0, 3);
        // Strong observation on arm 2 with tiny prior variance elsewhere is
        // not constructible with an independent unit prior, so just check
        // the selection is a valid arm and changes state sensibly.
        let a = t.select_model();
        assert!(a < 3);
        t.observe(a, 0.7);
        assert_eq!(t.serves(), 1);
    }
}
