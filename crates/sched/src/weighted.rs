//! Weighted fair sharing — a deficit-style picker from the multi-tenant
//! resource-management literature the paper's §6 cites (per-tenant
//! performance isolation à la Pisces/Retro), offered as an alternative
//! fairness baseline between ROUNDROBIN's absolute fairness and GREEDY's
//! pure efficiency.
//!
//! Each tenant accrues *credit* at a rate proportional to its weight; the
//! picker serves the tenant with the most accumulated credit and charges
//! one unit per serve. Equal weights reduce to round-robin-like behaviour;
//! a weight-2 tenant is served twice as often in the long run.

use crate::picker::UserPicker;
use crate::tenant::Tenant;
use easeml_linalg::vec_ops;
use easeml_obs::{Event, RecorderHandle};

/// Deficit-based weighted fair user picking.
///
/// # Examples
///
/// ```
/// use easeml_bandit::{BetaSchedule, GpUcb};
/// use easeml_gp::ArmPrior;
/// use easeml_sched::{Tenant, UserPicker, WeightedFair};
/// use rand::SeedableRng;
///
/// let beta = BetaSchedule::Simple { num_arms: 2, delta: 0.1 };
/// let tenants: Vec<Tenant> = (0..2)
///     .map(|i| Tenant::new(i, GpUcb::cost_oblivious(
///         ArmPrior::independent(2, 1.0), 1e-3, beta)))
///     .collect();
/// // Tenant 0 paid for a double share.
/// let mut fair = WeightedFair::new(vec![2.0, 1.0]);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let picks: Vec<usize> = (0..6).map(|s| fair.pick(&tenants, s, &mut rng)).collect();
/// assert_eq!(picks.iter().filter(|&&u| u == 0).count(), 4); // 2/3 of serves
/// ```
#[derive(Debug, Clone)]
pub struct WeightedFair {
    weights: Vec<f64>,
    credit: Vec<f64>,
    recorder: RecorderHandle,
}

impl WeightedFair {
    /// Creates the picker with one positive weight per tenant.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or contains a non-positive weight.
    pub fn new(weights: Vec<f64>) -> Self {
        assert!(!weights.is_empty(), "need at least one tenant");
        assert!(
            weights.iter().all(|&w| w > 0.0 && w.is_finite()),
            "weights must be positive and finite"
        );
        let n = weights.len();
        WeightedFair {
            weights,
            credit: vec![0.0; n],
            recorder: RecorderHandle::noop(),
        }
    }

    /// Equal weights for `n` tenants (round-robin-like).
    pub fn uniform(n: usize) -> Self {
        Self::new(vec![1.0; n])
    }

    /// The tenants' current credit balances.
    pub fn credit(&self) -> &[f64] {
        &self.credit
    }
}

impl UserPicker for WeightedFair {
    fn name(&self) -> &'static str {
        "weighted-fair"
    }

    fn pick(&mut self, tenants: &[Tenant], step: usize, _rng: &mut dyn rand::RngCore) -> usize {
        assert_eq!(
            tenants.len(),
            self.weights.len(),
            "tenant count must match the configured weights"
        );
        // Accrue credit proportional to weight (normalized so one serve's
        // worth of credit is distributed per round). Retired tenants stop
        // accruing, their share flows to the live tenants, and their frozen
        // balance can never win the argmax below.
        let active = crate::picker::active_indices(tenants);
        let total: f64 = active.iter().map(|&i| self.weights[i]).sum();
        for &i in &active {
            self.credit[i] += self.weights[i] / total;
        }
        let balances: Vec<f64> = active.iter().map(|&i| self.credit[i]).collect();
        let choice = active[vec_ops::argmax(&balances).expect("at least one tenant")];
        self.recorder.emit(|| Event::SchedulerDecision {
            round: step as u64,
            user: choice,
            rule: self.name().to_string(),
            scores: self.credit.clone(),
            parent: easeml_obs::current_span(),
        });
        self.credit[choice] -= 1.0;
        choice
    }

    fn set_recorder(&mut self, recorder: RecorderHandle) {
        self.recorder = recorder;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easeml_bandit::{BetaSchedule, GpUcb};
    use easeml_gp::ArmPrior;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tenants(n: usize) -> Vec<Tenant> {
        (0..n)
            .map(|i| {
                let beta = BetaSchedule::Simple {
                    num_arms: 2,
                    delta: 0.1,
                };
                Tenant::new(
                    i,
                    GpUcb::cost_oblivious(ArmPrior::independent(2, 1.0), 0.01, beta),
                )
            })
            .collect()
    }

    fn serve_counts(weights: Vec<f64>, rounds: usize) -> Vec<usize> {
        let ts = tenants(weights.len());
        let mut p = WeightedFair::new(weights);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0usize; ts.len()];
        for s in 0..rounds {
            counts[p.pick(&ts, s, &mut rng)] += 1;
        }
        counts
    }

    #[test]
    fn uniform_weights_are_fair() {
        let counts = serve_counts(vec![1.0; 4], 400);
        for &c in &counts {
            assert!((95..=105).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn double_weight_doubles_the_share() {
        let counts = serve_counts(vec![2.0, 1.0, 1.0], 400);
        let share0 = counts[0] as f64 / 400.0;
        assert!((share0 - 0.5).abs() < 0.03, "{counts:?}");
        assert!((counts[1] as f64 - counts[2] as f64).abs() <= 10.0);
    }

    #[test]
    fn extreme_weights_still_serve_everyone() {
        let counts = serve_counts(vec![10.0, 0.1], 220);
        assert!(counts[1] > 0, "starved the light tenant: {counts:?}");
        assert!(counts[0] > counts[1] * 10);
    }

    #[test]
    fn credit_is_conserved() {
        let ts = tenants(3);
        let mut p = WeightedFair::uniform(3);
        let mut rng = StdRng::seed_from_u64(2);
        for s in 0..30 {
            p.pick(&ts, s, &mut rng);
            let total: f64 = p.credit().iter().sum();
            assert!(total.abs() < 1e-9, "credit drifted: {total}");
        }
    }

    #[test]
    fn retired_tenants_stop_accruing_and_never_win() {
        let mut ts = tenants(3);
        ts[0].set_active(false);
        let mut p = WeightedFair::new(vec![10.0, 1.0, 1.0]);
        let mut rng = StdRng::seed_from_u64(4);
        for s in 0..40 {
            assert_ne!(p.pick(&ts, s, &mut rng), 0, "retiree must not be served");
        }
        assert_eq!(p.credit()[0], 0.0, "retiree accrues nothing");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_weight_panics() {
        let _ = WeightedFair::new(vec![1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "match")]
    fn mismatched_tenant_count_panics() {
        let ts = tenants(2);
        let mut p = WeightedFair::uniform(3);
        let mut rng = StdRng::seed_from_u64(3);
        let _ = p.pick(&ts, 0, &mut rng);
    }
}
