//! Property-based tests for the multi-tenant scheduling layer.

use easeml_bandit::{BetaSchedule, GpUcb};
use easeml_gp::ArmPrior;
use easeml_sched::{
    Fcfs, Greedy, Hybrid, MultiTenantRegret, PickRule, RandomPicker, RoundRobin, Tenant, UserPicker,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tenant(id: usize, k: usize) -> Tenant {
    let beta = BetaSchedule::Simple {
        num_arms: k,
        delta: 0.1,
    };
    Tenant::new(
        id,
        GpUcb::cost_oblivious(ArmPrior::independent(k, 1.0), 0.01, beta),
    )
}

/// A set of tenants with arbitrary observation histories applied.
fn tenants_with_history(n: usize, k: usize) -> impl Strategy<Value = Vec<Tenant>> {
    prop::collection::vec((0..n, 0..k, 0.0f64..1.0), 0..24).prop_map(move |history| {
        let mut ts: Vec<Tenant> = (0..n).map(|i| tenant(i, k)).collect();
        for (user, arm, reward) in history {
            ts[user].observe(arm, reward);
        }
        ts
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_picker_returns_a_valid_index(
        (ts, seed, step) in tenants_with_history(4, 3)
            .prop_flat_map(|ts| (Just(ts), 0u64..1000, 0usize..100))
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pickers: Vec<Box<dyn UserPicker>> = vec![
            Box::new(Fcfs::default()),
            Box::new(RoundRobin::default()),
            Box::new(RandomPicker::default()),
            Box::new(Greedy::new(PickRule::MaxUcbGap)),
            Box::new(Greedy::new(PickRule::MaxSigmaTilde)),
            Box::new(Greedy::new(PickRule::Random)),
            Box::new(Hybrid::ease_ml()),
        ];
        for p in &mut pickers {
            let u = p.pick(&ts, step, &mut rng);
            prop_assert!(u < ts.len(), "{} returned {u}", p.name());
        }
    }

    #[test]
    fn candidate_set_is_never_empty_and_contains_the_max(
        ts in tenants_with_history(5, 3)
    ) {
        let v = Greedy::candidate_set(&ts);
        prop_assert!(!v.is_empty());
        // A tenant with the maximal σ̃ is always a candidate (any index
        // achieving the maximum qualifies — ties are broken arbitrarily).
        let sigmas: Vec<f64> = ts.iter().map(Tenant::sigma_tilde).collect();
        let max_sigma = sigmas.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v.iter().any(|&i| sigmas[i] >= max_sigma - 1e-12));
        // All candidates are at or above the mean (up to rounding).
        let mean = sigmas.iter().sum::<f64>() / sigmas.len() as f64;
        for &i in &v {
            prop_assert!(sigmas[i] >= mean - 1e-9 * mean.abs().max(1.0));
        }
    }

    #[test]
    fn round_robin_is_perfectly_fair(
        (n, rounds) in (2usize..6).prop_flat_map(|n| (Just(n), (n * 2)..(n * 10)))
    ) {
        let ts: Vec<Tenant> = (0..n).map(|i| tenant(i, 2)).collect();
        let mut p = RoundRobin::default();
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0usize; n];
        for s in 0..rounds {
            counts[p.pick(&ts, s, &mut rng)] += 1;
        }
        let max = counts.iter().max().unwrap();
        let min = counts.iter().min().unwrap();
        prop_assert!(max - min <= 1, "counts {counts:?}");
    }

    #[test]
    fn tenant_best_reward_is_the_running_maximum(
        history in prop::collection::vec((0usize..3, 0.0f64..1.0), 1..20)
    ) {
        let mut t = tenant(0, 3);
        let mut max = f64::NEG_INFINITY;
        for &(arm, reward) in &history {
            t.observe(arm, reward);
            max = max.max(reward);
            prop_assert_eq!(t.best_reward(), Some(max));
            prop_assert_eq!(t.last_reward(), Some(reward));
        }
        prop_assert_eq!(t.serves(), history.len());
    }

    #[test]
    fn empirical_bound_is_monotone_nonincreasing(
        history in prop::collection::vec((0usize..2, 0.0f64..1.0), 2..20)
    ) {
        let mut t = tenant(0, 2);
        let mut prev: Option<f64> = None;
        for &(arm, reward) in &history {
            t.observe(arm, reward);
            let b = t.empirical_bound().unwrap();
            if let Some(p) = prev {
                prop_assert!(b <= p + 1e-12, "bound increased: {p} -> {b}");
            }
            prev = Some(b);
        }
    }

    #[test]
    fn multi_tenant_regret_is_nonnegative_and_dominates_easeml_variant(
        rounds in prop::collection::vec((0usize..4, 0.0f64..1.0, 0.01f64..3.0), 1..30)
    ) {
        let mut reg = MultiTenantRegret::new(vec![1.0; 4]);
        for &(user, quality, cost) in &rounds {
            let contribution = reg.record_round(user, quality, cost);
            prop_assert!(contribution >= -1e-12);
            prop_assert!(reg.easeml_cumulative() <= reg.cumulative() + 1e-9);
        }
        prop_assert_eq!(reg.rounds(), rounds.len());
        // Mean accuracy loss is within [0, 1] for qualities in [0, 1].
        let mean = reg.mean_accuracy_loss();
        prop_assert!((0.0..=1.0 + 1e-12).contains(&mean));
    }

    #[test]
    fn hybrid_switch_is_permanent(
        history in prop::collection::vec((0usize..2, 0.4f64..0.6), 30..60)
    ) {
        // Feed a long no-improvement phase; once switched, it stays.
        let mut ts: Vec<Tenant> = (0..2).map(|i| tenant(i, 1)).collect();
        ts[0].observe(0, 0.9);
        ts[1].observe(0, 0.9);
        let mut h = Hybrid::new(PickRule::MaxUcbGap, 3);
        let mut rng = StdRng::seed_from_u64(2);
        let mut switched_at: Option<usize> = None;
        for (s, &(user, reward)) in history.iter().enumerate() {
            let _ = h.pick(&ts, s, &mut rng);
            ts[user].observe(0, reward); // never beats 0.9
            h.after_observe(&ts, user);
            if h.has_switched() && switched_at.is_none() {
                switched_at = Some(s);
            }
            if let Some(_at) = switched_at {
                prop_assert!(h.has_switched(), "switch must be permanent");
            }
        }
        prop_assert!(switched_at.is_some(), "long freeze must trigger the switch");
    }
}
