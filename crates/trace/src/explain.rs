//! `easeml-trace explain` — the why-chain of any recorded decision.
//!
//! The capture side (schema v5) emits a bounded witness per round:
//! `UserScored*`, `ArmScored*`, then a `DecisionWitness` commit marker.
//! This module folds those chains back out of a loaded trace and renders
//! either one round's full why-chain (`--round N`) or an aggregate
//! decision-health report — margin distributions, tie and fallback rates
//! per decision path — over every committed round.

use easeml_obs::{witness_records, Event, QuantileSketch, WitnessRecord};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Margins closer to zero than this count as ties: the decision hinged on
/// the deterministic tie-break, not the scores.
pub const TIE_EPSILON: f64 = 1e-12;

/// Per-decision-path tallies of the health report.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PathHealth {
    /// Committed rounds that took this path.
    pub rounds: u64,
    /// Of those, censored rounds.
    pub censored: u64,
    /// Rounds whose arm margin was a tie (|margin| < [`TIE_EPSILON`]).
    pub ties: u64,
}

/// The aggregate decision-health report behind `easeml-trace explain`
/// without `--round`: how decisively, and through which paths, a run's
/// decisions were made.
#[derive(Debug, Clone, Default)]
pub struct DecisionHealth {
    /// Committed witness rounds.
    pub rounds: u64,
    /// Censored rounds.
    pub censored: u64,
    /// Rounds with a tied arm margin.
    pub ties: u64,
    /// Distribution of finite user margins (how decisively the picker won).
    pub user_margins: QuantileSketch,
    /// Distribution of finite arm margins (how decisively the arm won).
    pub arm_margins: QuantileSketch,
    /// Per-path tallies, in deterministic order.
    pub per_path: BTreeMap<String, PathHealth>,
    /// Fallback / fault kinds and their counts.
    pub fallbacks: BTreeMap<String, u64>,
    /// Digest after the last committed round, if any.
    pub last_digest: Option<String>,
}

/// Folds committed witness records into a [`DecisionHealth`].
pub fn decision_health(records: &[WitnessRecord]) -> DecisionHealth {
    let mut out = DecisionHealth::default();
    for r in records {
        out.rounds += 1;
        let path = out.per_path.entry(r.path.clone()).or_default();
        path.rounds += 1;
        if r.censored {
            out.censored += 1;
            path.censored += 1;
        }
        if r.arm_margin.is_finite() && r.arm_margin.abs() < TIE_EPSILON {
            out.ties += 1;
            path.ties += 1;
        }
        if r.user_margin.is_finite() {
            out.user_margins.insert(r.user_margin);
        }
        if r.arm_margin.is_finite() {
            out.arm_margins.insert(r.arm_margin);
        }
        if !r.fallback.is_empty() {
            *out.fallbacks.entry(r.fallback.clone()).or_insert(0) += 1;
        }
        out.last_digest = Some(r.digest.clone());
    }
    out
}

/// Renders the aggregate decision-health report as plain text.
pub fn render_decision_health(health: &DecisionHealth) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "=== easeml-trace explain: decision health ===");
    if health.rounds == 0 {
        let _ = writeln!(
            out,
            "no committed decision witnesses (schema v5+ traces carry them)"
        );
        return out;
    }
    let pct = |n: u64| 100.0 * n as f64 / health.rounds as f64;
    let _ = writeln!(
        out,
        "committed rounds: {}  censored: {} ({:.1}%)  arm-margin ties: {} ({:.1}%)",
        health.rounds,
        health.censored,
        pct(health.censored),
        health.ties,
        pct(health.ties),
    );
    if let Some(digest) = &health.last_digest {
        let _ = writeln!(out, "final state digest: {digest}");
    }
    let sketch_line = |name: &str, sketch: &QuantileSketch| {
        let mut line = format!("{name:<12}");
        if sketch.count() == 0 {
            line.push_str("  (no scored rounds)");
            return line;
        }
        for (q, label) in [(0.1, "p10"), (0.5, "p50"), (0.9, "p90")] {
            let _ = write!(line, "  {label} {:+.6}", sketch.quantile(q).unwrap_or(0.0));
        }
        let _ = write!(line, "  ({} round(s))", sketch.count());
        line
    };
    let _ = writeln!(out, "\n--- winning-margin distribution ---");
    let _ = writeln!(out, "{}", sketch_line("user margin", &health.user_margins));
    let _ = writeln!(out, "{}", sketch_line("arm margin", &health.arm_margins));

    let _ = writeln!(out, "\n--- per decision path ---");
    let _ = writeln!(
        out,
        "{:<28} {:>8} {:>10} {:>8}",
        "path", "rounds", "censored", "ties"
    );
    for (path, p) in &health.per_path {
        let label = if path.is_empty() { "(unlabeled)" } else { path };
        let _ = writeln!(
            out,
            "{label:<28} {:>8} {:>10} {:>8}",
            p.rounds, p.censored, p.ties
        );
    }

    let _ = writeln!(out, "\n--- fallbacks ---");
    if health.fallbacks.is_empty() {
        let _ = writeln!(out, "none");
    } else {
        for (kind, count) in &health.fallbacks {
            let _ = writeln!(
                out,
                "{kind}: {count} round(s) ({:.1}% of rounds)",
                pct(*count)
            );
        }
    }
    out
}

/// Renders one committed round's full why-chain: the decision taken, the
/// path that produced it, the scored users and arms it beat, and the state
/// digest after it.
///
/// # Errors
///
/// Returns a message when no committed witness for `round` exists in the
/// trace (never recorded, or its commit marker never landed).
pub fn render_explain_round(events: &[Event], round: u64) -> Result<String, String> {
    let records = witness_records(events);
    let record = records.iter().find(|r| r.round == round).ok_or_else(|| {
        format!(
            "no committed decision witness for round {round} \
             ({} committed round(s) in the trace)",
            records.len()
        )
    })?;
    Ok(render_witness(record))
}

/// Renders a single witness record as the `explain --round` why-chain —
/// also the per-side body of `replay-diff`'s divergence report.
pub fn render_witness(r: &WitnessRecord) -> String {
    let margin = |m: f64| {
        if m.is_finite() {
            format!("{m:+.6}")
        } else {
            "n/a".to_string()
        }
    };
    let mut out = String::new();
    let _ = writeln!(out, "round {}:", r.round);
    let _ = writeln!(
        out,
        "  decision: user {} -> arm {}{}",
        r.user,
        r.arm,
        if r.censored { "  [CENSORED]" } else { "" }
    );
    let _ = writeln!(
        out,
        "  path: {}  candidates: {}",
        if r.path.is_empty() {
            "(unlabeled)"
        } else {
            &r.path
        },
        r.candidates
    );
    if !r.fallback.is_empty() {
        let _ = writeln!(out, "  fallback: {}", r.fallback);
    }
    let _ = writeln!(
        out,
        "  margins: user {}  arm {}",
        margin(r.user_margin),
        margin(r.arm_margin)
    );
    if !r.top_users.is_empty() {
        let _ = writeln!(out, "  top users (picker scores):");
        for (rank, u) in r.top_users.iter().enumerate() {
            let _ = writeln!(
                out,
                "    #{rank} user {:<6} score {:+.6}{}{}",
                u.user,
                u.score,
                if u.candidate { "  in V_t" } else { "" },
                if u.user == r.user { "  <- served" } else { "" },
            );
        }
    }
    if !r.top_arms.is_empty() {
        let _ = writeln!(out, "  top arms (posterior at selection):");
        for (rank, a) in r.top_arms.iter().enumerate() {
            let _ = writeln!(
                out,
                "    #{rank} arm {:<6} mean {:+.6}  sigma {:.6}  ucb {:+.6}{}{}",
                a.arm,
                a.mean,
                a.sigma,
                a.ucb,
                if a.masked { "  [quarantined]" } else { "" },
                if a.arm == r.arm { "  <- chosen" } else { "" },
            );
        }
    }
    let _ = writeln!(out, "  state digest after round: {}", r.digest);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn committed_round(round: u64, path: &str, fallback: &str, arm_margin: f64) -> Vec<Event> {
        vec![
            Event::UserScored {
                round,
                user: 1,
                score: 0.9,
                rank: 0,
                candidate: true,
                parent: 0,
            },
            Event::UserScored {
                round,
                user: 0,
                score: 0.6,
                rank: 1,
                candidate: false,
                parent: 0,
            },
            Event::ArmScored {
                round,
                user: 1,
                arm: 3,
                mean: 0.5,
                sigma: 0.2,
                ucb: 0.9,
                rank: 0,
                masked: false,
                parent: 0,
            },
            Event::DecisionWitness {
                round,
                user: 1,
                arm: 3,
                user_margin: 0.3,
                arm_margin,
                path: path.to_string(),
                fallback: fallback.to_string(),
                censored: !fallback.is_empty(),
                candidates: 2,
                digest: format!("{round:016x}"),
                parent: 0,
            },
        ]
    }

    #[test]
    fn health_tallies_paths_ties_and_fallbacks() {
        let mut events = committed_round(0, "greedy(max-gap)", "", 0.2);
        events.extend(committed_round(1, "greedy(max-gap)", "crash", 0.0));
        events.extend(committed_round(2, "round-robin", "", f64::NAN));
        let health = decision_health(&witness_records(&events));
        assert_eq!(health.rounds, 3);
        assert_eq!(health.censored, 1);
        assert_eq!(health.ties, 1);
        assert_eq!(health.arm_margins.count(), 2, "NaN margins are excluded");
        assert_eq!(health.per_path["greedy(max-gap)"].rounds, 2);
        assert_eq!(health.per_path["greedy(max-gap)"].censored, 1);
        assert_eq!(health.fallbacks["crash"], 1);
        assert_eq!(health.last_digest.as_deref(), Some("0000000000000002"));
        let rendered = render_decision_health(&health);
        assert!(rendered.contains("committed rounds: 3"), "{rendered}");
        assert!(rendered.contains("crash: 1 round(s)"), "{rendered}");
        assert!(rendered.contains("greedy(max-gap)"), "{rendered}");
    }

    #[test]
    fn explain_round_renders_the_why_chain_or_a_clear_error() {
        let events = committed_round(5, "hybrid:greedy(max-gap)", "", 0.15);
        let text = render_explain_round(&events, 5).unwrap();
        assert!(text.contains("round 5:"), "{text}");
        assert!(text.contains("user 1 -> arm 3"), "{text}");
        assert!(text.contains("hybrid:greedy(max-gap)"), "{text}");
        assert!(text.contains("<- served"), "{text}");
        assert!(text.contains("<- chosen"), "{text}");
        assert!(text.contains("0000000000000005"), "{text}");

        let err = render_explain_round(&events, 6).unwrap_err();
        assert!(err.contains("no committed decision witness"), "{err}");
        assert!(err.contains("1 committed round(s)"), "{err}");
    }

    #[test]
    fn censored_rounds_render_their_fallback() {
        let events = committed_round(2, "greedy(max-gap)", "timeout", 0.1);
        let text = render_explain_round(&events, 2).unwrap();
        assert!(text.contains("[CENSORED]"), "{text}");
        assert!(text.contains("fallback: timeout"), "{text}");
    }

    #[test]
    fn empty_trace_renders_an_explanatory_health_report() {
        let health = decision_health(&[]);
        let rendered = render_decision_health(&health);
        assert!(
            rendered.contains("no committed decision witnesses"),
            "{rendered}"
        );
    }
}
