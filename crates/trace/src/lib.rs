//! Offline analytics over recorded ease.ml traces.
//!
//! The live side of the reproduction records structured [`Event`]s — through
//! an in-memory recorder, a rotating [`JsonlFileSink`](easeml_obs::JsonlFileSink),
//! or the `/trace` HTTP endpoint. This crate is the *offline* side: load
//! such a JSONL trace and answer the questions the paper's evaluation asks
//! after the fact:
//!
//! * [`regret_report`] — the cost-weighted cumulative regret of every
//!   tenant, decomposed into the user-picking and arm-picking terms of
//!   Theorem 1 (folded through the same
//!   [`TimeSeriesRecorder`] the live dashboard uses, so the numbers agree
//!   by construction);
//! * [`calibration_report`] — how honest the GP posteriors were: each
//!   `ArmChosen` carries the chosen arm's posterior mean/σ, which is paired
//!   with the realized quality of the tenant's next `TrainingCompleted` to
//!   score credible-interval coverage against nominal levels;
//! * [`fallback_timeline`] — when (in simulated cost) each hybrid scheduler
//!   fell back to round robin, and why;
//! * [`health_report`] — the numerical-health event stream summarized:
//!   jitter retries, PSD projections, and posterior condition growth;
//! * [`fault_report`] — the fault-tolerance event stream (schema v3)
//!   summarized: censored runs by kind and tenant, retry backoff cost,
//!   quarantined arms, and checkpoints;
//! * [`exec_report`] — the multi-device execution stream (schema v4)
//!   summarized: per-device run counts, busy slot-time and utilization
//!   against the makespan, idle-gap (queueing-delay) statistics, and the
//!   peak number of runs in flight;
//! * [`chrome_trace`] — the causal span tree (`scheduler_step → pick_user →
//!   pick_arm → train → posterior_update`) exported as Chrome trace-event
//!   JSON, loadable in `chrome://tracing` / Perfetto;
//! * [`profile_of`] — the same span stream folded into an aggregated
//!   [`CallTreeProfile`] (per-phase call counts, total/self wall time,
//!   latency quantiles), rendered by [`render_profile`] as a per-phase
//!   self-time table — and, across a multi-trace tenant-count sweep, the
//!   empirical scaling exponent of each phase.
//!
//! * [`workload_report`] — the open-loop workload stream (schema v6)
//!   summarized: per-tenant arrivals, FIFO-matched queueing-delay
//!   quantiles, tenant churn, and the arrival-rate timeline.
//!
//! The `easeml-trace` binary wraps these as `report`, `chrome`,
//! `profile`, and `workload-report` subcommands.

use easeml_obs::{
    scaling_exponents, CallTreeProfile, Event, PhaseScaling, QuantileSketch, ScaleConfig,
    ScaleSnapshot, StrategySketches, TimeSeriesRecorder,
};
use std::collections::BTreeMap;
use std::fmt::Write as _;

pub mod explain;
pub mod recovery_report;
pub mod replay;
pub mod workload;

pub use explain::{
    decision_health, render_decision_health, render_explain_round, render_witness, DecisionHealth,
    PathHealth,
};
pub use recovery_report::{recovery_report, render_wal_report};
pub use replay::{
    digests_of, first_divergence, record_trace, render_replay_diff, replay_diff, ReplayLeg,
    ReplayScenario, MUTATE_ENV_VAR,
};
pub use workload::{
    render_workload_report, workload_report, TenantWorkload, WorkloadReport, TIMELINE_BUCKETS,
};

/// Oldest trace schema version this build can load.
pub const MIN_SUPPORTED_SCHEMA_VERSION: u64 = 1;

/// Newest trace schema version this build can load — traces declaring a
/// higher version in their header are rejected by [`load_trace`] rather
/// than silently dropping the event variants this build does not know.
pub const MAX_SUPPORTED_SCHEMA_VERSION: u64 = easeml_obs::TRACE_SCHEMA_VERSION as u64;

/// Rejects traces recorded by a *newer* build than this one.
///
/// Older versions load fine (the schema is additive), and headerless
/// traces are accepted as-is — only an explicit header declaring a version
/// past [`MAX_SUPPORTED_SCHEMA_VERSION`] fails.
///
/// # Errors
///
/// Returns a message naming the declared and supported versions.
pub fn check_schema_version(trace: &LoadedTrace) -> Result<(), String> {
    match trace.schema_version {
        Some(v) if v > MAX_SUPPORTED_SCHEMA_VERSION => Err(format!(
            "trace declares schema v{v}, but this build supports \
             v{MIN_SUPPORTED_SCHEMA_VERSION}..=v{MAX_SUPPORTED_SCHEMA_VERSION} — \
             upgrade easeml-trace to read it"
        )),
        _ => Ok(()),
    }
}

/// A parsed JSONL trace.
#[derive(Debug, Clone, Default)]
pub struct LoadedTrace {
    /// The events, in recording order.
    pub events: Vec<Event>,
    /// Schema version declared by the trace's header line(s), if any.
    pub schema_version: Option<u64>,
    /// Lines that were neither headers, blank, nor parseable events.
    pub skipped_lines: usize,
    /// Lowest sequence number seen on a `{"seq":N,...}` frame, if any.
    pub first_seq: Option<u64>,
    /// Highest sequence number seen on a `{"seq":N,...}` frame, if any.
    pub last_seq: Option<u64>,
    /// Frames provably lost: the summed interior jumps in the sequence
    /// numbers (`seq` skipping from 7 to 10 counts 2 missing frames) —
    /// dropped sink writes and over-rotated segments show up here.
    pub seq_gaps: u64,
    /// Start index in [`LoadedTrace::events`] of each merged source file
    /// (one entry per file; a single-file load has one entry, `0`).
    pub segments: Vec<usize>,
}

impl LoadedTrace {
    /// Appends `later` (a chronologically later segment of the same trace)
    /// onto `self`, accumulating skip/gap counters and counting the seam
    /// between the two files as a gap when their sequence numbers do not
    /// abut. This is the rotation-merge used by
    /// [`load_trace_with_rotations`].
    pub fn merge(&mut self, later: LoadedTrace) {
        if let (Some(prev), Some(next)) = (self.last_seq, later.first_seq) {
            if next > prev + 1 {
                self.seq_gaps += next - prev - 1;
            }
        }
        let offset = self.events.len();
        if later.segments.is_empty() {
            self.segments.push(offset);
        } else {
            self.segments
                .extend(later.segments.iter().map(|s| s + offset));
        }
        self.events.extend(later.events);
        self.schema_version = self.schema_version.or(later.schema_version);
        self.skipped_lines += later.skipped_lines;
        self.seq_gaps += later.seq_gaps;
        self.first_seq = self.first_seq.or(later.first_seq);
        self.last_seq = later.last_seq.or(self.last_seq);
    }

    /// The per-segment event slices, in merge order — the shape
    /// [`scale_report`] folds sketch-per-segment and merges, mirroring how
    /// rotated files would be folded on separate machines.
    pub fn segment_slices(&self) -> Vec<&[Event]> {
        if self.segments.is_empty() {
            return vec![&self.events];
        }
        let mut out = Vec::with_capacity(self.segments.len());
        for (i, &start) in self.segments.iter().enumerate() {
            let end = self
                .segments
                .get(i + 1)
                .copied()
                .unwrap_or(self.events.len());
            out.push(&self.events[start..end]);
        }
        out
    }
}

/// Strips the `{"seq":N,"event":{...}}` framing a
/// [`JsonlFileSink`](easeml_obs::JsonlFileSink) / `/trace` endpoint adds,
/// returning the sequence number and the inner event object.
fn unwrap_seq_frame(line: &str) -> Option<(u64, &str)> {
    let rest = line.strip_prefix("{\"seq\":")?;
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    let seq = digits.parse().ok()?;
    let idx = rest.find("\"event\":")?;
    let payload = rest[idx + "\"event\":".len()..].strip_suffix('}')?;
    Some((seq, payload))
}

/// Reads the `version` out of a `{"schema":"easeml-trace","version":N}`
/// header line.
fn parse_header(line: &str) -> Option<u64> {
    if !line.starts_with("{\"schema\":") {
        return None;
    }
    let idx = line.find("\"version\":")?;
    let tail = &line[idx + "\"version\":".len()..];
    let digits: String = tail.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// Parses a JSONL trace from text. Accepts the three line shapes the
/// system produces — schema header lines, `{"seq":N,"event":{...}}` frames
/// (file sink, `/trace` endpoint), and bare event objects
/// ([`InMemoryRecorder::to_jsonl`](easeml_obs::InMemoryRecorder::to_jsonl)) —
/// and counts anything else in [`LoadedTrace::skipped_lines`] rather than
/// failing, so a truncated tail (crash mid-write) does not lose the rest of
/// the trace.
pub fn parse_trace(text: &str) -> LoadedTrace {
    let mut out = LoadedTrace {
        segments: vec![0],
        ..LoadedTrace::default()
    };
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(version) = parse_header(line) {
            out.schema_version = Some(version);
            continue;
        }
        let (seq, payload) = match unwrap_seq_frame(line) {
            Some((seq, payload)) => (Some(seq), payload),
            None => (None, line),
        };
        match Event::from_json(payload) {
            Ok(event) => {
                out.events.push(event);
                if let Some(seq) = seq {
                    if let Some(prev) = out.last_seq {
                        if seq > prev + 1 {
                            out.seq_gaps += seq - prev - 1;
                        }
                    }
                    out.first_seq = out.first_seq.or(Some(seq));
                    out.last_seq = Some(out.last_seq.map_or(seq, |p| p.max(seq)));
                }
            }
            Err(_) => out.skipped_lines += 1,
        }
    }
    out
}

/// Loads and parses a trace file.
///
/// # Errors
///
/// Returns the I/O error message when the file cannot be read, or the
/// [`check_schema_version`] message when the trace's header declares a
/// schema version newer than this build supports.
pub fn load_trace(path: &std::path::Path) -> Result<LoadedTrace, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let trace = parse_trace(&text);
    check_schema_version(&trace).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(trace)
}

/// Loads `path` together with any rotated siblings a
/// [`JsonlFileSink`](easeml_obs::JsonlFileSink) left next to it
/// (`<path>.1` is the most recently rotated, higher suffixes are older),
/// merged oldest-first so the events come back in recording order.
/// Cross-file sequence jumps count into [`LoadedTrace::seq_gaps`].
///
/// # Errors
///
/// Returns the I/O error message when the live file cannot be read;
/// rotated segments that disappear mid-scan (a concurrent writer rotating)
/// are skipped rather than failing the load.
pub fn load_trace_with_rotations(path: &std::path::Path) -> Result<LoadedTrace, String> {
    let mut rotated: Vec<(usize, std::path::PathBuf)> = Vec::new();
    for n in 1.. {
        let candidate = std::path::PathBuf::from(format!("{}.{n}", path.display()));
        if candidate.exists() {
            rotated.push((n, candidate));
        } else {
            break;
        }
    }
    let mut merged: Option<LoadedTrace> = None;
    // Oldest segment first: highest rotation index down to `.1`.
    for (_, segment) in rotated.iter().rev() {
        let Ok(text) = std::fs::read_to_string(segment) else {
            continue;
        };
        let parsed = parse_trace(&text);
        match merged.as_mut() {
            Some(acc) => acc.merge(parsed),
            None => merged = Some(parsed),
        }
    }
    let live = load_trace(path)?;
    let out = match merged {
        Some(mut acc) => {
            acc.merge(live);
            acc
        }
        None => live,
    };
    // A rotated segment may carry the header the live file lacks.
    check_schema_version(&out).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(out)
}

// ---------------------------------------------------------------------------
// Regret decomposition (Theorem 1)
// ---------------------------------------------------------------------------

/// Per-user and aggregate cost-weighted regret, split into the Theorem 1
/// user-picking and arm-picking terms.
#[derive(Debug, Clone)]
pub struct RegretReport {
    /// Simulated clock at the end of the trace (total cost spent).
    pub clock: f64,
    /// Completed training runs.
    pub rounds: u64,
    /// Per-tenant decomposition, keyed by tenant index.
    pub per_user: BTreeMap<usize, easeml_obs::RegretDecomposition>,
    /// Sum over tenants.
    pub aggregate: easeml_obs::RegretDecomposition,
}

impl RegretReport {
    /// Whether every tenant's `arm + user` split matches its undecomposed
    /// integral within `tol` — the Theorem 1 consistency check.
    pub fn is_consistent(&self, tol: f64) -> bool {
        self.per_user
            .values()
            .chain(std::iter::once(&self.aggregate))
            .all(|d| (d.sum() - d.total).abs() <= tol * (1.0 + d.total.abs()))
    }
}

/// Folds the trace through a [`TimeSeriesRecorder`] — the same fold the
/// live dashboard runs — and extracts the regret decomposition.
/// `targets` optionally maps tenants to their best achievable quality μ*
/// (defaults to 1.0, i.e. regret is measured against perfect accuracy).
pub fn regret_report(events: &[Event], targets: &BTreeMap<usize, f64>) -> RegretReport {
    let ts = TimeSeriesRecorder::new();
    for (&user, &target) in targets {
        ts.set_target(user, target);
    }
    for event in events {
        ts.fold(event);
    }
    let snap = ts.snapshot();
    RegretReport {
        clock: snap.clock,
        rounds: snap.rounds,
        aggregate: snap.cum_regret(),
        per_user: snap
            .users
            .iter()
            .map(|(&user, series)| (user, series.cum_regret))
            .collect(),
    }
}

// ---------------------------------------------------------------------------
// GP calibration
// ---------------------------------------------------------------------------

/// The nominal central credible-interval levels the calibration report
/// scores, with the matching standard-normal quantiles.
pub const CALIBRATION_LEVELS: [(f64, f64); 4] = [
    (0.50, 0.6744897501960817),
    (0.80, 1.2815515655446004),
    (0.90, 1.6448536269514722),
    (0.95, 1.959963984540054),
];

/// Calibration of the GP posteriors against realized training outcomes.
///
/// Each prediction is an `ArmChosen` event (posterior mean/σ of the chosen
/// arm at decision time) paired with the quality of the same tenant's next
/// `TrainingCompleted`. A well-calibrated posterior puts the realized
/// quality inside its central p-credible interval about a fraction p of the
/// time.
#[derive(Debug, Clone, Default)]
pub struct CalibrationReport {
    /// Prediction/outcome pairs actually scored.
    pub pairs: usize,
    /// `ArmChosen` events without usable mean/σ (pre-v2 traces, σ = 0) or
    /// without a following completion.
    pub unscored: usize,
    /// For each `(nominal, z)` in [`CALIBRATION_LEVELS`]: the empirical
    /// fraction of outcomes inside the central interval `mean ± z·σ`.
    pub coverage: Vec<(f64, f64)>,
    /// Mean of `quality − mean` (signed bias of the posterior mean).
    pub mean_residual: f64,
    /// Root mean square of the standardized residuals `z = (q − μ)/σ`;
    /// ≈ 1 for a calibrated posterior, ≫ 1 for overconfident ones.
    pub rms_z: f64,
}

/// Pairs every `ArmChosen` with the same tenant's next `TrainingCompleted`
/// and scores credible-interval coverage. Events of different tenants
/// interleave freely; pairing is per-tenant FIFO.
pub fn calibration_report(events: &[Event]) -> CalibrationReport {
    let mut pending: BTreeMap<usize, Vec<(f64, f64)>> = BTreeMap::new();
    let mut residuals: Vec<(f64, f64)> = Vec::new(); // (quality − mean, σ)
    let mut unscored = 0usize;
    for event in events {
        match event {
            Event::ArmChosen {
                user, mean, sigma, ..
            } => {
                if mean.is_finite() && sigma.is_finite() && *sigma > 0.0 {
                    pending.entry(*user).or_default().push((*mean, *sigma));
                } else {
                    unscored += 1;
                }
            }
            Event::TrainingCompleted { user, quality, .. } => {
                if let Some(queue) = pending.get_mut(user) {
                    if !queue.is_empty() {
                        let (mean, sigma) = queue.remove(0);
                        residuals.push((quality - mean, sigma));
                    }
                }
            }
            _ => {}
        }
    }
    unscored += pending.values().map(Vec::len).sum::<usize>();
    if residuals.is_empty() {
        return CalibrationReport {
            unscored,
            coverage: CALIBRATION_LEVELS.iter().map(|&(p, _)| (p, 0.0)).collect(),
            ..CalibrationReport::default()
        };
    }
    let n = residuals.len() as f64;
    let coverage = CALIBRATION_LEVELS
        .iter()
        .map(|&(nominal, z)| {
            let inside = residuals
                .iter()
                .filter(|(r, sigma)| r.abs() <= z * sigma)
                .count();
            (nominal, inside as f64 / n)
        })
        .collect();
    let mean_residual = residuals.iter().map(|(r, _)| r).sum::<f64>() / n;
    let rms_z = (residuals
        .iter()
        .map(|(r, s)| (r / s) * (r / s))
        .sum::<f64>()
        / n)
        .sqrt();
    CalibrationReport {
        pairs: residuals.len(),
        unscored,
        coverage,
        mean_residual,
        rms_z,
    }
}

// ---------------------------------------------------------------------------
// Hybrid fallback timeline
// ---------------------------------------------------------------------------

/// One hybrid-scheduler fallback, located on the simulated clock.
#[derive(Debug, Clone, PartialEq)]
pub struct FallbackPoint {
    /// Cumulative cost at the moment the fallback fired.
    pub clock: f64,
    /// Completed rounds before the fallback.
    pub rounds: u64,
    /// The reason string the scheduler recorded.
    pub reason: String,
}

/// Extracts every `HybridFallback` with its position on the cost clock.
///
/// Censored runs (`TrainingFailed`) advance the clock by the cost they
/// consumed — the cluster charged it even though no quality observation
/// landed — but do not count as completed rounds, matching the live
/// [`TimeSeriesRecorder`] fold.
pub fn fallback_timeline(events: &[Event]) -> Vec<FallbackPoint> {
    let mut clock = 0.0f64;
    let mut rounds = 0u64;
    let mut out = Vec::new();
    for event in events {
        match event {
            Event::TrainingCompleted { cost, .. } => {
                if cost.is_finite() && *cost > 0.0 {
                    clock += cost;
                }
                rounds += 1;
            }
            Event::TrainingFailed { cost, .. } if cost.is_finite() && *cost > 0.0 => {
                clock += cost;
            }
            Event::HybridFallback { reason, .. } => out.push(FallbackPoint {
                clock,
                rounds,
                reason: reason.clone(),
            }),
            _ => {}
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Fault tolerance
// ---------------------------------------------------------------------------

/// Summary of the fault-tolerance event stream (schema v3): censored runs,
/// retries, quarantines, and checkpoints.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultReport {
    /// Number of `TrainingFailed` events (censored runs).
    pub failed_runs: u64,
    /// Total cost charged to censored runs (partial progress + backoff).
    pub censored_cost: f64,
    /// Failed runs per failure kind (`crash`, `timeout`,
    /// `invalid-quality`, …), in deterministic order.
    pub by_kind: BTreeMap<String, u64>,
    /// Failed runs per tenant.
    pub by_user: BTreeMap<usize, u64>,
    /// Number of `RetryScheduled` events.
    pub retries: u64,
    /// Total simulated-cost backoff charged across all retries.
    pub backoff_cost: f64,
    /// Number of `ArmQuarantined` events.
    pub quarantines: u64,
    /// The quarantined `(user, model)` pairs, in event order (an arm that
    /// re-enters on probation and is quarantined again appears twice).
    pub quarantined_arms: Vec<(usize, usize)>,
    /// Number of `CheckpointWritten` events.
    pub checkpoints: u64,
    /// Bytes of the last checkpoint in the trace, if any.
    pub last_checkpoint_bytes: Option<u64>,
}

/// Folds `TrainingFailed` / `RetryScheduled` / `ArmQuarantined` /
/// `CheckpointWritten` into a [`FaultReport`]. Pre-v3 traces simply
/// contain none of these events and yield an all-zero report.
pub fn fault_report(events: &[Event]) -> FaultReport {
    let mut out = FaultReport::default();
    for event in events {
        match event {
            Event::TrainingFailed {
                user, cost, kind, ..
            } => {
                out.failed_runs += 1;
                if cost.is_finite() && *cost > 0.0 {
                    out.censored_cost += cost;
                }
                *out.by_kind.entry(kind.clone()).or_insert(0) += 1;
                *out.by_user.entry(*user).or_insert(0) += 1;
            }
            Event::RetryScheduled { backoff_cost, .. } => {
                out.retries += 1;
                if backoff_cost.is_finite() && *backoff_cost > 0.0 {
                    out.backoff_cost += backoff_cost;
                }
            }
            Event::ArmQuarantined { user, model, .. } => {
                out.quarantines += 1;
                out.quarantined_arms.push((*user, *model));
            }
            Event::CheckpointWritten { bytes, .. } => {
                out.checkpoints += 1;
                out.last_checkpoint_bytes = Some(*bytes);
            }
            _ => {}
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Multi-device execution
// ---------------------------------------------------------------------------

/// One device's share of the execution event stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeviceUsage {
    /// Runs dispatched onto the device.
    pub dispatches: u64,
    /// Runs that left the device (clean or censored).
    pub completions: u64,
    /// Completions with `ok = false` (censored by a fault).
    pub censored: u64,
    /// Busy slot-time: the summed durations of the device's runs. On a
    /// multi-slot device overlapping runs each contribute their full span.
    pub busy: f64,
    /// `DeviceIdle` gaps observed (the device sat fully idle, then got
    /// work).
    pub idle_gaps: u64,
    /// Total idle-gap time.
    pub idle_gap_total: f64,
    /// Longest single idle gap.
    pub idle_gap_max: f64,
}

/// Summary of the multi-device execution stream (schema v4): per-device
/// utilization and the executor's queueing-delay samples.
///
/// Serial traces (schema ≤ 3) contain no `RunDispatched` events and yield
/// a report with `dispatches == 0`; [`render_report`] omits the section
/// entirely in that case.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecReport {
    /// Total `RunDispatched` events.
    pub dispatches: u64,
    /// Total `RunFinished` events.
    pub completions: u64,
    /// Finished runs that were censored (`ok = false`).
    pub censored: u64,
    /// Simulated clock of the last `RunFinished` (the makespan).
    pub makespan: f64,
    /// Peak number of runs simultaneously in flight.
    pub peak_in_flight: u64,
    /// Per-device breakdown, keyed by device index.
    pub per_device: BTreeMap<usize, DeviceUsage>,
    /// Mergeable quantile sketch over every `DeviceIdle` gap — the
    /// executor's queueing-delay distribution across all devices.
    pub queueing_delay: QuantileSketch,
    /// Mergeable quantile sketch over every paired run duration — the
    /// busy-span distribution across all devices.
    pub busy_spans: QuantileSketch,
}

impl ExecReport {
    /// A device's busy slot-time divided by the makespan. Exceeds 1 on
    /// multi-slot devices running overlapping jobs; 0 when the makespan is
    /// zero.
    pub fn utilization(&self, device: usize) -> f64 {
        if self.makespan <= 0.0 {
            return 0.0;
        }
        self.per_device
            .get(&device)
            .map_or(0.0, |d| d.busy / self.makespan)
    }

    /// Mean idle gap across all devices — the executor's average
    /// queueing delay (how long a fully drained device waited for its next
    /// run). 0 when no gaps were recorded.
    pub fn mean_queueing_delay(&self) -> f64 {
        let gaps: u64 = self.per_device.values().map(|d| d.idle_gaps).sum();
        if gaps == 0 {
            return 0.0;
        }
        let total: f64 = self.per_device.values().map(|d| d.idle_gap_total).sum();
        total / gaps as f64
    }
}

/// Folds `RunDispatched` / `RunFinished` / `DeviceIdle` into an
/// [`ExecReport`]. Each finish is paired with its dispatch per
/// `(device, user, model)` FIFO — the engine records both in causal order,
/// so overlapping runs on a multi-slot device pair correctly.
pub fn exec_report(events: &[Event]) -> ExecReport {
    let mut out = ExecReport::default();
    let mut pending: BTreeMap<(usize, usize, usize), Vec<f64>> = BTreeMap::new();
    let mut in_flight = 0u64;
    for event in events {
        match event {
            Event::RunDispatched {
                user,
                model,
                device,
                at,
                ..
            } => {
                out.dispatches += 1;
                out.per_device.entry(*device).or_default().dispatches += 1;
                pending
                    .entry((*device, *user, *model))
                    .or_default()
                    .push(*at);
                in_flight += 1;
                out.peak_in_flight = out.peak_in_flight.max(in_flight);
            }
            Event::RunFinished {
                user,
                model,
                device,
                at,
                ok,
                ..
            } => {
                out.completions += 1;
                if !ok {
                    out.censored += 1;
                }
                if *at > out.makespan {
                    out.makespan = *at;
                }
                let usage = out.per_device.entry(*device).or_default();
                usage.completions += 1;
                if !ok {
                    usage.censored += 1;
                }
                if let Some(starts) = pending.get_mut(&(*device, *user, *model)) {
                    if !starts.is_empty() {
                        let start = starts.remove(0);
                        if at.is_finite() && *at >= start {
                            usage.busy += at - start;
                            out.busy_spans.insert(at - start);
                        }
                    }
                }
                in_flight = in_flight.saturating_sub(1);
            }
            Event::DeviceIdle { device, idle, .. } => {
                let usage = out.per_device.entry(*device).or_default();
                usage.idle_gaps += 1;
                if idle.is_finite() && *idle >= 0.0 {
                    out.queueing_delay.insert(*idle);
                }
                if idle.is_finite() && *idle > 0.0 {
                    usage.idle_gap_total += idle;
                    if *idle > usage.idle_gap_max {
                        usage.idle_gap_max = *idle;
                    }
                }
            }
            _ => {}
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Telemetry at scale: sketch fold + exact cross-check
// ---------------------------------------------------------------------------

/// Traces with more events than this skip the exact cross-check — the
/// point of the sketches is that the exact fold stops being affordable.
pub const CROSS_CHECK_MAX_EVENTS: usize = 200_000;

/// The quantiles the scale section prints and cross-checks.
pub const SCALE_QUANTILES: [(f64, &str); 3] = [(0.5, "p50"), (0.9, "p90"), (0.99, "p99")];

/// Outcome of comparing the merged regret sketch against an exact
/// sorted-fold of the same per-run regret observations.
#[derive(Debug, Clone, Default)]
pub struct SketchCrossCheck {
    /// Quantiles compared (0 when skipped or the trace has no runs).
    pub quantiles_checked: usize,
    /// Largest relative error observed across the checked quantiles.
    pub max_rel_err: f64,
    /// The sketch's configured relative-error bound α.
    pub tolerance: f64,
    /// True when the trace exceeded [`CROSS_CHECK_MAX_EVENTS`].
    pub skipped: bool,
}

impl SketchCrossCheck {
    /// Whether the sketch stayed within its advertised bound (vacuously
    /// true when the check was skipped or nothing was comparable).
    pub fn passed(&self) -> bool {
        self.skipped || self.quantiles_checked == 0 || self.max_rel_err <= self.tolerance + 1e-12
    }
}

/// The scale section of the offline report: bounded sketches folded from
/// the trace — per rotated segment, then merged — plus top-K offenders and
/// the sketch-vs-exact consistency check.
#[derive(Debug, Clone)]
pub struct ScaleReport {
    /// Aggregate-mode fold of the whole stream: per-strategy sketches,
    /// top-K offender boards, and self-overhead counters.
    pub scale: ScaleSnapshot,
    /// Regret/cost/quality sketches folded independently per rotated
    /// segment and merged — exercising the mergeability the sketches exist
    /// for. `None` when the trace has no runs.
    pub merged: Option<StrategySketches>,
    /// Rotated segments folded.
    pub segments: usize,
    /// Merged sketch vs exact sorted fold of the same observations.
    pub cross_check: SketchCrossCheck,
}

/// The per-run regret observations the recorder's scale layer inserts,
/// recomputed exactly: completed runs observe `max(target − quality, 0)`
/// (quality clamped to `[0, ∞)`), censored runs observe the full target.
fn exact_regret_observations(events: &[Event], targets: &BTreeMap<usize, f64>) -> Vec<f64> {
    let target_of = |user: &usize| targets.get(user).copied().unwrap_or(1.0);
    let mut out = Vec::new();
    for event in events {
        match event {
            Event::TrainingCompleted { user, quality, .. } => {
                let sane = if quality.is_finite() {
                    quality.max(0.0)
                } else {
                    0.0
                };
                out.push((target_of(user) - sane).max(0.0));
            }
            Event::TrainingFailed { user, .. } => out.push(target_of(user).max(0.0)),
            _ => {}
        }
    }
    out
}

/// Folds the trace into the bounded scale telemetry: one aggregate-mode
/// [`TimeSeriesRecorder`] pass over the whole stream for the snapshot, one
/// sketch fold per rotated segment merged together, and — on traces small
/// enough to sort — an exact cross-check of the merged regret quantiles.
pub fn scale_report(trace: &LoadedTrace, targets: &BTreeMap<usize, f64>) -> ScaleReport {
    let fold = |events: &[Event]| {
        let ts = TimeSeriesRecorder::aggregate(ScaleConfig::default());
        for (&user, &target) in targets {
            ts.set_target(user, target);
        }
        for event in events {
            ts.fold(event);
        }
        ts.snapshot().scale
    };

    let scale = fold(&trace.events);

    // Mergeability in anger: fold each rotated segment as if it lived on
    // its own machine, then merge the sketches.
    let segments = trace.segment_slices();
    let mut merged: Option<StrategySketches> = None;
    for slice in &segments {
        if let Some(part) = fold(slice).merged() {
            match merged.as_mut() {
                Some(acc) => {
                    acc.regret.merge(&part.regret);
                    acc.cost.merge(&part.cost);
                    acc.quality.merge(&part.quality);
                }
                None => merged = Some(part),
            }
        }
    }

    let mut cross_check = SketchCrossCheck {
        tolerance: scale.quantile_alpha,
        ..SketchCrossCheck::default()
    };
    if trace.events.len() > CROSS_CHECK_MAX_EVENTS {
        cross_check.skipped = true;
    } else if let Some(sketch) = merged.as_ref().map(|m| &m.regret) {
        let mut exact = exact_regret_observations(&trace.events, targets);
        exact.sort_by(f64::total_cmp);
        if !exact.is_empty() {
            for (q, _) in SCALE_QUANTILES {
                let rank = (q * (exact.len() - 1) as f64).floor() as usize;
                let truth = exact[rank];
                let Some(est) = sketch.quantile(q) else {
                    continue;
                };
                let rel = if truth > 1e-9 {
                    (est - truth).abs() / truth
                } else if (est - truth).abs() > 1e-9 {
                    f64::INFINITY
                } else {
                    0.0
                };
                cross_check.quantiles_checked += 1;
                if rel > cross_check.max_rel_err {
                    cross_check.max_rel_err = rel;
                }
            }
        }
    }

    ScaleReport {
        scale,
        merged,
        segments: segments.len(),
        cross_check,
    }
}

// ---------------------------------------------------------------------------
// Numerical health
// ---------------------------------------------------------------------------

/// Summary of the numerical-health event stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HealthReport {
    /// Number of `JitterRetry` events (factorizations that needed jitter).
    pub jitter_events: u64,
    /// Total jitter attempts across those events.
    pub jitter_attempts: u64,
    /// Largest jitter that was ever needed.
    pub max_jitter: f64,
    /// Number of `PsdProjectionApplied` events.
    pub psd_projections: u64,
    /// Total eigenvalues clipped across all projections.
    pub eigenvalues_clipped: u64,
    /// Total eigenvalue mass removed.
    pub clipped_mass: f64,
    /// Largest posterior condition estimate seen on any `PosteriorUpdated`.
    pub max_condition: f64,
    /// Condition estimate of the last `PosteriorUpdated` in the trace.
    pub final_condition: f64,
    /// `PosteriorUpdated` events carrying a finite condition estimate.
    pub condition_samples: u64,
}

/// Folds `JitterRetry` / `PsdProjectionApplied` / `PosteriorUpdated.cond`
/// into a [`HealthReport`].
pub fn health_report(events: &[Event]) -> HealthReport {
    let mut out = HealthReport::default();
    for event in events {
        match event {
            Event::JitterRetry {
                attempts, jitter, ..
            } => {
                out.jitter_events += 1;
                out.jitter_attempts += attempts;
                if *jitter > out.max_jitter {
                    out.max_jitter = *jitter;
                }
            }
            Event::PsdProjectionApplied {
                clipped,
                clipped_mass,
                ..
            } => {
                out.psd_projections += 1;
                out.eigenvalues_clipped += clipped;
                if clipped_mass.is_finite() {
                    out.clipped_mass += clipped_mass;
                }
            }
            Event::PosteriorUpdated { cond, .. } if cond.is_finite() => {
                out.condition_samples += 1;
                out.final_condition = *cond;
                if *cond > out.max_condition {
                    out.max_condition = *cond;
                }
            }
            _ => {}
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Chrome trace export
// ---------------------------------------------------------------------------

/// Converts the span events into Chrome trace-event JSON (the format
/// `chrome://tracing` and Perfetto load): one complete (`"ph":"X"`) event
/// per `SpanStart`/`SpanEnd` pair, with the span id and its parent in
/// `args` so the causal tree survives even without nesting-by-time.
///
/// Unclosed spans (a trace cut off mid-step) are emitted with zero
/// duration at their start time rather than dropped.
pub fn chrome_trace(events: &[Event]) -> String {
    struct Open {
        span: u64,
        parent: u64,
        name: String,
        start_ns: u64,
    }
    let mut open: Vec<Open> = Vec::new();
    let mut complete: Vec<(String, u64, u64, u64, u64)> = Vec::new(); // name, start, dur, span, parent
    for event in events {
        match event {
            Event::SpanStart {
                span,
                parent,
                name,
                ts_ns,
            } => open.push(Open {
                span: *span,
                parent: *parent,
                name: name.clone(),
                start_ns: *ts_ns,
            }),
            Event::SpanEnd { span, ts_ns } => {
                if let Some(pos) = open.iter().rposition(|o| o.span == *span) {
                    let o = open.remove(pos);
                    let dur = ts_ns.saturating_sub(o.start_ns);
                    complete.push((o.name, o.start_ns, dur, o.span, o.parent));
                }
            }
            _ => {}
        }
    }
    for o in open {
        complete.push((o.name, o.start_ns, 0, o.span, o.parent));
    }
    complete.sort_by_key(|&(_, start, ..)| start);

    let mut out = String::from("[");
    for (i, (name, start_ns, dur_ns, span, parent)) in complete.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":{},\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\
             \"pid\":1,\"tid\":1,\"args\":{{\"span\":{span},\"parent\":{parent}}}}}",
            easeml_obs::json::to_string(name.as_str()),
            *start_ns as f64 / 1_000.0,
            *dur_ns as f64 / 1_000.0,
        );
    }
    out.push(']');
    out
}

// ---------------------------------------------------------------------------
// Call-tree profile
// ---------------------------------------------------------------------------

/// Coverage threshold the profile section asserts for `scheduler_step`:
/// self-time over the step nodes and their descendants must account for at
/// least this fraction of the steps' wall time, or unbalanced spans /
/// clock skew are leaking attribution.
pub const PROFILE_COVERAGE_THRESHOLD: f64 = 0.95;

/// Rebuilds the aggregated call-tree profile from a loaded trace —
/// exactly the tree a live [`Profiler`](easeml_obs::Profiler) would have
/// built online (minus allocation columns, which only exist in-process).
/// Rotated segments are already concatenated by
/// [`load_trace_with_rotations`], so spans pair across rotation seams.
pub fn profile_of(trace: &LoadedTrace) -> CallTreeProfile {
    CallTreeProfile::fold(&trace.events)
}

/// Renders one profile as an indented call tree plus a per-phase rollup
/// table, with span data-quality counters and `scheduler_step` coverage.
pub fn render_profile_section(profile: &CallTreeProfile) -> String {
    let mut out = String::new();
    if profile.is_empty() {
        let _ = writeln!(out, "no spans recorded (schema v2+ traces carry spans)");
        return out;
    }
    let _ = writeln!(
        out,
        "spans: {} closed, {} unclosed, {} orphaned end(s), {} dropped exit(s)",
        profile.closed_spans(),
        profile.unclosed_spans,
        profile.orphan_ends,
        profile.dropped_exits,
    );

    let _ = writeln!(
        out,
        "{:<36} {:>8} {:>12} {:>12} {:>10} {:>10}",
        "call tree", "calls", "total ms", "self ms", "p50 us", "p95 us"
    );
    render_profile_node(profile, 0, 0, &mut out);

    let _ = writeln!(
        out,
        "\n{:<20} {:>8} {:>12} {:>12} {:>8} {:>12} {:>12}",
        "phase", "calls", "total ms", "self ms", "self %", "ns/call", "allocs"
    );
    let table = profile.phase_table();
    let grand_self: u64 = table.iter().map(|r| r.self_ns).sum();
    for row in &table {
        let _ = writeln!(
            out,
            "{:<20} {:>8} {:>12.3} {:>12.3} {:>7.1}% {:>12.0} {:>12}",
            row.name,
            row.calls,
            row.total_ns as f64 / 1e6,
            row.self_ns as f64 / 1e6,
            if grand_self == 0 {
                0.0
            } else {
                100.0 * row.self_ns as f64 / grand_self as f64
            },
            row.self_ns_per_call(),
            row.allocs,
        );
    }

    match profile.phase_coverage("scheduler_step") {
        Some((attributed, total)) if total > 0 => {
            let ratio = attributed as f64 / total as f64;
            let _ = writeln!(
                out,
                "phase coverage: {:.2}% of scheduler_step wall time attributed ({}, threshold {:.0}%)",
                ratio * 100.0,
                if ratio >= PROFILE_COVERAGE_THRESHOLD {
                    "pass"
                } else {
                    "FAIL"
                },
                PROFILE_COVERAGE_THRESHOLD * 100.0,
            );
        }
        _ => {
            let _ = writeln!(out, "phase coverage: n/a (no closed scheduler_step spans)");
        }
    }
    out
}

fn render_profile_node(profile: &CallTreeProfile, idx: usize, depth: usize, out: &mut String) {
    let nodes = profile.nodes();
    if idx != 0 {
        let n = &nodes[idx];
        let q = |p: f64| n.latency.quantile(p).unwrap_or(0.0) / 1e3;
        let label = format!("{}{}", "  ".repeat(depth - 1), n.name);
        let _ = writeln!(
            out,
            "{:<36} {:>8} {:>12.3} {:>12.3} {:>10.1} {:>10.1}",
            label,
            n.count,
            n.total_ns as f64 / 1e6,
            n.self_ns as f64 / 1e6,
            q(0.5),
            q(0.95),
        );
    }
    for &c in &nodes[idx].children {
        render_profile_node(profile, c, depth + 1, out);
    }
}

/// Renders the `easeml-trace profile` report: the merged call tree over
/// every run, and — when the runs span at least two distinct tenant
/// counts — the per-phase empirical scaling exponents fitted by
/// [`scaling_exponents`].
pub fn render_profile(runs: &[(usize, CallTreeProfile)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "=== easeml-trace profile ===");
    let users: Vec<usize> = runs.iter().map(|(u, _)| *u).collect();
    let _ = writeln!(out, "runs: {}  tenant counts: {:?}", runs.len(), users);

    let mut merged = CallTreeProfile::new();
    for (_, profile) in runs {
        merged.merge(profile);
    }
    let _ = writeln!(out, "\n--- call-tree profile (all runs merged) ---");
    out.push_str(&render_profile_section(&merged));

    let borrowed: Vec<(usize, &CallTreeProfile)> = runs.iter().map(|(u, p)| (*u, p)).collect();
    let fits = scaling_exponents(&borrowed);
    let _ = writeln!(out, "\n--- empirical scaling (self ns/call vs U) ---");
    if fits.is_empty() {
        let _ = writeln!(
            out,
            "need runs at >= 2 distinct tenant counts to fit exponents"
        );
    } else {
        let _ = writeln!(
            out,
            "{:<20} {:>10}  per-call self time across the sweep",
            "phase", "exponent"
        );
        for fit in &fits {
            let pts = fit
                .points
                .iter()
                .map(|(u, ns)| format!("U={u}: {:.0}ns", ns))
                .collect::<Vec<_>>()
                .join("  ");
            let _ = writeln!(
                out,
                "{:<20} {:>10}  {}",
                fit.phase,
                format_exponent(fit),
                pts
            );
        }
        let _ = writeln!(
            out,
            "reading: exponent ~1 means the phase costs O(U) per step, ~0 means \
             constant; pick_user is the ROADMAP-1 target."
        );
    }
    out
}

fn format_exponent(fit: &PhaseScaling) -> String {
    format!("O(U^{:.2})", fit.exponent)
}

// ---------------------------------------------------------------------------
// The human-readable report
// ---------------------------------------------------------------------------

/// Renders the full offline report — regret decomposition, calibration
/// table, fallback timeline, numerical health — as plain text.
pub fn render_report(trace: &LoadedTrace, targets: &BTreeMap<usize, f64>) -> String {
    let regret = regret_report(&trace.events, targets);
    let calibration = calibration_report(&trace.events);
    let fallbacks = fallback_timeline(&trace.events);
    let health = health_report(&trace.events);
    let faults = fault_report(&trace.events);
    let exec = exec_report(&trace.events);
    let scale = scale_report(trace, targets);

    let mut out = String::new();
    let _ = writeln!(out, "=== easeml-trace report ===");
    let _ = writeln!(
        out,
        "events: {}  (schema v{}, {} unparseable line(s) skipped)",
        trace.events.len(),
        trace
            .schema_version
            .map_or("?".to_string(), |v| v.to_string()),
        trace.skipped_lines,
    );
    if let (Some(first), Some(last)) = (trace.first_seq, trace.last_seq) {
        let _ = writeln!(
            out,
            "frames: seq {first}..={last}  missing: {}  file segment(s): {}",
            trace.seq_gaps,
            trace.segments.len().max(1),
        );
    }
    let _ = writeln!(
        out,
        "rounds: {}  simulated cost: {:.4}",
        regret.rounds, regret.clock
    );

    let _ = writeln!(out, "\n--- regret decomposition (Theorem 1) ---");
    let _ = writeln!(
        out,
        "{:>6}  {:>14}  {:>14}  {:>14}  {:>9}",
        "user", "arm-picking", "user-picking", "total", "split-err"
    );
    for (user, d) in &regret.per_user {
        let _ = writeln!(
            out,
            "{user:>6}  {:>14.6}  {:>14.6}  {:>14.6}  {:>9.1e}",
            d.arm_picking,
            d.user_picking,
            d.total,
            (d.sum() - d.total).abs(),
        );
    }
    let agg = &regret.aggregate;
    let _ = writeln!(
        out,
        "{:>6}  {:>14.6}  {:>14.6}  {:>14.6}  {:>9.1e}",
        "all",
        agg.arm_picking,
        agg.user_picking,
        agg.total,
        (agg.sum() - agg.total).abs(),
    );
    let _ = writeln!(
        out,
        "decomposition consistent: {}",
        regret.is_consistent(1e-9)
    );

    let _ = writeln!(out, "\n--- GP calibration ---");
    if calibration.pairs == 0 {
        let _ = writeln!(
            out,
            "no scorable prediction/outcome pairs ({} unscored)",
            calibration.unscored
        );
    } else {
        let _ = writeln!(
            out,
            "pairs: {}  unscored: {}  mean residual: {:+.4}  rms z: {:.3}",
            calibration.pairs, calibration.unscored, calibration.mean_residual, calibration.rms_z
        );
        let _ = writeln!(out, "{:>9}  {:>9}", "nominal", "observed");
        for (nominal, observed) in &calibration.coverage {
            let _ = writeln!(out, "{:>8.0}%  {:>8.1}%", nominal * 100.0, observed * 100.0);
        }
    }

    let _ = writeln!(out, "\n--- hybrid fallbacks ---");
    if fallbacks.is_empty() {
        let _ = writeln!(out, "none");
    } else {
        for f in &fallbacks {
            let _ = writeln!(
                out,
                "at cost {:.4} (round {}): {}",
                f.clock, f.rounds, f.reason
            );
        }
    }

    let _ = writeln!(out, "\n--- fault tolerance ---");
    let _ = writeln!(
        out,
        "TrainingFailed: {}  (censored cost {:.4})",
        faults.failed_runs, faults.censored_cost
    );
    for (kind, count) in &faults.by_kind {
        let _ = writeln!(out, "  {kind}: {count}");
    }
    let _ = writeln!(
        out,
        "retries: {}  (backoff cost {:.4})",
        faults.retries, faults.backoff_cost
    );
    if faults.quarantines == 0 {
        let _ = writeln!(out, "quarantines: 0");
    } else {
        let _ = writeln!(
            out,
            "quarantines: {}  arms {:?}",
            faults.quarantines, faults.quarantined_arms
        );
    }
    match faults.last_checkpoint_bytes {
        Some(bytes) => {
            let _ = writeln!(
                out,
                "checkpoints: {}  (last {} bytes)",
                faults.checkpoints, bytes
            );
        }
        None => {
            let _ = writeln!(out, "checkpoints: 0");
        }
    }

    if exec.dispatches > 0 {
        let _ = writeln!(out, "\n--- multi-device execution ---");
        let _ = writeln!(
            out,
            "dispatches: {}  finished: {} (censored {})  peak in-flight: {}  makespan: {:.4}",
            exec.dispatches, exec.completions, exec.censored, exec.peak_in_flight, exec.makespan
        );
        for (device, usage) in &exec.per_device {
            let _ = writeln!(
                out,
                "device {device}: runs {} (censored {})  busy {:.4}  utilization {:.1}%  \
                 idle-gaps {} (total {:.4}, max {:.4})",
                usage.dispatches,
                usage.censored,
                usage.busy,
                exec.utilization(*device) * 100.0,
                usage.idle_gaps,
                usage.idle_gap_total,
                usage.idle_gap_max,
            );
        }
        let _ = writeln!(
            out,
            "mean device queueing delay: {:.4}",
            exec.mean_queueing_delay()
        );
        let sketch_line = |name: &str, sketch: &QuantileSketch| {
            let mut line = format!("{name} quantiles:");
            for (q, label) in SCALE_QUANTILES {
                let _ = write!(line, "  {label} {:.4}", sketch.quantile(q).unwrap_or(0.0));
            }
            let _ = write!(line, "  ({} sample(s))", sketch.count());
            line
        };
        if exec.queueing_delay.count() > 0 {
            let _ = writeln!(
                out,
                "{}",
                sketch_line("queueing-delay", &exec.queueing_delay)
            );
        }
        if exec.busy_spans.count() > 0 {
            let _ = writeln!(out, "{}", sketch_line("busy-span", &exec.busy_spans));
        }
    }

    let _ = writeln!(out, "\n--- telemetry at scale ---");
    match scale.merged.as_ref() {
        None => {
            let _ = writeln!(out, "no run observations");
        }
        Some(merged) => {
            let _ = writeln!(
                out,
                "run observations: {}  strategy group(s): {}  segment(s) merged: {}  \
                 sketch bytes: {}",
                merged.regret.count(),
                scale.scale.strategies.len(),
                scale.segments,
                scale.scale.approx_state_bytes,
            );
            let _ = writeln!(
                out,
                "{:>9}  {:>12}  {:>12}  {:>12}",
                "quantile", "regret", "cost", "quality"
            );
            for (q, label) in SCALE_QUANTILES {
                let _ = writeln!(
                    out,
                    "{label:>9}  {:>12.6}  {:>12.6}  {:>12.6}",
                    merged.regret.quantile(q).unwrap_or(0.0),
                    merged.cost.quantile(q).unwrap_or(0.0),
                    merged.quality.quantile(q).unwrap_or(0.0),
                );
            }
            let offenders = |board: &[easeml_obs::TopTenant]| {
                board
                    .iter()
                    .take(3)
                    .map(|t| format!("user {} ({:.4})", t.user, t.weight))
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            if !scale.scale.worst_regret.is_empty() {
                let _ = writeln!(
                    out,
                    "top regret-weight: {}",
                    offenders(&scale.scale.worst_regret)
                );
            }
            if !scale.scale.worst_cost.is_empty() {
                let _ = writeln!(
                    out,
                    "top cost-weight: {}",
                    offenders(&scale.scale.worst_cost)
                );
            }
            let check = &scale.cross_check;
            if check.skipped {
                let _ = writeln!(
                    out,
                    "sketch-vs-exact cross-check: skipped ({} events > {})",
                    trace.events.len(),
                    CROSS_CHECK_MAX_EVENTS
                );
            } else {
                let _ = writeln!(
                    out,
                    "sketch-vs-exact cross-check: {} (max rel err {:.2}% <= {:.2}%, \
                     {} quantile(s))",
                    if check.passed() { "pass" } else { "FAIL" },
                    check.max_rel_err * 100.0,
                    check.tolerance * 100.0,
                    check.quantiles_checked,
                );
            }
        }
    }

    let _ = writeln!(out, "\n--- call-tree profile ---");
    out.push_str(&render_profile_section(&profile_of(trace)));

    let _ = writeln!(out, "\n--- numerical health ---");
    let _ = writeln!(
        out,
        "jitter retries: {} event(s), {} attempt(s), max jitter {:.3e}",
        health.jitter_events, health.jitter_attempts, health.max_jitter
    );
    let _ = writeln!(
        out,
        "psd projections: {} event(s), {} eigenvalue(s) clipped, mass {:.3e}",
        health.psd_projections, health.eigenvalues_clipped, health.clipped_mass
    );
    if health.condition_samples > 0 {
        let _ = writeln!(
            out,
            "posterior condition estimate: max {:.3e}, final {:.3e} ({} samples)",
            health.max_condition, health.final_condition, health.condition_samples
        );
    } else {
        let _ = writeln!(out, "posterior condition estimate: no samples");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn completed(user: usize, model: usize, cost: f64, quality: f64) -> Event {
        Event::TrainingCompleted {
            user,
            model,
            cost,
            quality,
            parent: 0,
        }
    }

    fn chosen(user: usize, mean: f64, sigma: f64) -> Event {
        Event::ArmChosen {
            user,
            arm: 0,
            ucb: mean + 2.0 * sigma,
            beta: 4.0,
            cost: 1.0,
            mean,
            sigma,
            parent: 0,
        }
    }

    fn span_pair(span: u64, parent: u64, name: &str, start: u64, end: u64) -> [Event; 2] {
        [
            Event::SpanStart {
                span,
                parent,
                name: name.to_string(),
                ts_ns: start,
            },
            Event::SpanEnd { span, ts_ns: end },
        ]
    }

    fn step_events(first_span: u64, base_ts: u64, pick_ns: u64) -> Vec<Event> {
        let s = first_span;
        let mut out = Vec::new();
        let [start, stop] = span_pair(s, 0, "scheduler_step", base_ts, base_ts + pick_ns + 3_000);
        let [p_start, p_stop] = span_pair(
            s + 1,
            s,
            "pick_user",
            base_ts + 100,
            base_ts + 100 + pick_ns,
        );
        let [u_start, u_stop] = span_pair(
            s + 2,
            s,
            "posterior_update",
            base_ts + pick_ns + 500,
            base_ts + pick_ns + 2_500,
        );
        out.push(start);
        out.push(p_start);
        out.push(p_stop);
        out.push(u_start);
        out.push(u_stop);
        out.push(stop);
        out
    }

    #[test]
    fn profile_section_reports_coverage_and_phases() {
        let mut events = step_events(1, 0, 10_000);
        events.extend(step_events(10, 100_000, 12_000));
        let trace = LoadedTrace {
            events,
            ..LoadedTrace::default()
        };
        let profile = profile_of(&trace);
        assert_eq!(profile.closed_spans(), 6);
        let section = render_profile_section(&profile);
        assert!(section.contains("spans: 6 closed, 0 unclosed"), "{section}");
        assert!(section.contains("scheduler_step"), "{section}");
        assert!(section.contains("pick_user"), "{section}");
        // Every nanosecond of the two steps decomposes into self times.
        assert!(
            section
                .contains("phase coverage: 100.00% of scheduler_step wall time attributed (pass"),
            "{section}"
        );
    }

    #[test]
    fn render_profile_fits_scaling_exponents_across_a_sweep() {
        // pick_user self-time per call grows ~linearly in U, the
        // posterior update stays constant.
        let mut runs = Vec::new();
        for &u in &[1_000usize, 10_000, 100_000] {
            let trace = LoadedTrace {
                events: step_events(1, 0, u as u64),
                ..LoadedTrace::default()
            };
            runs.push((u, profile_of(&trace)));
        }
        let rendered = render_profile(&runs);
        assert!(
            rendered.contains("tenant counts: [1000, 10000, 100000]"),
            "{rendered}"
        );
        let pick_line = rendered
            .lines()
            .find(|l| l.starts_with("pick_user") && l.contains("O(U^"))
            .expect("pick_user exponent line");
        let exp: f64 = pick_line
            .split("O(U^")
            .nth(1)
            .unwrap()
            .split(')')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!((exp - 1.0).abs() < 0.05, "{pick_line}");
        let update_line = rendered
            .lines()
            .find(|l| l.starts_with("posterior_update") && l.contains("O(U^"))
            .expect("posterior_update exponent line");
        let exp: f64 = update_line
            .split("O(U^")
            .nth(1)
            .unwrap()
            .split(')')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(exp.abs() < 0.05, "{update_line}");
    }

    #[test]
    fn report_includes_the_profile_section_for_span_traces() {
        let trace = LoadedTrace {
            events: step_events(1, 0, 5_000),
            ..LoadedTrace::default()
        };
        let report = render_report(&trace, &BTreeMap::new());
        assert!(report.contains("--- call-tree profile ---"), "{report}");
        assert!(report.contains("phase coverage:"), "{report}");
        // A span-free trace degrades gracefully.
        let empty = LoadedTrace {
            events: vec![completed(0, 0, 1.0, 0.5)],
            ..LoadedTrace::default()
        };
        let report = render_report(&empty, &BTreeMap::new());
        assert!(report.contains("no spans recorded"), "{report}");
    }

    #[test]
    fn parser_accepts_all_three_line_shapes() {
        let text = concat!(
            "{\"schema\":\"easeml-trace\",\"version\":2}\n",
            "{\"seq\":1,\"event\":{\"TrainingCompleted\":{\"user\":0,\"model\":1,\
             \"cost\":1.0,\"quality\":0.5,\"parent\":0}}}\n",
            "{\"HybridFallback\":{\"reason\":\"frozen\",\"parent\":0}}\n",
            "\n",
            "garbage line\n",
            "{\"seq\":2,\"event\":{\"SpanEnd\":{\"span\":3,\"ts_ns\":12}}}\n",
        );
        let trace = parse_trace(text);
        assert_eq!(trace.schema_version, Some(2));
        assert_eq!(trace.skipped_lines, 1);
        assert_eq!(trace.events.len(), 3);
        assert!(matches!(trace.events[0], Event::TrainingCompleted { .. }));
        assert!(matches!(trace.events[1], Event::HybridFallback { .. }));
        assert!(matches!(trace.events[2], Event::SpanEnd { span: 3, .. }));
    }

    #[test]
    fn regret_report_matches_the_live_recorder_fold() {
        let events = vec![
            completed(0, 0, 2.0, 0.5),
            completed(1, 0, 1.0, 0.8),
            completed(0, 1, 4.0, 0.9),
        ];
        let report = regret_report(&events, &BTreeMap::new());
        // Independently fold through the live recorder: totals must agree
        // exactly — it is literally the same fold.
        let ts = TimeSeriesRecorder::new();
        for e in &events {
            ts.fold(e);
        }
        let live = ts.snapshot().cum_regret();
        assert_eq!(report.aggregate.total, live.total);
        assert_eq!(report.aggregate.arm_picking, live.arm_picking);
        assert!(report.is_consistent(1e-12));
        assert_eq!(report.rounds, 3);
        assert!((report.clock - 7.0).abs() < 1e-12);
        assert_eq!(report.per_user.len(), 2);
    }

    #[test]
    fn regret_report_honours_explicit_targets() {
        let events = vec![completed(0, 0, 1.0, 0.8)];
        let mut targets = BTreeMap::new();
        targets.insert(0usize, 0.8);
        let with_target = regret_report(&events, &targets);
        // Pre-completion regret is 0.8 over 1 unit of cost, then zero.
        assert!((with_target.per_user[&0].total - 0.8).abs() < 1e-12);
        let without = regret_report(&events, &BTreeMap::new());
        assert!((without.per_user[&0].total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn calibration_pairs_predictions_with_next_completion_per_user() {
        // User 0: a perfectly calibrated prediction (outcome == mean) and
        // one three-σ miss; user 1 interleaves and pairs independently.
        let events = vec![
            chosen(0, 0.5, 0.1),
            chosen(1, 0.2, 0.1),
            completed(1, 0, 1.0, 0.2), // pairs with user 1's prediction
            completed(0, 0, 1.0, 0.5), // pairs with user 0's first
            chosen(0, 0.5, 0.1),
            completed(0, 1, 1.0, 0.95), // 4.5σ above the mean
        ];
        let report = calibration_report(&events);
        assert_eq!(report.pairs, 3);
        assert_eq!(report.unscored, 0);
        // Two of three outcomes are inside every interval; the 4.5σ miss
        // is outside all of them.
        for (nominal, observed) in &report.coverage {
            assert!(
                (*observed - 2.0 / 3.0).abs() < 1e-12,
                "{nominal}: {observed}"
            );
        }
        assert!(report.rms_z > 1.0, "the miss inflates rms z");
    }

    #[test]
    fn calibration_skips_v1_predictions_without_posterior_stats() {
        let events = vec![
            Event::ArmChosen {
                user: 0,
                arm: 0,
                ucb: 1.0,
                beta: 4.0,
                cost: 1.0,
                mean: f64::NAN,
                sigma: f64::NAN,
                parent: 0,
            },
            completed(0, 0, 1.0, 0.5),
        ];
        let report = calibration_report(&events);
        assert_eq!(report.pairs, 0);
        assert_eq!(report.unscored, 1);
    }

    #[test]
    fn fallback_timeline_locates_fallbacks_on_the_cost_clock() {
        let events = vec![
            completed(0, 0, 2.0, 0.5),
            completed(1, 0, 3.0, 0.6),
            Event::HybridFallback {
                reason: "frozen".into(),
                parent: 0,
            },
            completed(0, 1, 1.0, 0.7),
        ];
        let timeline = fallback_timeline(&events);
        assert_eq!(timeline.len(), 1);
        assert!((timeline[0].clock - 5.0).abs() < 1e-12);
        assert_eq!(timeline[0].rounds, 2);
        assert_eq!(timeline[0].reason, "frozen");
    }

    fn failed(user: usize, model: usize, cost: f64, kind: &str, attempt: u64) -> Event {
        Event::TrainingFailed {
            user,
            model,
            cost,
            kind: kind.into(),
            attempt,
            parent: 0,
        }
    }

    #[test]
    fn fallback_timeline_charges_censored_cost_to_the_clock() {
        let events = vec![
            completed(0, 0, 2.0, 0.5),
            failed(1, 0, 3.0, "crash", 1),
            Event::HybridFallback {
                reason: "frozen".into(),
                parent: 0,
            },
        ];
        let timeline = fallback_timeline(&events);
        assert_eq!(timeline.len(), 1);
        // The censored run advanced the clock but not the round count.
        assert!((timeline[0].clock - 5.0).abs() < 1e-12);
        assert_eq!(timeline[0].rounds, 1);
    }

    #[test]
    fn fault_report_aggregates_the_fault_vocabulary() {
        let events = vec![
            failed(0, 2, 1.5, "crash", 1),
            Event::RetryScheduled {
                user: 0,
                model: 2,
                attempt: 2,
                backoff_cost: 0.25,
                parent: 0,
            },
            failed(0, 2, 1.75, "crash", 2),
            failed(1, 0, 4.0, "timeout", 1),
            Event::ArmQuarantined {
                user: 0,
                model: 2,
                failures: 2,
                probation_rounds: 16,
                parent: 0,
            },
            completed(1, 1, 1.0, 0.8),
            Event::CheckpointWritten {
                rounds: 1,
                users: 2,
                bytes: 4096,
                parent: 0,
            },
        ];
        let report = fault_report(&events);
        assert_eq!(report.failed_runs, 3);
        assert!((report.censored_cost - 7.25).abs() < 1e-12);
        assert_eq!(report.by_kind.get("crash"), Some(&2));
        assert_eq!(report.by_kind.get("timeout"), Some(&1));
        assert_eq!(report.by_user.get(&0), Some(&2));
        assert_eq!(report.by_user.get(&1), Some(&1));
        assert_eq!(report.retries, 1);
        assert!((report.backoff_cost - 0.25).abs() < 1e-12);
        assert_eq!(report.quarantines, 1);
        assert_eq!(report.quarantined_arms, vec![(0, 2)]);
        assert_eq!(report.checkpoints, 1);
        assert_eq!(report.last_checkpoint_bytes, Some(4096));
    }

    #[test]
    fn fault_report_is_all_zero_on_pre_v3_traces() {
        let events = vec![completed(0, 0, 1.0, 0.5), chosen(0, 0.4, 0.1)];
        assert_eq!(fault_report(&events), FaultReport::default());
    }

    #[test]
    fn faulty_trace_keeps_the_regret_decomposition_consistent() {
        // Censored runs integrate regret over the wasted interval; the
        // Theorem 1 split must still sum to the undecomposed total.
        let events = vec![
            completed(0, 0, 2.0, 0.5),
            failed(0, 1, 3.0, "crash", 1),
            completed(1, 0, 1.0, 0.7),
            failed(1, 2, 0.5, "timeout", 1),
            completed(0, 1, 4.0, 0.9),
        ];
        let report = regret_report(&events, &BTreeMap::new());
        assert!(report.is_consistent(1e-9), "{report:?}");
        // Clock includes the censored cost; rounds only count completions.
        assert!((report.clock - 10.5).abs() < 1e-12);
        assert_eq!(report.rounds, 3);
    }

    fn dispatched(user: usize, model: usize, device: usize, at: f64) -> Event {
        Event::RunDispatched {
            user,
            model,
            device,
            cost: 1.0,
            at,
            parent: 0,
        }
    }

    fn finished(user: usize, model: usize, device: usize, at: f64, ok: bool) -> Event {
        Event::RunFinished {
            user,
            model,
            device,
            at,
            ok,
            parent: 0,
        }
    }

    #[test]
    fn exec_report_tracks_devices_overlap_and_queueing_delay() {
        // Device 0 runs two jobs back to back with an idle gap between;
        // device 1 (two slots) overlaps two jobs, one of them censored.
        let events = vec![
            dispatched(0, 0, 0, 0.0),
            dispatched(1, 0, 1, 0.0),
            dispatched(2, 1, 1, 0.5),
            finished(0, 0, 0, 2.0, true),
            finished(1, 0, 1, 2.5, true),
            Event::DeviceIdle {
                device: 0,
                idle: 1.0,
                at: 3.0,
                parent: 0,
            },
            dispatched(0, 1, 0, 3.0),
            finished(2, 1, 1, 3.5, false),
            finished(0, 1, 0, 4.0, true),
        ];
        let report = exec_report(&events);
        assert_eq!(report.dispatches, 4);
        assert_eq!(report.completions, 4);
        assert_eq!(report.censored, 1);
        assert_eq!(report.peak_in_flight, 3);
        assert!((report.makespan - 4.0).abs() < 1e-12);
        let d0 = &report.per_device[&0];
        assert_eq!(d0.dispatches, 2);
        assert_eq!(d0.censored, 0);
        assert!((d0.busy - 3.0).abs() < 1e-12, "2.0 + 1.0 slot-time");
        assert_eq!(d0.idle_gaps, 1);
        assert!((d0.idle_gap_max - 1.0).abs() < 1e-12);
        let d1 = &report.per_device[&1];
        assert_eq!(d1.dispatches, 2);
        assert_eq!(d1.censored, 1);
        assert!((d1.busy - 5.5).abs() < 1e-12, "overlapping 2.5 + 3.0");
        assert!((report.utilization(0) - 3.0 / 4.0).abs() < 1e-12);
        assert!(
            (report.utilization(1) - 5.5 / 4.0).abs() < 1e-12,
            "multi-slot > 1"
        );
        assert!((report.mean_queueing_delay() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn exec_report_is_empty_on_serial_traces() {
        let events = vec![completed(0, 0, 1.0, 0.5), chosen(0, 0.4, 0.1)];
        let report = exec_report(&events);
        assert_eq!(report, ExecReport::default());
        // And the rendered report omits the section entirely.
        let trace = LoadedTrace {
            events,
            schema_version: Some(3),
            ..LoadedTrace::default()
        };
        let text = render_report(&trace, &BTreeMap::new());
        assert!(!text.contains("multi-device execution"), "{text}");
    }

    #[test]
    fn schema_support_tracks_the_obs_version_and_rejects_newer_traces() {
        // The supported ceiling derives from `easeml_obs::TRACE_SCHEMA_VERSION`
        // at compile time — adding the v6 workload vocabulary moved it with
        // no change here. Pin the current value so a bump is a conscious act.
        assert_eq!(MAX_SUPPORTED_SCHEMA_VERSION, 6);
        let v6 = parse_trace(
            "{\"schema\":\"easeml-trace\",\"version\":6}\n\
             {\"JobArrived\":{\"user\":0,\"seq\":0,\"at\":1.5,\"parent\":0}}\n",
        );
        assert_eq!(v6.schema_version, Some(6));
        assert!(check_schema_version(&v6).is_ok());
        assert!(matches!(v6.events[0], Event::JobArrived { user: 0, .. }));
        let mut v7 = v6.clone();
        v7.schema_version = Some(7);
        let err = check_schema_version(&v7).unwrap_err();
        assert!(err.contains("schema v7"), "{err}");
        assert!(err.contains("v1..=v6"), "{err}");
        assert!(err.contains("upgrade easeml-trace"), "{err}");
    }

    #[test]
    fn report_renders_the_execution_section_for_v4_traces() {
        let events = vec![
            dispatched(0, 0, 0, 0.0),
            finished(0, 0, 0, 1.0, true),
            completed(0, 0, 1.0, 0.5),
        ];
        let trace = LoadedTrace {
            events,
            schema_version: Some(4),
            ..LoadedTrace::default()
        };
        let text = render_report(&trace, &BTreeMap::new());
        for needle in [
            "--- multi-device execution ---",
            "dispatches: 1  finished: 1 (censored 0)  peak in-flight: 1",
            "device 0: runs 1 (censored 0)  busy 1.0000  utilization 100.0%",
            "mean device queueing delay: 0.0000",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn health_report_aggregates_numerical_events() {
        let events = vec![
            Event::JitterRetry {
                attempts: 2,
                jitter: 1e-8,
                parent: 0,
            },
            Event::JitterRetry {
                attempts: 3,
                jitter: 1e-6,
                parent: 0,
            },
            Event::PsdProjectionApplied {
                floor: 0.0,
                clipped: 2,
                clipped_mass: 0.5,
                parent: 0,
            },
            Event::PosteriorUpdated {
                arm: 0,
                reward: 0.5,
                num_obs: 1,
                cond: 10.0,
                parent: 0,
            },
            Event::PosteriorUpdated {
                arm: 0,
                reward: 0.5,
                num_obs: 2,
                cond: 4.0,
                parent: 0,
            },
        ];
        let h = health_report(&events);
        assert_eq!(h.jitter_events, 2);
        assert_eq!(h.jitter_attempts, 5);
        assert!((h.max_jitter - 1e-6).abs() < 1e-18);
        assert_eq!(h.psd_projections, 1);
        assert_eq!(h.eigenvalues_clipped, 2);
        assert!((h.clipped_mass - 0.5).abs() < 1e-12);
        assert_eq!(h.condition_samples, 2);
        assert_eq!(h.max_condition, 10.0);
        assert_eq!(h.final_condition, 4.0);
    }

    #[test]
    fn chrome_trace_nests_and_pairs_spans() {
        let events = vec![
            Event::SpanStart {
                span: 1,
                parent: 0,
                name: "scheduler_step".into(),
                ts_ns: 1_000,
            },
            Event::SpanStart {
                span: 2,
                parent: 1,
                name: "pick_arm".into(),
                ts_ns: 2_000,
            },
            Event::SpanEnd {
                span: 2,
                ts_ns: 3_000,
            },
            Event::SpanEnd {
                span: 1,
                ts_ns: 5_000,
            },
            Event::SpanStart {
                span: 3,
                parent: 0,
                name: "unclosed".into(),
                ts_ns: 6_000,
            },
        ];
        let json = chrome_trace(&events);
        assert!(json.starts_with('[') && json.ends_with(']'), "{json}");
        assert!(
            json.contains(
                "{\"name\":\"scheduler_step\",\"ph\":\"X\",\"ts\":1.000,\"dur\":4.000,\
                 \"pid\":1,\"tid\":1,\"args\":{\"span\":1,\"parent\":0}}"
            ),
            "{json}"
        );
        assert!(
            json.contains("\"name\":\"pick_arm\",\"ph\":\"X\",\"ts\":2.000,\"dur\":1.000"),
            "{json}"
        );
        assert!(
            json.contains("\"name\":\"unclosed\",\"ph\":\"X\",\"ts\":6.000,\"dur\":0.000"),
            "{json}"
        );
        // Three complete events, comma-separated.
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 3);
    }

    #[test]
    fn report_renders_every_section() {
        let events = vec![
            chosen(0, 0.4, 0.2),
            completed(0, 0, 1.0, 0.5),
            Event::HybridFallback {
                reason: "frozen".into(),
                parent: 0,
            },
            Event::JitterRetry {
                attempts: 1,
                jitter: 1e-9,
                parent: 0,
            },
            failed(0, 1, 2.0, "crash", 1),
        ];
        let trace = LoadedTrace {
            events,
            schema_version: Some(3),
            ..LoadedTrace::default()
        };
        let text = render_report(&trace, &BTreeMap::new());
        for section in [
            "regret decomposition (Theorem 1)",
            "decomposition consistent: true",
            "GP calibration",
            "hybrid fallbacks",
            "fault tolerance",
            "TrainingFailed: 1  (censored cost 2.0000)",
            "  crash: 1",
            "numerical health",
            "jitter retries: 1 event(s)",
            "telemetry at scale",
            "sketch-vs-exact cross-check: pass",
        ] {
            assert!(text.contains(section), "missing {section:?} in:\n{text}");
        }
    }

    fn seq_frame(seq: u64, event: &Event) -> String {
        format!("{{\"seq\":{seq},\"event\":{}}}", event.to_json())
    }

    #[test]
    fn seq_frames_surface_gaps_and_bounds() {
        let text = format!(
            "{}\n{}\n{}\n",
            seq_frame(1, &completed(0, 0, 1.0, 0.5)),
            seq_frame(2, &completed(1, 0, 1.0, 0.6)),
            seq_frame(5, &completed(2, 0, 1.0, 0.7)), // 3 and 4 lost
        );
        let trace = parse_trace(&text);
        assert_eq!(trace.first_seq, Some(1));
        assert_eq!(trace.last_seq, Some(5));
        assert_eq!(trace.seq_gaps, 2);
        let report = render_report(&trace, &BTreeMap::new());
        assert!(
            report.contains("frames: seq 1..=5  missing: 2  file segment(s): 1"),
            "{report}"
        );
    }

    #[test]
    fn rotation_merge_restores_recording_order_and_counts_seams() {
        let dir = std::env::temp_dir().join(format!("easeml-trace-rot-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let live = dir.join("trace.jsonl");
        // `.2` is the oldest segment, `.1` newer, the live file newest.
        // Frame 4 was lost between `.1` and the live file.
        std::fs::write(
            dir.join("trace.jsonl.2"),
            format!(
                "{{\"schema\":\"easeml-trace\",\"version\":4}}\n{}\n",
                seq_frame(1, &completed(0, 0, 1.0, 0.1))
            ),
        )
        .unwrap();
        std::fs::write(
            dir.join("trace.jsonl.1"),
            format!(
                "{}\n{}\n",
                seq_frame(2, &completed(1, 0, 1.0, 0.2)),
                seq_frame(3, &completed(2, 0, 1.0, 0.3))
            ),
        )
        .unwrap();
        std::fs::write(
            &live,
            format!("{}\n", seq_frame(5, &completed(3, 0, 1.0, 0.4))),
        )
        .unwrap();

        let trace = load_trace_with_rotations(&live).unwrap();
        assert_eq!(trace.events.len(), 4);
        let users: Vec<usize> = trace
            .events
            .iter()
            .map(|e| match e {
                Event::TrainingCompleted { user, .. } => *user,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(users, vec![0, 1, 2, 3]);
        assert_eq!(trace.schema_version, Some(4));
        assert_eq!(trace.first_seq, Some(1));
        assert_eq!(trace.last_seq, Some(5));
        assert_eq!(trace.seq_gaps, 1);
        assert_eq!(trace.segments.len(), 3);
        assert_eq!(trace.segment_slices().len(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scale_report_cross_checks_sketch_against_exact() {
        // A deliberately lumpy stream: three quality tiers plus failures,
        // split across two segments to exercise the sketch merge.
        let mut first = LoadedTrace {
            segments: vec![0],
            ..LoadedTrace::default()
        };
        let mut second = LoadedTrace {
            segments: vec![0],
            ..LoadedTrace::default()
        };
        for i in 0..120usize {
            let quality = match i % 3 {
                0 => 0.9,
                1 => 0.5,
                _ => 0.2,
            };
            let event = if i % 17 == 0 {
                failed(i % 7, 0, 1.0, "crash", 1)
            } else {
                completed(i % 7, 0, 0.5 + (i % 5) as f64, quality)
            };
            if i < 60 {
                first.events.push(event);
            } else {
                second.events.push(event);
            }
        }
        first.merge(second);
        let report = scale_report(&first, &BTreeMap::new());
        assert_eq!(report.segments, 2);
        let merged = report.merged.as_ref().unwrap();
        assert_eq!(merged.regret.count(), 120);
        let check = &report.cross_check;
        assert!(!check.skipped);
        assert_eq!(check.quantiles_checked, SCALE_QUANTILES.len());
        assert!(
            check.passed(),
            "max rel err {} over tolerance {}",
            check.max_rel_err,
            check.tolerance
        );
        // The merged sketch must agree with a single whole-stream fold.
        let whole = scale_report(
            &LoadedTrace {
                events: first.events.clone(),
                segments: vec![0],
                ..LoadedTrace::default()
            },
            &BTreeMap::new(),
        );
        // Bucket-identical (the running `sum` may differ in the last ulp
        // from the different accumulation order).
        let whole_regret = &whole.merged.as_ref().unwrap().regret;
        assert_eq!(whole_regret.count(), merged.regret.count());
        for (q, _) in SCALE_QUANTILES {
            assert_eq!(whole_regret.quantile(q), merged.regret.quantile(q));
        }
        // Top offender boards are populated from the same fold.
        assert!(!report.scale.worst_cost.is_empty());
        assert!(!report.scale.worst_regret.is_empty());
    }

    #[test]
    fn exec_report_sketches_follow_the_device_stream() {
        let events = vec![
            Event::RunDispatched {
                user: 0,
                model: 0,
                device: 0,
                cost: 1.0,
                at: 0.0,
                parent: 0,
            },
            Event::RunFinished {
                user: 0,
                model: 0,
                device: 0,
                at: 2.0,
                ok: true,
                parent: 0,
            },
            Event::DeviceIdle {
                device: 0,
                idle: 0.5,
                at: 2.5,
                parent: 0,
            },
        ];
        let report = exec_report(&events);
        assert_eq!(report.busy_spans.count(), 1);
        assert!((report.busy_spans.quantile(0.5).unwrap() - 2.0).abs() <= 0.02 * 2.0);
        assert_eq!(report.queueing_delay.count(), 1);
        assert!((report.queueing_delay.quantile(0.5).unwrap() - 0.5).abs() <= 0.02 * 0.5);
        let trace = LoadedTrace {
            events,
            schema_version: Some(4),
            ..LoadedTrace::default()
        };
        let text = render_report(&trace, &BTreeMap::new());
        assert!(text.contains("queueing-delay quantiles:"), "{text}");
        assert!(text.contains("busy-span quantiles:"), "{text}");
    }
}
