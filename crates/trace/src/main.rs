//! `easeml-trace` — offline analytics over recorded ease.ml traces.
//!
//! ```text
//! easeml-trace report <trace.jsonl> [--target USER=QUALITY]...
//! easeml-trace chrome <trace.jsonl>
//! ```
//!
//! `report` prints the regret decomposition (Theorem 1), the GP
//! calibration table, the hybrid-fallback timeline, and the
//! numerical-health summary. `chrome` writes Chrome trace-event JSON to
//! stdout — redirect to a file and load it in `chrome://tracing` or
//! Perfetto to see the causal span tree.

use std::collections::BTreeMap;
use std::path::Path;
use std::process::ExitCode;

const USAGE: &str = "usage: easeml-trace <report|chrome> <trace.jsonl> [--target USER=QUALITY]...";

fn parse_targets(args: &[String]) -> Result<BTreeMap<usize, f64>, String> {
    let mut targets = BTreeMap::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg != "--target" {
            return Err(format!("unknown argument {arg:?}\n{USAGE}"));
        }
        let spec = it
            .next()
            .ok_or_else(|| format!("--target needs USER=QUALITY\n{USAGE}"))?;
        let (user, quality) = spec
            .split_once('=')
            .ok_or_else(|| format!("--target {spec:?} is not USER=QUALITY"))?;
        let user: usize = user
            .parse()
            .map_err(|_| format!("--target user {user:?} is not an integer"))?;
        let quality: f64 = quality
            .parse()
            .map_err(|_| format!("--target quality {quality:?} is not a number"))?;
        targets.insert(user, quality);
    }
    Ok(targets)
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (command, path, rest) = match args.as_slice() {
        [command, path, rest @ ..] => (command.as_str(), Path::new(path), rest),
        _ => return Err(USAGE.to_string()),
    };
    // `report` folds rotated siblings (`<path>.N`) back in so a rotated
    // sink's history is analyzed as one stream; `chrome` keeps the single
    // file (the span tree only makes sense within one segment).
    match command {
        "report" => {
            let trace = easeml_trace::load_trace_with_rotations(path)?;
            let targets = parse_targets(rest)?;
            print!("{}", easeml_trace::render_report(&trace, &targets));
            Ok(())
        }
        "chrome" => {
            if !rest.is_empty() {
                return Err(format!("chrome takes no flags\n{USAGE}"));
            }
            let trace = easeml_trace::load_trace(path)?;
            println!("{}", easeml_trace::chrome_trace(&trace.events));
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("easeml-trace: {message}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::parse_targets;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn targets_parse_into_the_map() {
        let t = parse_targets(&strings(&["--target", "0=0.9", "--target", "3=0.75"])).unwrap();
        assert_eq!(t.len(), 2);
        assert!((t[&0] - 0.9).abs() < 1e-12);
        assert!((t[&3] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn malformed_targets_are_rejected() {
        assert!(parse_targets(&strings(&["--target"])).is_err());
        assert!(parse_targets(&strings(&["--target", "nope"])).is_err());
        assert!(parse_targets(&strings(&["--target", "x=0.9"])).is_err());
        assert!(parse_targets(&strings(&["--target", "0=x"])).is_err());
        assert!(parse_targets(&strings(&["--bogus"])).is_err());
        assert!(parse_targets(&[]).unwrap().is_empty());
    }
}
