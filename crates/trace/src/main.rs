//! `easeml-trace` — offline analytics over recorded ease.ml traces.
//!
//! ```text
//! easeml-trace report <trace.jsonl> [--target USER=QUALITY]...
//! easeml-trace workload-report <trace.jsonl> [--target USER=QUALITY]...
//! easeml-trace chrome <trace.jsonl>
//! easeml-trace profile <trace.jsonl>... [--users N,N,...] [--folded PATH]
//! easeml-trace explain <trace.jsonl> [--round N]
//! easeml-trace record <scenario.json> <out.jsonl>
//! easeml-trace replay-diff <scenario.json> <trace.jsonl> [--mutate-at N]
//! easeml-trace recovery-report <wal-dir>
//! easeml-trace --version
//! ```
//!
//! `report` prints the regret decomposition (Theorem 1), the GP
//! calibration table, the hybrid-fallback timeline, and the
//! numerical-health summary. `chrome` writes Chrome trace-event JSON to
//! stdout — redirect to a file and load it in `chrome://tracing` or
//! Perfetto to see the causal span tree. `profile` folds the span stream
//! of one or more traces into an aggregated call-tree profile with a
//! per-phase self-time table; given several traces from a tenant-count
//! sweep (`--users` pins the counts, otherwise each trace's max user id
//! is used) it also fits the empirical per-phase scaling exponents, and
//! `--folded PATH` writes flamegraph-ready folded stacks.
//!
//! `explain` renders a decision-health report over the trace's witness
//! chains, or with `--round N` one round's full why-chain. `record` runs a
//! pinned [`easeml_trace::ReplayScenario`] through the serial simulator
//! and writes its schema-v5 trace; `replay-diff` re-executes the scenario
//! against the live scheduler (serial and exec D=1) and binary-searches
//! the first divergent round on the rolling state digests — `--mutate-at`
//! arms the test-only picker mutation to prove the harness catches it.
//!
//! `workload-report` renders the open-loop workload view of a schema-v6
//! trace: per-tenant arrivals, FIFO-matched queueing-delay quantiles,
//! tenant churn, the arrival-rate timeline, per-tenant regret, and device
//! utilization.
//!
//! `recovery-report` inspects a write-ahead-log directory without
//! replaying it: record counts per tag, torn-tail status, the last
//! checkpoint barrier, the replay suffix, and an independent
//! re-verification of the commit digest chain. Exits nonzero if the
//! chain does not verify.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "usage: easeml-trace \
                     <report|workload-report|chrome|profile|explain|record|replay-diff\
                     |recovery-report> ... \
                     | --version\n\
                     \x20 report <trace.jsonl> [--target USER=QUALITY]...\n\
                     \x20 workload-report <trace.jsonl> [--target USER=QUALITY]...\n\
                     \x20 chrome <trace.jsonl>\n\
                     \x20 profile <trace.jsonl>... [--users N,N,...] [--folded PATH]\n\
                     \x20 explain <trace.jsonl> [--round N]\n\
                     \x20 record <scenario.json> <out.jsonl>\n\
                     \x20 replay-diff <scenario.json> <trace.jsonl> [--mutate-at N]\n\
                     \x20 recovery-report <wal-dir>";

/// The `--version` line: binary version plus the trace schema range this
/// build can load — the counterpart of the loader's newer-schema rejection.
fn version_line() -> String {
    format!(
        "easeml-trace {} (trace schema v{}..=v{} supported)",
        env!("CARGO_PKG_VERSION"),
        easeml_trace::MIN_SUPPORTED_SCHEMA_VERSION,
        easeml_trace::MAX_SUPPORTED_SCHEMA_VERSION,
    )
}

fn parse_targets(args: &[String]) -> Result<BTreeMap<usize, f64>, String> {
    let mut targets = BTreeMap::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg != "--target" {
            return Err(format!("unknown argument {arg:?}\n{USAGE}"));
        }
        let spec = it
            .next()
            .ok_or_else(|| format!("--target needs USER=QUALITY\n{USAGE}"))?;
        let (user, quality) = spec
            .split_once('=')
            .ok_or_else(|| format!("--target {spec:?} is not USER=QUALITY"))?;
        let user: usize = user
            .parse()
            .map_err(|_| format!("--target user {user:?} is not an integer"))?;
        let quality: f64 = quality
            .parse()
            .map_err(|_| format!("--target quality {quality:?} is not a number"))?;
        targets.insert(user, quality);
    }
    Ok(targets)
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--version" || a == "-V") {
        println!("{}", version_line());
        return Ok(());
    }
    let (command, path, rest) = match args.as_slice() {
        [command, path, rest @ ..] => (command.as_str(), Path::new(path), rest),
        _ => return Err(USAGE.to_string()),
    };
    // `report` folds rotated siblings (`<path>.N`) back in so a rotated
    // sink's history is analyzed as one stream; `chrome` keeps the single
    // file (the span tree only makes sense within one segment).
    match command {
        "report" => {
            let trace = easeml_trace::load_trace_with_rotations(path)?;
            let targets = parse_targets(rest)?;
            print!("{}", easeml_trace::render_report(&trace, &targets));
            Ok(())
        }
        "workload-report" => {
            let trace = easeml_trace::load_trace_with_rotations(path)?;
            let targets = parse_targets(rest)?;
            print!("{}", easeml_trace::render_workload_report(&trace, &targets));
            Ok(())
        }
        "chrome" => {
            if !rest.is_empty() {
                return Err(format!("chrome takes no flags\n{USAGE}"));
            }
            let trace = easeml_trace::load_trace(path)?;
            println!("{}", easeml_trace::chrome_trace(&trace.events));
            Ok(())
        }
        "profile" => {
            let (paths, users, folded) = parse_profile_args(path, rest)?;
            if let Some(list) = &users {
                if list.len() != paths.len() {
                    return Err(format!(
                        "--users lists {} count(s) but {} trace(s) were given",
                        list.len(),
                        paths.len()
                    ));
                }
            }
            let mut runs = Vec::new();
            for (i, p) in paths.iter().enumerate() {
                let trace = easeml_trace::load_trace_with_rotations(Path::new(p))?;
                let u = users
                    .as_ref()
                    .map_or_else(|| infer_tenant_count(&trace.events), |list| list[i]);
                runs.push((u, easeml_trace::profile_of(&trace)));
            }
            print!("{}", easeml_trace::render_profile(&runs));
            if let Some(out_path) = folded {
                let mut merged = easeml_obs::CallTreeProfile::new();
                for (_, profile) in &runs {
                    merged.merge(profile);
                }
                std::fs::write(&out_path, merged.folded_stacks())
                    .map_err(|e| format!("writing {}: {e}", out_path.display()))?;
                eprintln!("folded stacks written to {}", out_path.display());
            }
            Ok(())
        }
        "explain" => {
            let round = parse_explain_args(rest)?;
            let trace = easeml_trace::load_trace_with_rotations(path)?;
            match round {
                Some(round) => {
                    print!(
                        "{}",
                        easeml_trace::render_explain_round(&trace.events, round)?
                    );
                }
                None => {
                    let records = easeml_obs::witness_records(&trace.events);
                    print!(
                        "{}",
                        easeml_trace::render_decision_health(&easeml_trace::decision_health(
                            &records
                        ))
                    );
                }
            }
            Ok(())
        }
        "record" => {
            let [out_path] = rest else {
                return Err(format!("record takes <scenario.json> <out.jsonl>\n{USAGE}"));
            };
            let scenario = load_scenario(path)?;
            let jsonl = easeml_trace::record_trace(&scenario)?;
            std::fs::write(out_path, &jsonl).map_err(|e| format!("writing {out_path}: {e}"))?;
            eprintln!(
                "recorded {} line(s) to {out_path} ({})",
                jsonl.lines().count(),
                version_line()
            );
            Ok(())
        }
        "replay-diff" => {
            let (trace_path, mutate_at) = parse_replay_args(rest)?;
            let scenario = load_scenario(path)?;
            let trace = easeml_trace::load_trace_with_rotations(Path::new(&trace_path))?;
            let legs = easeml_trace::replay_diff(&scenario, &trace, mutate_at)?;
            let recorded_rounds = easeml_trace::digests_of(&trace.events).len();
            print!(
                "{}",
                easeml_trace::render_replay_diff(&scenario, recorded_rounds, &legs, mutate_at)
            );
            if legs.iter().any(|l| l.divergence.is_some()) {
                return Err("replay diverged from the recorded trace".to_string());
            }
            Ok(())
        }
        "recovery-report" => {
            if !rest.is_empty() {
                return Err(format!("recovery-report takes <wal-dir>\n{USAGE}"));
            }
            let (text, chain_ok) = easeml_trace::recovery_report(path)?;
            print!("{text}");
            if !chain_ok {
                return Err("the WAL digest chain does not verify".to_string());
            }
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    }
}

/// Reads and parses a [`easeml_trace::ReplayScenario`] JSON file.
fn load_scenario(path: &Path) -> Result<easeml_trace::ReplayScenario, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    easeml_trace::ReplayScenario::from_json(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Parses `explain`'s argument tail: an optional `--round N`.
fn parse_explain_args(rest: &[String]) -> Result<Option<u64>, String> {
    match rest {
        [] => Ok(None),
        [flag, n] if flag == "--round" => n
            .parse()
            .map(Some)
            .map_err(|_| format!("--round {n:?} is not an unsigned integer")),
        _ => Err(format!("explain takes [--round N]\n{USAGE}")),
    }
}

/// Parses `replay-diff`'s argument tail: the trace path and an optional
/// `--mutate-at N`.
fn parse_replay_args(rest: &[String]) -> Result<(String, Option<u64>), String> {
    match rest {
        [trace] => Ok((trace.clone(), None)),
        [trace, flag, n] if flag == "--mutate-at" => n
            .parse()
            .map(|step| (trace.clone(), Some(step)))
            .map_err(|_| format!("--mutate-at {n:?} is not an unsigned integer")),
        _ => Err(format!(
            "replay-diff takes <scenario.json> <trace.jsonl> [--mutate-at N]\n{USAGE}"
        )),
    }
}

/// Parsed `profile` argument tail: trace paths, `--users` counts,
/// `--folded` output path.
type ProfileArgs = (Vec<PathBuf>, Option<Vec<usize>>, Option<PathBuf>);

/// Splits `profile`'s argument tail into extra trace paths and flags.
fn parse_profile_args(first: &Path, rest: &[String]) -> Result<ProfileArgs, String> {
    let mut paths = vec![first.to_path_buf()];
    let mut users = None;
    let mut folded = None;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--users" => {
                let spec = it
                    .next()
                    .ok_or_else(|| format!("--users needs N,N,...\n{USAGE}"))?;
                let parsed: Result<Vec<usize>, _> =
                    spec.split(',').map(str::trim).map(str::parse).collect();
                users = Some(parsed.map_err(|_| {
                    format!("--users {spec:?} is not a comma-separated integer list")
                })?);
            }
            "--folded" => {
                let p = it
                    .next()
                    .ok_or_else(|| format!("--folded needs a path\n{USAGE}"))?;
                folded = Some(PathBuf::from(p));
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown argument {flag:?}\n{USAGE}"));
            }
            path => paths.push(PathBuf::from(path)),
        }
    }
    Ok((paths, users, folded))
}

/// Tenant count implied by a trace: one past the highest user id any event
/// carries (0 when no event names a user).
fn infer_tenant_count(events: &[easeml_obs::Event]) -> usize {
    events
        .iter()
        .filter_map(easeml_obs::Event::user)
        .max()
        .map_or(0, |u| u + 1)
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("easeml-trace: {message}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{
        infer_tenant_count, parse_explain_args, parse_profile_args, parse_replay_args,
        parse_targets, version_line,
    };
    use std::path::Path;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn profile_args_collect_paths_and_flags() {
        let (paths, users, folded) = parse_profile_args(
            Path::new("a.jsonl"),
            &strings(&[
                "b.jsonl",
                "--users",
                "1000, 10000",
                "--folded",
                "out.folded",
            ]),
        )
        .unwrap();
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[1], Path::new("b.jsonl"));
        assert_eq!(users, Some(vec![1_000, 10_000]));
        assert_eq!(folded.as_deref(), Some(Path::new("out.folded")));

        let (paths, users, folded) = parse_profile_args(Path::new("a.jsonl"), &[]).unwrap();
        assert_eq!((paths.len(), users, folded), (1, None, None));

        assert!(parse_profile_args(Path::new("a"), &strings(&["--users"])).is_err());
        assert!(parse_profile_args(Path::new("a"), &strings(&["--users", "x,y"])).is_err());
        assert!(parse_profile_args(Path::new("a"), &strings(&["--folded"])).is_err());
        assert!(parse_profile_args(Path::new("a"), &strings(&["--bogus"])).is_err());
    }

    #[test]
    fn tenant_count_is_inferred_from_events() {
        use easeml_obs::Event;
        assert_eq!(infer_tenant_count(&[]), 0);
        let events = vec![
            Event::TrainingCompleted {
                user: 41,
                model: 0,
                cost: 1.0,
                quality: 0.5,
                parent: 0,
            },
            Event::SpanEnd { span: 1, ts_ns: 5 },
        ];
        assert_eq!(infer_tenant_count(&events), 42);
    }

    #[test]
    fn targets_parse_into_the_map() {
        let t = parse_targets(&strings(&["--target", "0=0.9", "--target", "3=0.75"])).unwrap();
        assert_eq!(t.len(), 2);
        assert!((t[&0] - 0.9).abs() < 1e-12);
        assert!((t[&3] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn version_line_names_the_supported_schema_range() {
        let line = version_line();
        assert!(line.starts_with("easeml-trace "), "{line}");
        assert!(
            line.contains(&format!(
                "schema v{}..=v{} supported",
                easeml_trace::MIN_SUPPORTED_SCHEMA_VERSION,
                easeml_trace::MAX_SUPPORTED_SCHEMA_VERSION
            )),
            "{line}"
        );
    }

    #[test]
    fn explain_and_replay_args_parse_their_flags() {
        assert_eq!(parse_explain_args(&[]).unwrap(), None);
        assert_eq!(
            parse_explain_args(&strings(&["--round", "12"])).unwrap(),
            Some(12)
        );
        assert!(parse_explain_args(&strings(&["--round", "x"])).is_err());
        assert!(parse_explain_args(&strings(&["--bogus"])).is_err());

        assert_eq!(
            parse_replay_args(&strings(&["t.jsonl"])).unwrap(),
            ("t.jsonl".to_string(), None)
        );
        assert_eq!(
            parse_replay_args(&strings(&["t.jsonl", "--mutate-at", "4"])).unwrap(),
            ("t.jsonl".to_string(), Some(4))
        );
        assert!(parse_replay_args(&[]).is_err());
        assert!(parse_replay_args(&strings(&["t", "--mutate-at", "x"])).is_err());
    }

    #[test]
    fn malformed_targets_are_rejected() {
        assert!(parse_targets(&strings(&["--target"])).is_err());
        assert!(parse_targets(&strings(&["--target", "nope"])).is_err());
        assert!(parse_targets(&strings(&["--target", "x=0.9"])).is_err());
        assert!(parse_targets(&strings(&["--target", "0=x"])).is_err());
        assert!(parse_targets(&strings(&["--bogus"])).is_err());
        assert!(parse_targets(&[]).unwrap().is_empty());
    }
}
