//! Offline WAL inspection: `easeml-trace recovery-report <wal-dir>`.
//!
//! Reads a write-ahead-log directory without replaying anything and
//! renders what a recovery *would* see: per-tag record counts, the torn
//! tail (if the process died mid-write), the last checkpoint barrier, the
//! replay suffix, and — the load-bearing part — an independent
//! verification of the commit digest chain. Every `round-commit` /
//! `exec-completion` record carries the rolling witness digest at that
//! commit; since [`easeml::witness::DecisionLog`] folds exactly
//! `(round, user, arm, censored)` per commit, the report re-folds each
//! link with [`easeml_obs::RollingDigest`] and checks it lands on the
//! logged value. A chain that verifies here is a chain recovery can
//! replay bit-exactly; a mismatch means the log was corrupted in a way
//! CRC framing cannot catch (e.g. records spliced from different runs).

use easeml_obs::RollingDigest;
use easeml_wal::{read_log, DurableEvent, WalLog};
use std::fmt::Write as _;
use std::path::Path;

/// One commit's digest-fold, exactly mirroring `DecisionLog::record`.
fn fold_link(prev: u64, round: u64, user: u64, arm: u64, censored: bool) -> u64 {
    let mut digest = RollingDigest::from_value(prev);
    digest.absorb_u64(round);
    digest.absorb_u64(user);
    digest.absorb_u64(arm);
    digest.absorb_u64(u64::from(censored));
    digest.value()
}

/// Outcome of walking the commit chain of one log.
struct ChainCheck {
    /// Links whose fold from the previous digest matched.
    verified: u64,
    /// Commits with no predecessor in the log (at most one: the first
    /// commit of a log that starts mid-stream, after compaction).
    anchored: u64,
    /// First divergence, as a human-readable description.
    mismatch: Option<String>,
    /// Digest of the last commit or mark seen, if any.
    last_digest: Option<u64>,
}

/// Walks the records in order, re-folding each commit from its
/// predecessor. Checkpoint marks re-seed the chain (their digest is the
/// witness digest at the barrier) and must agree with the preceding
/// commit when one exists.
fn check_chain(events: &[DurableEvent]) -> ChainCheck {
    let mut prev: Option<u64> = None;
    let mut check = ChainCheck {
        verified: 0,
        anchored: 0,
        mismatch: None,
        last_digest: None,
    };
    for (index, event) in events.iter().enumerate() {
        let (round, user, arm, censored, digest) = match *event {
            DurableEvent::RoundCommit {
                round,
                user,
                arm,
                censored,
                digest,
                ..
            } => (round, user, arm, censored, digest),
            DurableEvent::ExecCompletion {
                seq,
                user,
                arm,
                censored,
                digest,
            } => (seq, user, arm, censored, digest),
            DurableEvent::CheckpointMark { digest, .. } => {
                if check.mismatch.is_none() {
                    if let Some(p) = prev {
                        if p == digest {
                            check.verified += 1;
                        } else {
                            check.mismatch = Some(format!(
                                "record {index}: checkpoint mark digest {digest:016x} \
                                 disagrees with preceding commit {p:016x}"
                            ));
                        }
                    }
                }
                prev = Some(digest);
                check.last_digest = Some(digest);
                continue;
            }
            _ => continue,
        };
        if check.mismatch.is_none() {
            match prev {
                Some(p) => {
                    let expected = fold_link(p, round, user, arm, censored);
                    if expected == digest {
                        check.verified += 1;
                    } else {
                        check.mismatch = Some(format!(
                            "record {index} (round {round}): folding \
                             (user {user}, arm {arm}, censored {censored}) onto {p:016x} \
                             gives {expected:016x}, log says {digest:016x}"
                        ));
                    }
                }
                None => check.anchored += 1,
            }
        }
        prev = Some(digest);
        check.last_digest = Some(digest);
    }
    check
}

/// Renders the report for an already-read log. Returns the text and
/// whether the digest chain verified (`false` on any mismatch).
#[must_use]
pub fn render_wal_report(dir_label: &str, log: &WalLog, events: &[DurableEvent]) -> (String, bool) {
    let mut out = String::new();
    let _ = writeln!(out, "WAL recovery report: {dir_label}");
    let _ = writeln!(
        out,
        "  segments: {} ({} valid byte(s))",
        log.segments.len(),
        log.valid_bytes
    );
    let _ = writeln!(out, "  records: {}", log.records.len());
    // Stable tag order, zero-count tags omitted.
    const TAGS: [&str; 9] = [
        "round-start",
        "obs-resolved",
        "obs-censored",
        "arm-quarantined",
        "probation-release",
        "round-commit",
        "checkpoint-mark",
        "exec-dispatch",
        "exec-completion",
    ];
    for tag in TAGS {
        let n = events.iter().filter(|e| e.tag_name() == tag).count();
        if n > 0 {
            let _ = writeln!(out, "    {tag:<18} {n}");
        }
    }
    match &log.torn {
        Some(t) => {
            let _ = writeln!(
                out,
                "  torn tail: {} in segment {} at offset {} (repaired on next open)",
                t.reason.name(),
                t.segment,
                t.offset
            );
        }
        None => {
            let _ = writeln!(out, "  torn tail: none");
        }
    }
    let last_mark = events.iter().rev().find_map(|e| match *e {
        DurableEvent::CheckpointMark { rounds, digest } => Some((rounds, digest)),
        _ => None,
    });
    match last_mark {
        Some((rounds, digest)) => {
            let _ = writeln!(
                out,
                "  last checkpoint: {rounds} round(s), digest {digest:016x}"
            );
        }
        None => {
            let _ = writeln!(
                out,
                "  last checkpoint: none (full replay from the checkpoint file)"
            );
        }
    }
    let mark_pos = events
        .iter()
        .rposition(|e| matches!(e, DurableEvent::CheckpointMark { .. }));
    let suffix = events
        .iter()
        .skip(mark_pos.map_or(0, |i| i + 1))
        .filter(|e| {
            matches!(
                e,
                DurableEvent::RoundCommit { .. } | DurableEvent::ExecCompletion { .. }
            )
        })
        .count();
    let _ = writeln!(
        out,
        "  replay suffix: {suffix} commit(s) after the last checkpoint barrier"
    );
    let check = check_chain(events);
    let ok = check.mismatch.is_none();
    match check.mismatch {
        Some(detail) => {
            let _ = writeln!(out, "  digest chain: MISMATCH — {detail}");
        }
        None => {
            if let Some(d) = check.last_digest {
                let _ = writeln!(out, "  head digest: {d:016x}");
            }
            let _ = writeln!(
                out,
                "  digest chain: verified ({} link(s), {} anchored)",
                check.verified, check.anchored
            );
        }
    }
    (out, ok)
}

/// Reads the WAL at `dir` and renders the recovery report. `Ok` carries
/// the text and the chain verdict; `Err` means the directory or a record
/// could not be read at all.
pub fn recovery_report(dir: &Path) -> Result<(String, bool), String> {
    let log = read_log(dir).map_err(|e| format!("reading WAL {}: {e}", dir.display()))?;
    let events: Vec<DurableEvent> = log
        .records
        .iter()
        .map(|r| {
            DurableEvent::decode(&r.payload)
                .map_err(|e| format!("undecodable WAL record (CRC passed): {e}"))
        })
        .collect::<Result<_, _>>()?;
    Ok(render_wal_report(&dir.display().to_string(), &log, &events))
}

#[cfg(test)]
mod tests {
    use super::{check_chain, fold_link, recovery_report, render_wal_report};
    use easeml_wal::{read_log, DurableEvent, WalOptions, WalWriter};

    fn commit(round: u64, prev: u64) -> (DurableEvent, u64) {
        let digest = fold_link(prev, round, round % 2, round % 3, false);
        (
            DurableEvent::RoundCommit {
                round,
                user: round % 2,
                arm: round % 3,
                censored: false,
                digest,
                rng: [1, 2, 3, round],
            },
            digest,
        )
    }

    #[test]
    fn a_consistent_chain_verifies_with_one_anchor() {
        let seed = 0xfeed_f00d_u64;
        let (c0, d0) = commit(10, seed);
        let (c1, d1) = commit(11, d0);
        let (c2, _) = commit(12, d1);
        let events = vec![
            DurableEvent::RoundStart { round: 10 },
            c0,
            c1,
            DurableEvent::CheckpointMark {
                rounds: 12,
                digest: d1,
            },
            c2,
        ];
        let check = check_chain(&events);
        assert!(check.mismatch.is_none(), "{:?}", check.mismatch);
        // c1 folds from c0, the mark agrees with c1, c2 folds from the
        // mark; only c0 is anchored (its predecessor predates the log).
        assert_eq!((check.verified, check.anchored), (3, 1));
    }

    #[test]
    fn a_spliced_commit_is_flagged() {
        let (c0, d0) = commit(5, 0);
        let (mut c1, _) = commit(6, d0);
        if let DurableEvent::RoundCommit { digest, .. } = &mut c1 {
            *digest ^= 0x4; // a bit flip CRC framing would not catch post-write
        }
        let check = check_chain(&[c0, c1]);
        let detail = check.mismatch.expect("splice must be detected");
        assert!(detail.contains("round 6"), "{detail}");
    }

    #[test]
    fn report_renders_counts_tail_and_verdict_from_a_real_log() {
        let dir = std::env::temp_dir().join(format!("ezml-recovery-report-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mut writer = WalWriter::open(&dir, WalOptions::default()).unwrap();
        let (c0, d0) = commit(0, 0xe);
        let (c1, _) = commit(1, d0);
        for event in [
            DurableEvent::RoundStart { round: 0 },
            c0,
            DurableEvent::CheckpointMark {
                rounds: 1,
                digest: d0,
            },
            DurableEvent::RoundStart { round: 1 },
            c1.clone(),
        ] {
            writer.append(&event.encode()).unwrap();
        }
        writer.sync().unwrap();
        drop(writer);

        let (text, ok) = recovery_report(&dir).unwrap();
        assert!(ok, "{text}");
        assert!(text.contains("round-commit"), "{text}");
        assert!(text.contains("last checkpoint: 1 round(s)"), "{text}");
        assert!(text.contains("replay suffix: 1 commit(s)"), "{text}");
        assert!(text.contains("digest chain: verified"), "{text}");
        assert!(text.contains("torn tail: none"), "{text}");

        // A mismatching chain renders the MISMATCH verdict instead.
        let log = read_log(&dir).unwrap();
        let (bad, _) = commit(9, 0xdead);
        let (bad_text, bad_ok) = render_wal_report("x", &log, &[c1.clone(), bad]);
        assert!(!bad_ok);
        assert!(bad_text.contains("digest chain: MISMATCH"), "{bad_text}");

        let _ = std::fs::remove_dir_all(&dir);
    }
}
