//! `easeml-trace record` / `replay-diff` — the scheduler-equivalence
//! validator.
//!
//! A [`ReplayScenario`] pins everything a run depends on: workload shape,
//! dataset and RNG seeds, strategy, budget, and fault rates. `record` runs
//! the serial simulator under that scenario with a recorder attached and
//! writes the schema-v5 JSONL trace. `replay-diff` re-executes the same
//! scenario against the *live* scheduler — once through the serial
//! simulator and once through the `easeml-exec` engine at D=1 — and
//! compares the per-round rolling state digests the witness chains carry.
//!
//! Because the digest is rolling (digests agree at round `r` iff every
//! decision `≤ r` agrees), the first divergent round is found by binary
//! search over `O(log R)` digest comparisons, and the divergence report
//! shows the recorded and live decision witnesses of that exact round side
//! by side.

use crate::explain::render_witness;
use crate::LoadedTrace;
use easeml::fault::FaultConfig;
use easeml::sim::{simulate_with_recorder, SchedulerKind, SimConfig};
use easeml_data::{Dataset, SynConfig};
use easeml_exec::simulate_multi_device_with_recorder;
use easeml_gp::ArmPrior;
use easeml_obs::json::Json;
use easeml_obs::{
    schema_header_line, witness_records, Event, InMemoryRecorder, RecorderHandle, WitnessRecord,
};
use easeml_sched::PickRule;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex, PoisonError};

/// The environment variable arming the test-only picker mutation
/// (`easeml_sched::Greedy` reads it once at construction): from the given
/// step on, the chosen tenant is rotated by one. `replay-diff --mutate-at`
/// sets it around the live legs to prove the harness pinpoints the exact
/// first divergent round.
pub const MUTATE_ENV_VAR: &str = "EASEML_PICKER_MUTATE_AT";

/// The environment variable is process-global, and `Greedy::new` reads it
/// at construction — so live-leg execution is serialized to keep a mutated
/// replay from leaking into a concurrent clean one (tests in one binary).
static ENV_LOCK: Mutex<()> = Mutex::new(());

/// Everything a recorded run depends on, pinned so `replay-diff` can
/// re-execute it bit for bit. Serialized as a small JSON object.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayScenario {
    /// Tenants in the synthetic workload.
    pub users: usize,
    /// Models per tenant.
    pub models: usize,
    /// Seed of the synthetic dataset.
    pub dataset_seed: u64,
    /// Seed of the scheduler RNG (and of the fault injector, when armed).
    pub sim_seed: u64,
    /// Cost budget of the run.
    pub budget: f64,
    /// Strategy name, as printed by
    /// [`SchedulerKind::name`] (`"hybrid"`, `"greedy(max-gap)"`, ...).
    pub kind: String,
    /// Whether arm selection divides exploration by cost (§3.2).
    pub cost_aware: bool,
    /// Observation-noise variance of the GP posteriors.
    pub noise_var: f64,
    /// Failure probability δ of the β schedules.
    pub delta: f64,
    /// Base crash rate of the fault injector (0 disarms it).
    pub crash_rate: f64,
    /// Base timeout rate of the fault injector.
    pub timeout_rate: f64,
    /// Base invalid-quality rate of the fault injector.
    pub invalid_rate: f64,
}

impl Default for ReplayScenario {
    /// A small, fast scenario: 5 tenants × 4 models, hybrid strategy,
    /// budget 9, no faults — the CI smoke shape.
    fn default() -> Self {
        ReplayScenario {
            users: 5,
            models: 4,
            dataset_seed: 3,
            sim_seed: 7,
            budget: 9.0,
            kind: "hybrid".to_string(),
            cost_aware: true,
            noise_var: 1e-3,
            delta: 0.1,
            crash_rate: 0.0,
            timeout_rate: 0.0,
            invalid_rate: 0.0,
        }
    }
}

impl ReplayScenario {
    /// Parses a scenario from its JSON form. Missing keys keep their
    /// [`Default`] values, so a minimal `{"kind":"hybrid"}` is a valid
    /// scenario.
    ///
    /// # Errors
    ///
    /// Returns the JSON syntax error, or a message when the document is
    /// not an object or a key has the wrong type.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let doc = easeml_obs::json::parse(text).map_err(|e| format!("scenario JSON: {e}"))?;
        let Json::Object(pairs) = doc else {
            return Err("scenario JSON must be an object".to_string());
        };
        let mut out = ReplayScenario::default();
        for (key, value) in &pairs {
            match (key.as_str(), value) {
                ("users", Json::Number(n)) => out.users = *n as usize,
                ("models", Json::Number(n)) => out.models = *n as usize,
                ("dataset_seed", Json::Number(n)) => out.dataset_seed = *n as u64,
                ("sim_seed", Json::Number(n)) => out.sim_seed = *n as u64,
                ("budget", Json::Number(n)) => out.budget = *n,
                ("kind", Json::String(s)) => out.kind = s.clone(),
                ("cost_aware", Json::Bool(b)) => out.cost_aware = *b,
                ("noise_var", Json::Number(n)) => out.noise_var = *n,
                ("delta", Json::Number(n)) => out.delta = *n,
                ("crash_rate", Json::Number(n)) => out.crash_rate = *n,
                ("timeout_rate", Json::Number(n)) => out.timeout_rate = *n,
                ("invalid_rate", Json::Number(n)) => out.invalid_rate = *n,
                (other, _) => {
                    return Err(format!("scenario key {other:?} is unknown or mistyped"));
                }
            }
        }
        Ok(out)
    }

    /// Serializes the scenario as one JSON object (round-trips through
    /// [`ReplayScenario::from_json`]).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"users\":{},\"models\":{},\"dataset_seed\":{},\"sim_seed\":{},\
             \"budget\":{},\"kind\":{},\"cost_aware\":{},\"noise_var\":{},\"delta\":{},\
             \"crash_rate\":{},\"timeout_rate\":{},\"invalid_rate\":{}}}",
            self.users,
            self.models,
            self.dataset_seed,
            self.sim_seed,
            self.budget,
            easeml_obs::json::to_string(self.kind.as_str()),
            self.cost_aware,
            self.noise_var,
            self.delta,
            self.crash_rate,
            self.timeout_rate,
            self.invalid_rate,
        )
    }

    /// The pinned synthetic workload.
    pub fn dataset(&self) -> Dataset {
        SynConfig {
            num_users: self.users,
            num_models: self.models,
            ..SynConfig::paper(0.5, 0.5)
        }
        .generate(self.dataset_seed)
    }

    /// One independent GP prior per tenant, matching the CI harness shape.
    pub fn priors(&self) -> Vec<ArmPrior> {
        (0..self.users)
            .map(|_| ArmPrior::independent(self.models, 0.05))
            .collect()
    }

    /// The pinned simulation parameters, fault injector included.
    pub fn sim_config(&self) -> SimConfig {
        let fault = (self.crash_rate > 0.0 || self.timeout_rate > 0.0 || self.invalid_rate > 0.0)
            .then(|| {
                FaultConfig::new(self.sim_seed)
                    .with_crash_rate(self.crash_rate)
                    .with_timeout_rate(self.timeout_rate)
                    .with_invalid_rate(self.invalid_rate)
            });
        SimConfig {
            budget: self.budget,
            cost_aware: self.cost_aware,
            noise_var: self.noise_var,
            delta: self.delta,
            fault,
        }
    }

    /// Resolves the strategy name back to its [`SchedulerKind`].
    ///
    /// # Errors
    ///
    /// Rejects unknown names and the §5.2 heuristics (`most-cited`,
    /// `most-recent`), which emit no decision witnesses to diff.
    pub fn scheduler_kind(&self) -> Result<SchedulerKind, String> {
        match self.kind.as_str() {
            "fcfs" => Ok(SchedulerKind::Fcfs),
            "round-robin" => Ok(SchedulerKind::RoundRobin),
            "random" => Ok(SchedulerKind::Random),
            "greedy(max-gap)" => Ok(SchedulerKind::Greedy(PickRule::MaxUcbGap)),
            "greedy(max-sigma)" => Ok(SchedulerKind::Greedy(PickRule::MaxSigmaTilde)),
            "greedy(random)" => Ok(SchedulerKind::Greedy(PickRule::Random)),
            "hybrid" | "ease-ml" => Ok(SchedulerKind::Hybrid),
            "most-cited" | "most-recent" => Err(format!(
                "kind {:?} is a §5.2 heuristic; it records no decision witnesses to diff",
                self.kind
            )),
            other => Err(format!("unknown scheduler kind {other:?}")),
        }
    }
}

/// Runs the scenario through the serial simulator with a recorder attached
/// and returns the schema-v5 JSONL trace text (header line first), ready
/// to write to disk — the `record` subcommand.
///
/// # Errors
///
/// Returns the scenario validation error (unknown strategy).
pub fn record_trace(scenario: &ReplayScenario) -> Result<String, String> {
    let events = run_serial(scenario)?;
    let rec = InMemoryRecorder::new();
    for event in events {
        easeml_obs::Recorder::record(&rec, event);
    }
    Ok(format!("{}\n{}", schema_header_line(), rec.to_jsonl()))
}

/// The per-round `(round, digest)` trajectory a run's `DecisionWitness`
/// events carry, sorted by round (multi-device traces commit witnesses in
/// completion order; rounds themselves are the dispatch sequence).
pub fn digests_of(events: &[Event]) -> Vec<(u64, String)> {
    let mut out: Vec<(u64, String)> = events
        .iter()
        .filter_map(|e| match e {
            Event::DecisionWitness { round, digest, .. } => Some((*round, digest.clone())),
            _ => None,
        })
        .collect();
    out.sort_by_key(|&(round, _)| round);
    out
}

/// First round where the two digest trajectories part ways, or `None`
/// when one is a prefix of the other and both end together.
///
/// Binary search, justified by the rolling-digest prefix property: entries
/// equal at index `i` certify that every decision `≤ i` matched, so a
/// single comparison rules an entire half in or out. A run that simply
/// *stops early* while agreeing so far diverges at its first missing
/// round.
pub fn first_divergence(recorded: &[(u64, String)], live: &[(u64, String)]) -> Option<u64> {
    let common = recorded.len().min(live.len());
    let (mut lo, mut hi) = (0usize, common);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if recorded[mid] == live[mid] {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    if lo < common {
        return Some(recorded[lo].0.min(live[lo].0));
    }
    match (recorded.get(common), live.get(common)) {
        (Some(&(round, _)), None) | (None, Some(&(round, _))) => Some(round),
        _ => None,
    }
}

/// One live re-execution compared against the recorded trajectory.
#[derive(Debug, Clone)]
pub struct ReplayLeg {
    /// Which engine replayed the scenario.
    pub label: &'static str,
    /// Rounds the live run resolved.
    pub live_rounds: usize,
    /// First divergent round, if any.
    pub divergence: Option<u64>,
    /// The recorded and live witnesses of the divergent round (either side
    /// may be missing when that run never reached the round).
    pub witness_pair: (Option<WitnessRecord>, Option<WitnessRecord>),
}

/// Re-executes `scenario` against the live scheduler — serial simulator
/// and `easeml-exec` at D=1 — and diffs each leg's digest trajectory
/// against the recorded trace. `mutate_at` arms the test-only picker
/// mutation (see [`MUTATE_ENV_VAR`]) for the live legs, seeding a known
/// divergence the harness must pinpoint.
///
/// # Errors
///
/// Returns a message when the trace carries no decision witnesses or the
/// scenario is invalid.
///
/// # Panics
///
/// Does not panic; the internal environment lock absorbs poisoning.
pub fn replay_diff(
    scenario: &ReplayScenario,
    recorded: &LoadedTrace,
    mutate_at: Option<u64>,
) -> Result<Vec<ReplayLeg>, String> {
    let recorded_digests = digests_of(&recorded.events);
    if recorded_digests.is_empty() {
        return Err(format!(
            "trace carries no DecisionWitness events (schema v{} records them); \
             re-record it with `easeml-trace record`",
            easeml_obs::TRACE_SCHEMA_VERSION
        ));
    }
    let recorded_witnesses = witness_records(&recorded.events);

    let guard = ENV_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(step) = mutate_at {
        std::env::set_var(MUTATE_ENV_VAR, step.to_string());
    }
    let legs: Result<Vec<(&'static str, Vec<Event>)>, String> = (|| {
        Ok(vec![
            ("serial sim", run_serial(scenario)?),
            ("exec D=1", run_exec_single_device(scenario)?),
        ])
    })();
    if mutate_at.is_some() {
        std::env::remove_var(MUTATE_ENV_VAR);
    }
    drop(guard);

    Ok(legs?
        .into_iter()
        .map(|(label, events)| {
            let live_digests = digests_of(&events);
            let divergence = first_divergence(&recorded_digests, &live_digests);
            let witness_pair = divergence.map_or((None, None), |round| {
                let find =
                    |records: &[WitnessRecord]| records.iter().find(|w| w.round == round).cloned();
                (find(&recorded_witnesses), find(&witness_records(&events)))
            });
            ReplayLeg {
                label,
                live_rounds: live_digests.len(),
                divergence,
                witness_pair,
            }
        })
        .collect())
}

/// Renders the `replay-diff` report: per-leg verdicts, and for a divergent
/// leg the recorded and live witnesses of the first divergent round side
/// by side.
pub fn render_replay_diff(
    scenario: &ReplayScenario,
    recorded_rounds: usize,
    legs: &[ReplayLeg],
    mutate_at: Option<u64>,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "=== easeml-trace replay-diff ===");
    let _ = writeln!(
        out,
        "scenario: {} tenants x {} models, kind {}, budget {} \
         (dataset seed {}, sim seed {})",
        scenario.users,
        scenario.models,
        scenario.kind,
        scenario.budget,
        scenario.dataset_seed,
        scenario.sim_seed,
    );
    let _ = writeln!(out, "recorded rounds: {recorded_rounds}");
    if let Some(step) = mutate_at {
        let _ = writeln!(
            out,
            "mutation armed: picker choice rotates from step {step} on ({MUTATE_ENV_VAR})"
        );
    }
    for leg in legs {
        let _ = writeln!(out, "\n--- leg: {} ---", leg.label);
        let _ = writeln!(out, "live rounds: {}", leg.live_rounds);
        match leg.divergence {
            None => {
                let _ = writeln!(
                    out,
                    "zero divergences: the live run reproduces every recorded decision"
                );
            }
            Some(round) => {
                let _ = writeln!(out, "first divergent round: {round}");
                let side = |out: &mut String, title: &str, witness: &Option<WitnessRecord>| {
                    let _ = writeln!(out, "  {title}:");
                    match witness {
                        Some(w) => {
                            for line in render_witness(w).lines() {
                                let _ = writeln!(out, "    {line}");
                            }
                        }
                        None => {
                            let _ = writeln!(out, "    (run ended before this round)");
                        }
                    }
                };
                side(&mut out, "recorded", &leg.witness_pair.0);
                side(&mut out, "live", &leg.witness_pair.1);
            }
        }
    }
    let diverged = legs.iter().filter(|l| l.divergence.is_some()).count();
    let _ = writeln!(
        out,
        "\nresult: {} ({}/{} leg(s) clean)",
        if diverged == 0 { "CLEAN" } else { "DIVERGED" },
        legs.len() - diverged,
        legs.len(),
    );
    out
}

/// Runs the scenario through the serial simulator, returning the recorded
/// event stream.
fn run_serial(scenario: &ReplayScenario) -> Result<Vec<Event>, String> {
    let kind = scenario.scheduler_kind()?;
    let rec = Arc::new(InMemoryRecorder::new());
    let _ = simulate_with_recorder(
        &scenario.dataset(),
        &scenario.priors(),
        kind,
        &scenario.sim_config(),
        &mut StdRng::seed_from_u64(scenario.sim_seed),
        &RecorderHandle::new(rec.clone()),
    );
    Ok(rec.events())
}

/// Runs the scenario through the `easeml-exec` engine on one unit-speed
/// single-slot device — the configuration proven digest-equivalent to the
/// serial simulator — returning the recorded event stream.
fn run_exec_single_device(scenario: &ReplayScenario) -> Result<Vec<Event>, String> {
    let kind = scenario.scheduler_kind()?;
    let rec = Arc::new(InMemoryRecorder::new());
    let _ = simulate_multi_device_with_recorder(
        &scenario.dataset(),
        &scenario.priors(),
        kind,
        &scenario.sim_config(),
        1,
        scenario.sim_seed,
        &RecorderHandle::new(rec.clone()),
    );
    Ok(rec.events())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_trace;

    fn recorded(scenario: &ReplayScenario) -> LoadedTrace {
        parse_trace(&record_trace(scenario).unwrap())
    }

    #[test]
    fn scenario_round_trips_through_json_with_defaults() {
        let scenario = ReplayScenario {
            users: 6,
            crash_rate: 0.2,
            kind: "greedy(max-gap)".to_string(),
            ..ReplayScenario::default()
        };
        let back = ReplayScenario::from_json(&scenario.to_json()).unwrap();
        assert_eq!(back, scenario);
        // Minimal documents fill in defaults.
        let minimal = ReplayScenario::from_json("{\"kind\":\"hybrid\"}").unwrap();
        assert_eq!(minimal, ReplayScenario::default());
        assert!(ReplayScenario::from_json("[1,2]").is_err());
        assert!(ReplayScenario::from_json("{\"bogus\":1}").is_err());
        assert!(ReplayScenario::from_json("{\"users\":\"five\"}").is_err());
    }

    #[test]
    fn heuristic_kinds_are_rejected_with_a_reason() {
        let scenario = ReplayScenario {
            kind: "most-cited".to_string(),
            ..ReplayScenario::default()
        };
        let err = scenario.scheduler_kind().unwrap_err();
        assert!(err.contains("heuristic"), "{err}");
        let unknown = ReplayScenario {
            kind: "dqn".to_string(),
            ..ReplayScenario::default()
        };
        assert!(unknown.scheduler_kind().is_err());
    }

    #[test]
    fn first_divergence_binary_search_matches_a_linear_scan() {
        let traj = |spec: &[(u64, &str)]| -> Vec<(u64, String)> {
            spec.iter().map(|&(r, d)| (r, d.to_string())).collect()
        };
        let a = traj(&[(0, "aa"), (1, "bb"), (2, "cc"), (3, "dd")]);
        assert_eq!(first_divergence(&a, &a), None);
        // Fixtures respect the rolling-digest invariant the search relies
        // on: once diverged, every later digest differs too.
        let mutated = traj(&[(0, "aa"), (1, "bb"), (2, "xx"), (3, "yy")]);
        assert_eq!(first_divergence(&a, &mutated), Some(2));
        let early = traj(&[(0, "zz"), (1, "b2"), (2, "c2"), (3, "d2")]);
        assert_eq!(first_divergence(&a, &early), Some(0));
        // A clean prefix that simply stops early diverges at the first
        // missing round — in either direction.
        let short = traj(&[(0, "aa"), (1, "bb")]);
        assert_eq!(first_divergence(&a, &short), Some(2));
        assert_eq!(first_divergence(&short, &a), Some(2));
        assert_eq!(first_divergence(&[], &[]), None);
        assert_eq!(first_divergence(&a, &[]), Some(0));
    }

    #[test]
    fn clean_replay_reports_zero_divergences_on_both_legs() {
        let scenario = ReplayScenario::default();
        let trace = recorded(&scenario);
        assert_eq!(
            trace.schema_version,
            Some(u64::from(easeml_obs::TRACE_SCHEMA_VERSION))
        );
        let legs = replay_diff(&scenario, &trace, None).unwrap();
        assert_eq!(legs.len(), 2);
        for leg in &legs {
            assert_eq!(leg.divergence, None, "leg {} diverged", leg.label);
            assert!(leg.live_rounds > 0);
        }
        let report = render_replay_diff(&scenario, digests_of(&trace.events).len(), &legs, None);
        assert!(report.contains("zero divergences"), "{report}");
        assert!(
            report.contains("result: CLEAN (2/2 leg(s) clean)"),
            "{report}"
        );
    }

    #[test]
    fn chaos_scenario_still_replays_clean_serially() {
        // Fault injection is seeded, so a censored run replays bit for bit
        // on the serial leg.
        let scenario = ReplayScenario {
            crash_rate: 0.3,
            budget: 12.0,
            ..ReplayScenario::default()
        };
        let trace = recorded(&scenario);
        let records = witness_records(&trace.events);
        assert!(
            records.iter().any(|r| r.censored),
            "chaos scenario should censor at least one round"
        );
        let legs = replay_diff(&scenario, &trace, None).unwrap();
        assert_eq!(legs[0].divergence, None, "serial leg must replay clean");
    }

    #[test]
    fn seeded_mutation_is_pinpointed_at_its_exact_round() {
        let scenario = ReplayScenario {
            kind: "greedy(max-gap)".to_string(),
            budget: 14.0,
            ..ReplayScenario::default()
        };
        let trace = recorded(&scenario);
        let rounds = digests_of(&trace.events).len();
        assert!(rounds > 6, "need enough rounds to mutate mid-run");
        let mutate_at = 4u64;
        let legs = replay_diff(&scenario, &trace, Some(mutate_at)).unwrap();
        for leg in &legs {
            // The mutation rotates the *user* choice from step 4 on; the
            // digest diverges at exactly that round, never earlier. (It
            // can in principle land later if the rotated pick coincides,
            // but the greedy rule on this scenario flips it immediately.)
            assert_eq!(
                leg.divergence,
                Some(mutate_at),
                "leg {} missed the seeded divergence",
                leg.label
            );
            let (rec, live) = &leg.witness_pair;
            let (rec, live) = (rec.as_ref().unwrap(), live.as_ref().unwrap());
            assert_eq!(rec.round, mutate_at);
            assert_eq!(live.round, mutate_at);
            assert_ne!(
                (rec.user, rec.arm),
                (live.user, live.arm),
                "the witness pair must show differing decisions"
            );
        }
        let report = render_replay_diff(&scenario, rounds, &legs, Some(mutate_at));
        assert!(
            report.contains(&format!("first divergent round: {mutate_at}")),
            "{report}"
        );
        assert!(report.contains("result: DIVERGED"), "{report}");
        assert!(report.contains("recorded:"), "{report}");
        assert!(report.contains("live:"), "{report}");

        // And with the mutation disarmed the same scenario is clean again.
        let clean = replay_diff(&scenario, &trace, None).unwrap();
        assert!(clean.iter().all(|l| l.divergence.is_none()));
    }
}
