//! The open-loop workload report (schema v6).
//!
//! Closed-loop traces answer "who got the next device"; open-loop traces
//! recorded by `easeml-workload` also carry *when work arrived* and *who
//! was present* — [`JobArrived`](Event::JobArrived),
//! [`TenantJoined`](Event::TenantJoined),
//! [`TenantRetired`](Event::TenantRetired). This module folds that
//! vocabulary into the quality-of-service questions that only exist in the
//! open-loop regime: per-job queueing delay (FIFO-matching each tenant's
//! arrivals to its dispatches), the arrival-rate timeline, tenant churn,
//! and how much scripted work was still queued when the trace ended.
//!
//! [`render_workload_report`] combines this fold with the existing regret
//! decomposition and device-utilization folds, so one report answers the
//! multi-tenant question end to end: what arrived, who was present, how
//! long jobs waited, and what regret each tenant paid.

use crate::{exec_report, regret_report, LoadedTrace};
use easeml_obs::{Event, QuantileSketch};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Buckets the arrival-rate timeline divides the trace horizon into.
pub const TIMELINE_BUCKETS: usize = 12;

/// One tenant's share of the open-loop workload stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TenantWorkload {
    /// `JobArrived` events for this tenant.
    pub arrivals: u64,
    /// `RunDispatched` events for this tenant (jobs actually served).
    pub served: u64,
    /// `TenantJoined` events (rejoins after churn; the initial engine
    /// registration is implicit and not an event).
    pub joins: u64,
    /// `TenantRetired` events.
    pub retirements: u64,
    /// Whether the tenant's last lifecycle event was a retirement.
    pub ends_retired: bool,
    /// Arrivals never matched to a dispatch — still queued (or orphaned by
    /// a retirement) when the trace ended.
    pub backlogged: u64,
    /// Per-job queueing delay (dispatch time − arrival time), FIFO-matched.
    pub queueing_delay: QuantileSketch,
}

/// The open-loop workload stream summarized.
///
/// A closed-loop trace (schema ≤ 5, or v6 without a workload driver)
/// contains none of the v6 events and yields `arrivals == 0` — renderers
/// use that to skip the section.
#[derive(Debug, Clone, Default)]
pub struct WorkloadReport {
    /// Total `JobArrived` events.
    pub arrivals: u64,
    /// Total `TenantJoined` events (rejoins).
    pub joins: u64,
    /// Total `TenantRetired` events.
    pub retirements: u64,
    /// Latest simulated time any v6 or execution event carries.
    pub horizon: f64,
    /// Per-tenant breakdown, keyed by tenant slot.
    pub per_tenant: BTreeMap<usize, TenantWorkload>,
    /// Queueing delay across all tenants (merge of the per-tenant
    /// sketches).
    pub queueing_delay: QuantileSketch,
    /// Arrival counts per timeline bucket; bucket `i` covers
    /// `[i·width, (i+1)·width)` with `width = horizon /` [`TIMELINE_BUCKETS`].
    pub timeline: Vec<u64>,
}

impl WorkloadReport {
    /// Width of one arrival-timeline bucket in simulated time.
    #[must_use]
    pub fn bucket_width(&self) -> f64 {
        if self.timeline.is_empty() {
            return 0.0;
        }
        self.horizon / self.timeline.len() as f64
    }

    /// Mean arrival rate over the whole horizon (0 when degenerate).
    #[must_use]
    pub fn mean_arrival_rate(&self) -> f64 {
        if self.horizon <= 0.0 {
            return 0.0;
        }
        self.arrivals as f64 / self.horizon
    }

    /// Arrivals never matched to a dispatch, across all tenants.
    #[must_use]
    pub fn backlogged(&self) -> u64 {
        self.per_tenant.values().map(|t| t.backlogged).sum()
    }
}

/// Folds the v6 open-loop vocabulary into a [`WorkloadReport`].
///
/// Queueing delay pairs each tenant's `JobArrived` with its next
/// `RunDispatched` FIFO — the engine dispatches a tenant's jobs in arrival
/// order, so the k-th dispatch serves the k-th arrival. Dispatches without
/// a pending arrival (a closed-loop prefix) contribute no delay sample.
#[must_use]
pub fn workload_report(events: &[Event]) -> WorkloadReport {
    let mut out = WorkloadReport::default();
    let mut pending: BTreeMap<usize, Vec<f64>> = BTreeMap::new();
    let mut arrival_times: Vec<f64> = Vec::new();
    for event in events {
        match event {
            Event::JobArrived { user, at, .. } => {
                out.arrivals += 1;
                let tenant = out.per_tenant.entry(*user).or_default();
                tenant.arrivals += 1;
                if at.is_finite() && *at >= 0.0 {
                    pending.entry(*user).or_default().push(*at);
                    arrival_times.push(*at);
                    out.horizon = out.horizon.max(*at);
                }
            }
            Event::RunDispatched { user, at, .. } => {
                let tenant = out.per_tenant.entry(*user).or_default();
                tenant.served += 1;
                if at.is_finite() {
                    out.horizon = out.horizon.max(*at);
                }
                if let Some(queue) = pending.get_mut(user) {
                    if !queue.is_empty() {
                        let arrived = queue.remove(0);
                        if at.is_finite() && *at >= arrived {
                            let delay = at - arrived;
                            tenant.queueing_delay.insert(delay);
                            out.queueing_delay.insert(delay);
                        }
                    }
                }
            }
            Event::RunFinished { at, .. } if at.is_finite() => {
                out.horizon = out.horizon.max(*at);
            }
            Event::TenantJoined { user, at, .. } => {
                out.joins += 1;
                let tenant = out.per_tenant.entry(*user).or_default();
                tenant.joins += 1;
                tenant.ends_retired = false;
                if at.is_finite() {
                    out.horizon = out.horizon.max(*at);
                }
            }
            Event::TenantRetired { user, at, .. } => {
                out.retirements += 1;
                let tenant = out.per_tenant.entry(*user).or_default();
                tenant.retirements += 1;
                tenant.ends_retired = true;
                if at.is_finite() {
                    out.horizon = out.horizon.max(*at);
                }
            }
            _ => {}
        }
    }
    for (user, queue) in pending {
        if let Some(tenant) = out.per_tenant.get_mut(&user) {
            tenant.backlogged = queue.len() as u64;
        }
    }
    if out.arrivals > 0 {
        out.timeline = vec![0u64; TIMELINE_BUCKETS];
        let width = out.horizon / TIMELINE_BUCKETS as f64;
        for at in arrival_times {
            let bucket = if width > 0.0 {
                ((at / width) as usize).min(TIMELINE_BUCKETS - 1)
            } else {
                0
            };
            out.timeline[bucket] += 1;
        }
    }
    out
}

/// The quantiles the workload section prints.
const DELAY_QUANTILES: [(f64, &str); 3] = [(0.5, "p50"), (0.9, "p90"), (0.99, "p99")];

/// Renders the `easeml-trace workload-report` output: the open-loop fold,
/// per-tenant regret (the same Theorem 1 decomposition `report` prints),
/// and device utilization against the makespan.
#[must_use]
pub fn render_workload_report(trace: &LoadedTrace, targets: &BTreeMap<usize, f64>) -> String {
    let workload = workload_report(&trace.events);
    let regret = regret_report(&trace.events, targets);
    let exec = exec_report(&trace.events);

    let mut out = String::new();
    let _ = writeln!(out, "=== easeml-trace workload report ===");
    if workload.arrivals == 0 {
        let _ = writeln!(
            out,
            "no JobArrived events — this is a closed-loop trace \
             (schema v6+ open-loop runs carry them)"
        );
        return out;
    }
    let _ = writeln!(
        out,
        "arrivals: {}  horizon: {:.4}  mean rate: {:.4}/unit  \
         backlogged at end: {}",
        workload.arrivals,
        workload.horizon,
        workload.mean_arrival_rate(),
        workload.backlogged(),
    );
    let _ = writeln!(
        out,
        "tenant churn: {} retirement(s), {} rejoin(s)",
        workload.retirements, workload.joins
    );

    let _ = writeln!(out, "\n--- per-tenant workload ---");
    let _ = writeln!(
        out,
        "{:>6}  {:>8}  {:>8}  {:>9}  {:>7}  {:>7}  {:>10}  {:>10}  {:>8}",
        "user",
        "arrived",
        "served",
        "backlog",
        "retire",
        "rejoin",
        "delay p50",
        "delay p90",
        "state"
    );
    for (user, t) in &workload.per_tenant {
        let q = |p: f64| t.queueing_delay.quantile(p).unwrap_or(0.0);
        let _ = writeln!(
            out,
            "{user:>6}  {:>8}  {:>8}  {:>9}  {:>7}  {:>7}  {:>10.4}  {:>10.4}  {:>8}",
            t.arrivals,
            t.served,
            t.backlogged,
            t.retirements,
            t.joins,
            q(0.5),
            q(0.9),
            if t.ends_retired { "retired" } else { "active" },
        );
    }
    if workload.queueing_delay.count() > 0 {
        let mut line = String::from("queueing delay (all tenants):");
        for (q, label) in DELAY_QUANTILES {
            let _ = write!(
                line,
                "  {label} {:.4}",
                workload.queueing_delay.quantile(q).unwrap_or(0.0)
            );
        }
        let _ = write!(line, "  ({} sample(s))", workload.queueing_delay.count());
        let _ = writeln!(out, "{line}");
    }

    let _ = writeln!(out, "\n--- arrival-rate timeline ---");
    let width = workload.bucket_width();
    let peak = workload.timeline.iter().copied().max().unwrap_or(0).max(1);
    for (i, count) in workload.timeline.iter().enumerate() {
        let start = i as f64 * width;
        let rate = if width > 0.0 {
            *count as f64 / width
        } else {
            0.0
        };
        let bar = "#".repeat(((count * 40) / peak) as usize);
        let _ = writeln!(out, "[{start:>9.2} +{width:<7.2}) {rate:>8.3}/unit {bar}");
    }

    let _ = writeln!(out, "\n--- per-tenant regret (Theorem 1) ---");
    let _ = writeln!(
        out,
        "{:>6}  {:>14}  {:>14}  {:>14}",
        "user", "arm-picking", "user-picking", "total"
    );
    for (user, d) in &regret.per_user {
        let _ = writeln!(
            out,
            "{user:>6}  {:>14.6}  {:>14.6}  {:>14.6}",
            d.arm_picking, d.user_picking, d.total
        );
    }
    let _ = writeln!(
        out,
        "decomposition consistent: {}",
        regret.is_consistent(1e-9)
    );

    if exec.dispatches > 0 {
        let _ = writeln!(out, "\n--- device utilization ---");
        for (device, usage) in &exec.per_device {
            let _ = writeln!(
                out,
                "device {device}: runs {}  busy {:.4}  utilization {:.1}%",
                usage.dispatches,
                usage.busy,
                exec.utilization(*device) * 100.0,
            );
        }
        let _ = writeln!(out, "makespan: {:.4}", exec.makespan);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arrived(user: usize, seq: u64, at: f64) -> Event {
        Event::JobArrived {
            user,
            seq,
            at,
            parent: 0,
        }
    }

    fn dispatched(user: usize, at: f64) -> Event {
        Event::RunDispatched {
            user,
            model: 0,
            device: 0,
            cost: 1.0,
            at,
            parent: 0,
        }
    }

    #[test]
    fn queueing_delay_is_fifo_matched_per_tenant() {
        let events = vec![
            arrived(0, 0, 1.0),
            arrived(1, 1, 1.5),
            arrived(0, 2, 2.0),
            dispatched(0, 3.0), // serves the t=1.0 arrival: delay 2.0
            dispatched(1, 3.5), // serves the t=1.5 arrival: delay 2.0
            dispatched(0, 6.0), // serves the t=2.0 arrival: delay 4.0
        ];
        let report = workload_report(&events);
        assert_eq!(report.arrivals, 3);
        assert_eq!(report.backlogged(), 0);
        assert_eq!(report.per_tenant[&0].served, 2);
        assert_eq!(report.per_tenant[&0].queueing_delay.count(), 2);
        let worst = report.per_tenant[&0].queueing_delay.quantile(1.0).unwrap();
        assert!((worst - 4.0).abs() < 0.2, "worst delay ~4.0, got {worst}");
        assert_eq!(report.queueing_delay.count(), 3);
    }

    #[test]
    fn unserved_arrivals_count_as_backlog() {
        let events = vec![
            arrived(0, 0, 0.5),
            arrived(0, 1, 0.6),
            arrived(2, 2, 0.7),
            dispatched(0, 1.0),
        ];
        let report = workload_report(&events);
        assert_eq!(report.per_tenant[&0].backlogged, 1);
        assert_eq!(report.per_tenant[&2].backlogged, 1);
        assert_eq!(report.backlogged(), 2);
    }

    #[test]
    fn churn_events_track_final_state() {
        let events = vec![
            arrived(1, 0, 0.1),
            Event::TenantRetired {
                user: 1,
                serves: 3,
                at: 2.0,
                parent: 0,
            },
            Event::TenantJoined {
                user: 1,
                name: "user1".into(),
                models: 4,
                at: 5.0,
                parent: 0,
            },
            Event::TenantRetired {
                user: 2,
                serves: 0,
                at: 6.0,
                parent: 0,
            },
        ];
        let report = workload_report(&events);
        assert_eq!(report.retirements, 2);
        assert_eq!(report.joins, 1);
        assert!(!report.per_tenant[&1].ends_retired);
        assert!(report.per_tenant[&2].ends_retired);
        assert!((report.horizon - 6.0).abs() < 1e-12);
    }

    #[test]
    fn timeline_buckets_cover_the_horizon() {
        let mut events = Vec::new();
        // 24 arrivals spread uniformly over [0, 12): two per bucket.
        for i in 0u32..24 {
            events.push(arrived(0, u64::from(i), f64::from(i) * 0.5));
        }
        let report = workload_report(&events);
        assert_eq!(report.timeline.len(), TIMELINE_BUCKETS);
        assert_eq!(report.timeline.iter().sum::<u64>(), 24);
        assert!((report.bucket_width() - 11.5 / 12.0).abs() < 1e-9);
        assert!(
            report.timeline.iter().all(|&c| c >= 1),
            "uniform arrivals must land in every bucket: {:?}",
            report.timeline
        );
    }

    #[test]
    fn a_closed_loop_trace_yields_an_empty_report() {
        let events = vec![dispatched(0, 1.0), dispatched(1, 2.0)];
        let report = workload_report(&events);
        assert_eq!(report.arrivals, 0);
        assert!(report.timeline.is_empty());
        let trace = LoadedTrace {
            events,
            ..LoadedTrace::default()
        };
        let text = render_workload_report(&trace, &BTreeMap::new());
        assert!(text.contains("closed-loop"), "{text}");
    }

    #[test]
    fn the_rendered_report_names_its_sections() {
        let events = vec![
            arrived(0, 0, 0.5),
            dispatched(0, 1.0),
            Event::RunFinished {
                user: 0,
                model: 0,
                device: 0,
                at: 2.0,
                ok: true,
                parent: 0,
            },
            Event::TrainingCompleted {
                user: 0,
                model: 0,
                cost: 1.0,
                quality: 0.7,
                parent: 0,
            },
            Event::TenantRetired {
                user: 0,
                serves: 1,
                at: 2.0,
                parent: 0,
            },
        ];
        let trace = LoadedTrace {
            events,
            ..LoadedTrace::default()
        };
        let text = render_workload_report(&trace, &BTreeMap::new());
        assert!(text.contains("per-tenant workload"), "{text}");
        assert!(text.contains("arrival-rate timeline"), "{text}");
        assert!(text.contains("per-tenant regret"), "{text}");
        assert!(text.contains("device utilization"), "{text}");
        assert!(text.contains("retired"), "{text}");
        assert!(text.contains("decomposition consistent: true"), "{text}");
    }
}
