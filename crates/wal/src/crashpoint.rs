//! Deterministic crash-point injection for the WAL write path.
//!
//! A [`CrashPoint`] kills the writer at an exact global byte offset: the
//! append that would cross the offset writes only the bytes up to it and
//! every later write, fsync, rotation or compaction silently no-ops — the
//! same observable outcome as the process dying mid-`write(2)`. Offsets
//! are plain numbers so a sweep test can enumerate *every* byte boundary,
//! and [`sample_offsets`] draws a reproducible subset with the same
//! splitmix64 generator `core::fault` uses for fault injection.

/// Kill switch for the WAL write path at a global stream byte offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPoint {
    at_byte: u64,
}

impl CrashPoint {
    /// Crash once the global byte stream would exceed `offset`.
    #[must_use]
    pub fn at_byte(offset: u64) -> Self {
        Self { at_byte: offset }
    }

    /// The configured global byte offset.
    #[must_use]
    pub fn offset(&self) -> u64 {
        self.at_byte
    }
}

/// One step of the splitmix64 generator.
///
/// This is the workspace's *single* copy of the mixer: `core::fault` keys
/// its fault stream off it, `easeml-obs` reservoirs sample with the
/// stateful [`SplitMix64`] wrapper, and `easeml-workload` draws arrival
/// processes from it. It lives here because the WAL crate is the only
/// dependency-free crate every consumer already reaches.
#[must_use]
pub fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Stateful splitmix64 stream: each call returns [`splitmix64`] of the
/// current state and advances the state by the golden-ratio increment.
///
/// The output sequence for seed `s` is `splitmix64(s), splitmix64(s + γ),
/// splitmix64(s + 2γ), …` with `γ = 0x9e37_79b9_7f4a_7c15` — the
/// canonical SplitMix64 construction, and bit-identical to the stateful
/// copy `easeml-obs` sketches used to carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A stream seeded at `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The next 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let out = splitmix64(self.state);
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        out
    }

    /// The next uniform draw in `[0, 1)` (53 high bits, like
    /// `core::fault`'s unit draws).
    pub fn next_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// The raw generator state, for checkpointing.
    #[must_use]
    pub fn state(&self) -> u64 {
        self.state
    }
}

/// Draw up to `count` distinct crash offsets in `[0, max_byte]`, sorted
/// ascending, deterministically from `seed`. Returns every offset when the
/// range is smaller than `count`.
#[must_use]
pub fn sample_offsets(seed: u64, max_byte: u64, count: usize) -> Vec<u64> {
    if max_byte == 0 {
        return vec![0];
    }
    let span = max_byte + 1;
    if span <= count as u64 {
        return (0..span).collect();
    }
    let mut state = seed;
    let mut picked = Vec::with_capacity(count);
    while picked.len() < count {
        state = splitmix64(state);
        let offset = state % span;
        if !picked.contains(&offset) {
            picked.push(offset);
        }
    }
    picked.sort_unstable();
    picked
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic_sorted_and_in_range() {
        let a = sample_offsets(41, 5000, 64);
        let b = sample_offsets(41, 5000, 64);
        assert_eq!(a, b);
        assert_eq!(a.len(), 64);
        assert!(a.windows(2).all(|w| w[0] < w[1]), "not strictly ascending");
        assert!(a.iter().all(|&o| o <= 5000));
        // A different seed gives a different draw.
        assert_ne!(a, sample_offsets(42, 5000, 64));
    }

    #[test]
    fn stateful_stream_matches_the_free_function() {
        let seed = 0x5eed_f00d;
        let mut stream = SplitMix64::new(seed);
        let golden = 0x9e37_79b9_7f4a_7c15u64;
        for i in 0..8u64 {
            assert_eq!(
                stream.next_u64(),
                splitmix64(seed.wrapping_add(i.wrapping_mul(golden)))
            );
        }
        let mut stream = SplitMix64::new(seed);
        let unit = stream.next_unit();
        assert!((0.0..1.0).contains(&unit));
        assert_eq!(unit, (splitmix64(seed) >> 11) as f64 / (1u64 << 53) as f64);
    }

    #[test]
    fn small_ranges_are_enumerated_exhaustively() {
        assert_eq!(sample_offsets(7, 0, 16), vec![0]);
        assert_eq!(sample_offsets(7, 9, 16), (0..=9).collect::<Vec<_>>());
    }
}
