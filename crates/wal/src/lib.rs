//! `easeml-wal` — a std-only write-ahead log for the Ease.ml scheduler.
//!
//! The monolithic JSON checkpoint (PR 4) rewrites the full scheduler state
//! on every save, so its cost grows with the tenant count. This crate adds
//! the missing half of a classic checkpoint + log design: an append-only,
//! CRC32-framed binary record log with segment rotation, a configurable
//! fsync policy, and a reader that *tolerates* torn tails (partial header,
//! partial payload, bad CRC, zero-fill) by truncating at the last valid
//! record boundary instead of failing recovery. Recovery then becomes
//! O(delta): load the latest checkpoint, replay the WAL suffix.
//!
//! On-disk framing, per record (all integers little-endian):
//!
//! ```text
//! +----------+----------+------------------+
//! | len: u32 | crc: u32 | payload: len * u8 |
//! +----------+----------+------------------+
//! ```
//!
//! `crc` is CRC32 (IEEE) over the payload bytes only. A record is valid
//! iff the full header and `len` payload bytes are present and the CRC
//! matches; anything else at the tail of the last segment is treated as a
//! torn write. Segments are named `wal-NNNNNNNN.log` and sealed segments
//! are immutable, which makes compaction (deleting segments older than the
//! latest checkpoint) a plain file delete.
//!
//! The crate has zero dependencies and does no policy: what the payload
//! *means* is defined by [`DurableEvent`], and who calls [`WalWriter`] is
//! the scheduler's `Durability` handle in `easeml-core`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod crashpoint;
mod record;
mod segment;

pub use crashpoint::{sample_offsets, splitmix64, CrashPoint, SplitMix64};
pub use record::{DurableEvent, KIND_CRASH, KIND_INVALID, KIND_TIMEOUT};
pub use segment::{
    read_log, truncate_log, AppendOutcome, FsyncPolicy, ReadRecord, TornReason, TornTail, WalLog,
    WalOptions, WalWriter, MAX_RECORD_BYTES,
};

/// CRC32 (IEEE 802.3 polynomial, reflected) lookup table, built at compile
/// time so the crate stays dependency-free.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC32 (IEEE) of `data`, as used by the record framing.
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in data {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xff) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xe8b7_be43);
    }

    #[test]
    fn crc32_detects_single_bit_flips() {
        let payload = b"easeml wal record payload".to_vec();
        let clean = crc32(&payload);
        for byte in 0..payload.len() {
            for bit in 0..8 {
                let mut flipped = payload.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), clean, "flip at {byte}:{bit} undetected");
            }
        }
    }
}
