//! Binary schema for the durable event stream.
//!
//! One [`DurableEvent`] per state mutation the scheduler already captures
//! in its JSON checkpoint: round lifecycle, per-attempt observations,
//! quarantine/probation transitions, the committed rolling digest and RNG
//! words, and the exec engine's dispatch/completion stream. Encoding is a
//! tag byte followed by fixed-width little-endian fields (`f64` as IEEE
//! bits), so records are self-describing, compact, and decode without an
//! allocation-heavy format on the recovery path.

/// Censoring kind code for a crashed training run.
pub const KIND_CRASH: u8 = 0;
/// Censoring kind code for a timed-out training run.
pub const KIND_TIMEOUT: u8 = 1;
/// Censoring kind code for a run that returned an invalid quality.
pub const KIND_INVALID: u8 = 2;

/// One durable state mutation, as appended to the WAL.
#[derive(Debug, Clone, PartialEq)]
pub enum DurableEvent {
    /// A scheduler round began (before any attempt ran).
    RoundStart {
        /// Global round index.
        round: u64,
    },
    /// An attempt resolved with a valid quality observation.
    ObservationResolved {
        /// Global round index.
        round: u64,
        /// Tenant index.
        user: u64,
        /// Candidate-model (arm) index within the tenant.
        arm: u64,
        /// Observed accuracy in `[0, 1]`.
        accuracy: f64,
        /// Cost charged on the shared clock.
        cost: f64,
    },
    /// An attempt was censored by a fault (pre-backoff charge).
    ObservationCensored {
        /// Global round index.
        round: u64,
        /// Tenant index.
        user: u64,
        /// Candidate-model (arm) index within the tenant.
        arm: u64,
        /// Cost consumed by the failed attempt, before retry backoff.
        charge: f64,
        /// Censoring kind: [`KIND_CRASH`], [`KIND_TIMEOUT`] or [`KIND_INVALID`].
        kind: u8,
    },
    /// An arm crossed the quarantine threshold and was masked.
    ArmQuarantined {
        /// Tenant index.
        user: u64,
        /// Masked arm index.
        arm: u64,
        /// Round at which the arm re-enters on probation.
        release_round: u64,
    },
    /// A quarantined arm was released back into the candidate set.
    ProbationRelease {
        /// Round at which the release happened.
        round: u64,
        /// Tenant index.
        user: u64,
        /// Released arm index.
        arm: u64,
    },
    /// A round committed: the serial simulator's durability barrier.
    RoundCommit {
        /// Global round index that committed.
        round: u64,
        /// Tenant the round was granted to.
        user: u64,
        /// Arm that was trained (final attempt).
        arm: u64,
        /// Whether the round resolved censored.
        censored: bool,
        /// Rolling decision-witness digest *after* folding this round.
        digest: u64,
        /// RNG state words after the round, for bit-exact replay checks.
        rng: [u64; 4],
    },
    /// A checkpoint was written; sealed segments before it are obsolete.
    CheckpointMark {
        /// Rounds covered by the checkpoint.
        rounds: u64,
        /// Rolling witness digest at the checkpoint.
        digest: u64,
    },
    /// The exec engine dispatched a run to a device.
    ExecDispatch {
        /// Monotonic dispatch sequence number.
        seq: u64,
        /// Tenant index.
        user: u64,
        /// Arm index.
        arm: u64,
        /// Device the run was placed on.
        device: u64,
    },
    /// The exec engine committed a completion (in completion order).
    ExecCompletion {
        /// Dispatch sequence number of the completed run.
        seq: u64,
        /// Tenant index.
        user: u64,
        /// Arm index.
        arm: u64,
        /// Whether the run completed censored.
        censored: bool,
        /// Rolling witness digest *after* folding this completion.
        digest: u64,
    },
    /// A tenant joined the service mid-run. Carries everything recovery
    /// needs to re-register the tenant when the join postdates the latest
    /// checkpoint: its slot, candidate-model count, and display name.
    TenantJoined {
        /// Rounds committed when the join happened (audit ordering; replay
        /// dedups by `user` against the restored checkpoint).
        round: u64,
        /// Index (slot) the tenant was registered under.
        user: u64,
        /// Number of candidate models the tenant's program declares
        /// (cross-checked against the re-parsed program on replay).
        arms: u64,
        /// Tenant display name (UTF-8, u32-length-prefixed on disk).
        name: String,
        /// Original program source, so recovery can re-register a join
        /// that postdates the latest checkpoint.
        program: String,
    },
    /// A tenant retired. Replay re-applies the retirement idempotently;
    /// the tenant's slot and GP state survive, only its picker visibility
    /// ends.
    TenantRetired {
        /// Rounds committed when the retirement happened.
        round: u64,
        /// Index (slot) of the retired tenant.
        user: u64,
    },
}

const TAG_ROUND_START: u8 = 0;
const TAG_OBS_RESOLVED: u8 = 1;
const TAG_OBS_CENSORED: u8 = 2;
const TAG_QUARANTINED: u8 = 3;
const TAG_PROBATION: u8 = 4;
const TAG_ROUND_COMMIT: u8 = 5;
const TAG_CHECKPOINT: u8 = 6;
const TAG_EXEC_DISPATCH: u8 = 7;
const TAG_EXEC_COMPLETION: u8 = 8;
const TAG_TENANT_JOINED: u8 = 9;
const TAG_TENANT_RETIRED: u8 = 10;

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&u32::try_from(s.len()).expect("name too long").to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }

    fn u8(&mut self) -> Result<u8, String> {
        let b = *self
            .data
            .get(self.pos)
            .ok_or_else(|| "record truncated".to_string())?;
        self.pos += 1;
        Ok(b)
    }

    fn u64(&mut self) -> Result<u64, String> {
        let end = self.pos + 8;
        let bytes = self
            .data
            .get(self.pos..end)
            .ok_or_else(|| "record truncated".to_string())?;
        self.pos = end;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(bytes);
        Ok(u64::from_le_bytes(raw))
    }

    fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn str(&mut self) -> Result<String, String> {
        let end = self.pos + 4;
        let bytes = self
            .data
            .get(self.pos..end)
            .ok_or_else(|| "record truncated".to_string())?;
        self.pos = end;
        let mut raw = [0u8; 4];
        raw.copy_from_slice(bytes);
        let len = u32::from_le_bytes(raw) as usize;
        let end = self.pos + len;
        let bytes = self
            .data
            .get(self.pos..end)
            .ok_or_else(|| "record truncated".to_string())?;
        self.pos = end;
        String::from_utf8(bytes.to_vec()).map_err(|_| "invalid UTF-8 in string field".to_string())
    }

    fn bool(&mut self) -> Result<bool, String> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(format!("invalid bool byte {other}")),
        }
    }

    fn finish(&self) -> Result<(), String> {
        if self.pos == self.data.len() {
            Ok(())
        } else {
            Err(format!(
                "trailing bytes: consumed {} of {}",
                self.pos,
                self.data.len()
            ))
        }
    }
}

impl DurableEvent {
    /// Short stable name of the record type, for reports.
    #[must_use]
    pub fn tag_name(&self) -> &'static str {
        match self {
            Self::RoundStart { .. } => "round-start",
            Self::ObservationResolved { .. } => "obs-resolved",
            Self::ObservationCensored { .. } => "obs-censored",
            Self::ArmQuarantined { .. } => "arm-quarantined",
            Self::ProbationRelease { .. } => "probation-release",
            Self::RoundCommit { .. } => "round-commit",
            Self::CheckpointMark { .. } => "checkpoint-mark",
            Self::ExecDispatch { .. } => "exec-dispatch",
            Self::ExecCompletion { .. } => "exec-completion",
            Self::TenantJoined { .. } => "tenant-joined",
            Self::TenantRetired { .. } => "tenant-retired",
        }
    }

    /// Encode the event into its binary payload (without framing).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(80);
        match *self {
            Self::RoundStart { round } => {
                buf.push(TAG_ROUND_START);
                put_u64(&mut buf, round);
            }
            Self::ObservationResolved {
                round,
                user,
                arm,
                accuracy,
                cost,
            } => {
                buf.push(TAG_OBS_RESOLVED);
                put_u64(&mut buf, round);
                put_u64(&mut buf, user);
                put_u64(&mut buf, arm);
                put_f64(&mut buf, accuracy);
                put_f64(&mut buf, cost);
            }
            Self::ObservationCensored {
                round,
                user,
                arm,
                charge,
                kind,
            } => {
                buf.push(TAG_OBS_CENSORED);
                put_u64(&mut buf, round);
                put_u64(&mut buf, user);
                put_u64(&mut buf, arm);
                put_f64(&mut buf, charge);
                buf.push(kind);
            }
            Self::ArmQuarantined {
                user,
                arm,
                release_round,
            } => {
                buf.push(TAG_QUARANTINED);
                put_u64(&mut buf, user);
                put_u64(&mut buf, arm);
                put_u64(&mut buf, release_round);
            }
            Self::ProbationRelease { round, user, arm } => {
                buf.push(TAG_PROBATION);
                put_u64(&mut buf, round);
                put_u64(&mut buf, user);
                put_u64(&mut buf, arm);
            }
            Self::RoundCommit {
                round,
                user,
                arm,
                censored,
                digest,
                rng,
            } => {
                buf.push(TAG_ROUND_COMMIT);
                put_u64(&mut buf, round);
                put_u64(&mut buf, user);
                put_u64(&mut buf, arm);
                buf.push(u8::from(censored));
                put_u64(&mut buf, digest);
                for word in rng {
                    put_u64(&mut buf, word);
                }
            }
            Self::CheckpointMark { rounds, digest } => {
                buf.push(TAG_CHECKPOINT);
                put_u64(&mut buf, rounds);
                put_u64(&mut buf, digest);
            }
            Self::ExecDispatch {
                seq,
                user,
                arm,
                device,
            } => {
                buf.push(TAG_EXEC_DISPATCH);
                put_u64(&mut buf, seq);
                put_u64(&mut buf, user);
                put_u64(&mut buf, arm);
                put_u64(&mut buf, device);
            }
            Self::ExecCompletion {
                seq,
                user,
                arm,
                censored,
                digest,
            } => {
                buf.push(TAG_EXEC_COMPLETION);
                put_u64(&mut buf, seq);
                put_u64(&mut buf, user);
                put_u64(&mut buf, arm);
                buf.push(u8::from(censored));
                put_u64(&mut buf, digest);
            }
            Self::TenantJoined {
                round,
                user,
                arms,
                ref name,
                ref program,
            } => {
                buf.push(TAG_TENANT_JOINED);
                put_u64(&mut buf, round);
                put_u64(&mut buf, user);
                put_u64(&mut buf, arms);
                put_str(&mut buf, name);
                put_str(&mut buf, program);
            }
            Self::TenantRetired { round, user } => {
                buf.push(TAG_TENANT_RETIRED);
                put_u64(&mut buf, round);
                put_u64(&mut buf, user);
            }
        }
        buf
    }

    /// Decode a payload produced by [`DurableEvent::encode`].
    ///
    /// # Errors
    /// Returns a description of the first malformation: unknown tag,
    /// truncated field, invalid bool byte, or trailing bytes.
    pub fn decode(payload: &[u8]) -> Result<Self, String> {
        let mut c = Cursor::new(payload);
        let tag = c.u8()?;
        let event = match tag {
            TAG_ROUND_START => Self::RoundStart { round: c.u64()? },
            TAG_OBS_RESOLVED => Self::ObservationResolved {
                round: c.u64()?,
                user: c.u64()?,
                arm: c.u64()?,
                accuracy: c.f64()?,
                cost: c.f64()?,
            },
            TAG_OBS_CENSORED => {
                let (round, user, arm, charge) = (c.u64()?, c.u64()?, c.u64()?, c.f64()?);
                let kind = c.u8()?;
                if kind > KIND_INVALID {
                    return Err(format!("invalid censor kind {kind}"));
                }
                Self::ObservationCensored {
                    round,
                    user,
                    arm,
                    charge,
                    kind,
                }
            }
            TAG_QUARANTINED => Self::ArmQuarantined {
                user: c.u64()?,
                arm: c.u64()?,
                release_round: c.u64()?,
            },
            TAG_PROBATION => Self::ProbationRelease {
                round: c.u64()?,
                user: c.u64()?,
                arm: c.u64()?,
            },
            TAG_ROUND_COMMIT => Self::RoundCommit {
                round: c.u64()?,
                user: c.u64()?,
                arm: c.u64()?,
                censored: c.bool()?,
                digest: c.u64()?,
                rng: [c.u64()?, c.u64()?, c.u64()?, c.u64()?],
            },
            TAG_CHECKPOINT => Self::CheckpointMark {
                rounds: c.u64()?,
                digest: c.u64()?,
            },
            TAG_EXEC_DISPATCH => Self::ExecDispatch {
                seq: c.u64()?,
                user: c.u64()?,
                arm: c.u64()?,
                device: c.u64()?,
            },
            TAG_EXEC_COMPLETION => Self::ExecCompletion {
                seq: c.u64()?,
                user: c.u64()?,
                arm: c.u64()?,
                censored: c.bool()?,
                digest: c.u64()?,
            },
            TAG_TENANT_JOINED => Self::TenantJoined {
                round: c.u64()?,
                user: c.u64()?,
                arms: c.u64()?,
                name: c.str()?,
                program: c.str()?,
            },
            TAG_TENANT_RETIRED => Self::TenantRetired {
                round: c.u64()?,
                user: c.u64()?,
            },
            other => return Err(format!("unknown record tag {other}")),
        };
        c.finish()?;
        Ok(event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<DurableEvent> {
        vec![
            DurableEvent::RoundStart { round: 7 },
            DurableEvent::ObservationResolved {
                round: 7,
                user: 2,
                arm: 5,
                accuracy: 0.8125,
                cost: 1.5,
            },
            DurableEvent::ObservationCensored {
                round: 7,
                user: 2,
                arm: 5,
                charge: 0.75,
                kind: KIND_TIMEOUT,
            },
            DurableEvent::ArmQuarantined {
                user: 2,
                arm: 5,
                release_round: 32,
            },
            DurableEvent::ProbationRelease {
                round: 32,
                user: 2,
                arm: 5,
            },
            DurableEvent::RoundCommit {
                round: 7,
                user: 2,
                arm: 5,
                censored: true,
                digest: 0xdead_beef_cafe_f00d,
                rng: [1, 2, 3, u64::MAX],
            },
            DurableEvent::CheckpointMark {
                rounds: 8,
                digest: 42,
            },
            DurableEvent::ExecDispatch {
                seq: 11,
                user: 0,
                arm: 3,
                device: 1,
            },
            DurableEvent::ExecCompletion {
                seq: 11,
                user: 0,
                arm: 3,
                censored: false,
                digest: 99,
            },
            DurableEvent::TenantJoined {
                round: 40,
                user: 4,
                arms: 8,
                name: "tenant-d".into(),
                program: "{input: {[Tensor[8]], []}, output: {[Tensor[2]], []}}".into(),
            },
            DurableEvent::TenantRetired { round: 55, user: 4 },
        ]
    }

    #[test]
    fn every_variant_round_trips() {
        for event in samples() {
            let payload = event.encode();
            let decoded = DurableEvent::decode(&payload)
                .unwrap_or_else(|e| panic!("{}: {e}", event.tag_name()));
            assert_eq!(decoded, event);
        }
    }

    #[test]
    fn truncated_and_oversized_payloads_are_rejected() {
        for event in samples() {
            let payload = event.encode();
            // Every strict prefix must fail to decode.
            for cut in 0..payload.len() {
                assert!(
                    DurableEvent::decode(&payload[..cut]).is_err(),
                    "{} decoded from a {cut}-byte prefix",
                    event.tag_name()
                );
            }
            // Trailing garbage must fail too.
            let mut long = payload.clone();
            long.push(0);
            assert!(DurableEvent::decode(&long).is_err());
        }
    }

    #[test]
    fn unknown_tags_and_bad_enums_are_rejected() {
        assert!(DurableEvent::decode(&[200]).is_err());
        assert!(DurableEvent::decode(&[]).is_err());
        // Censor kind byte out of range.
        let mut censored = DurableEvent::ObservationCensored {
            round: 1,
            user: 0,
            arm: 0,
            charge: 0.5,
            kind: KIND_CRASH,
        }
        .encode();
        *censored.last_mut().unwrap() = 9;
        assert!(DurableEvent::decode(&censored).is_err());
        // Bool byte out of range on a commit record.
        let mut commit = DurableEvent::RoundCommit {
            round: 1,
            user: 0,
            arm: 0,
            censored: false,
            digest: 0,
            rng: [0; 4],
        }
        .encode();
        commit[25] = 7; // tag + 3 u64 fields = offset 25 is the bool byte
        assert!(DurableEvent::decode(&commit).is_err());
        // Invalid UTF-8 in a tenant name.
        let mut joined = DurableEvent::TenantJoined {
            round: 1,
            user: 0,
            arms: 4,
            name: "ok".into(),
            program: "p".into(),
        }
        .encode();
        *joined.last_mut().unwrap() = 0xFF; // 0xFF is never valid UTF-8
        assert!(DurableEvent::decode(&joined).is_err());
    }

    #[test]
    fn empty_tenant_names_round_trip() {
        let event = DurableEvent::TenantJoined {
            round: 0,
            user: 0,
            arms: 1,
            name: String::new(),
            program: String::new(),
        };
        assert_eq!(DurableEvent::decode(&event.encode()).unwrap(), event);
    }
}
