//! Segmented log files: append path, torn-tolerant reader, compaction.
//!
//! A log directory holds segments named `wal-NNNNNNNN.log` in strictly
//! increasing index order. Only the highest-indexed segment is ever
//! written; sealed segments are immutable, so compaction after a
//! checkpoint is a plain delete of older files. The reader scans segments
//! in order and stops at the first framing violation, reporting it as a
//! [`TornTail`] instead of an error — a torn tail is the *expected*
//! outcome of a crash, not corruption to refuse.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::crashpoint::CrashPoint;
use crate::crc32;

/// Upper bound on a single record payload; a larger length prefix is
/// treated as a torn/garbage header rather than an allocation request.
pub const MAX_RECORD_BYTES: u32 = 1 << 20;

const HEADER_BYTES: u64 = 8;

/// When the writer flushes to the platter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fdatasync` after every append — maximum durability, slowest.
    Always,
    /// `fdatasync` every N appends — bounded loss window.
    EveryN(u64),
    /// Never sync explicitly — the OS decides; fastest, weakest.
    Never,
}

/// Writer configuration.
#[derive(Debug, Clone, Copy)]
pub struct WalOptions {
    /// Rotate to a fresh segment once the current one reaches this size.
    pub segment_bytes: u64,
    /// Sync policy for appends.
    pub fsync: FsyncPolicy,
}

impl Default for WalOptions {
    fn default() -> Self {
        Self {
            segment_bytes: 64 * 1024,
            fsync: FsyncPolicy::EveryN(16),
        }
    }
}

/// Why the reader stopped early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TornReason {
    /// Fewer than 8 header bytes at the tail.
    PartialHeader,
    /// Header present but the payload is cut short.
    PartialPayload,
    /// Payload present but its CRC32 does not match.
    BadCrc,
    /// A zeroed header (`len == 0 && crc == 0`), as left by preallocation
    /// or a zero-filled page after power loss.
    ZeroFill,
    /// Length prefix above [`MAX_RECORD_BYTES`] — a garbage header.
    OversizeLength,
}

impl TornReason {
    /// Stable lowercase name for reports.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Self::PartialHeader => "partial-header",
            Self::PartialPayload => "partial-payload",
            Self::BadCrc => "bad-crc",
            Self::ZeroFill => "zero-fill",
            Self::OversizeLength => "oversize-length",
        }
    }
}

/// Location and cause of a torn tail found by [`read_log`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TornTail {
    /// Segment index the violation was found in.
    pub segment: u64,
    /// Byte offset within that segment of the first invalid byte.
    pub offset: u64,
    /// What the violation looked like.
    pub reason: TornReason,
}

/// One valid record returned by [`read_log`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadRecord {
    /// Decoded-framing payload bytes.
    pub payload: Vec<u8>,
    /// Segment index the record lives in.
    pub segment: u64,
    /// Byte offset within that segment just *after* the record — the
    /// truncation point that keeps this record and drops everything later.
    pub end_offset: u64,
}

/// Result of scanning a log directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalLog {
    /// All valid records, in append order, up to the first violation.
    pub records: Vec<ReadRecord>,
    /// The first framing violation, if any.
    pub torn: Option<TornTail>,
    /// Every segment file present, in index order.
    pub segments: Vec<(u64, PathBuf)>,
    /// Total valid record bytes (framing included) across scanned segments.
    pub valid_bytes: u64,
}

fn segment_name(index: u64) -> String {
    format!("wal-{index:08}.log")
}

fn parse_segment_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("wal-")?.strip_suffix(".log")?;
    if digits.len() != 8 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

fn list_segments(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut segments = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        if let Some(index) = name.to_str().and_then(parse_segment_name) {
            segments.push((index, entry.path()));
        }
    }
    segments.sort_unstable_by_key(|(index, _)| *index);
    Ok(segments)
}

/// Valid records (payload + end offset) plus the first violation, if any.
type ScanOutcome = (Vec<(Vec<u8>, u64)>, Option<(u64, TornReason)>);

/// Scan one segment's bytes, returning the valid records (payload + end
/// offset) and the first violation, if any.
fn scan_segment(data: &[u8]) -> ScanOutcome {
    let mut records = Vec::new();
    let mut pos = 0usize;
    loop {
        let remaining = data.len() - pos;
        if remaining == 0 {
            return (records, None);
        }
        if remaining < HEADER_BYTES as usize {
            return (records, Some((pos as u64, TornReason::PartialHeader)));
        }
        let len = u32::from_le_bytes(data[pos..pos + 4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().expect("4 bytes"));
        if len == 0 && crc == 0 {
            return (records, Some((pos as u64, TornReason::ZeroFill)));
        }
        if len > MAX_RECORD_BYTES {
            return (records, Some((pos as u64, TornReason::OversizeLength)));
        }
        let body_end = pos + HEADER_BYTES as usize + len as usize;
        if body_end > data.len() {
            return (records, Some((pos as u64, TornReason::PartialPayload)));
        }
        let payload = &data[pos + HEADER_BYTES as usize..body_end];
        if crc32(payload) != crc {
            return (records, Some((pos as u64, TornReason::BadCrc)));
        }
        records.push((payload.to_vec(), body_end as u64));
        pos = body_end;
    }
}

/// Read the whole log directory, tolerating a torn tail.
///
/// Scanning stops at the first framing violation; segments after the torn
/// one are listed but their contents ignored — with a single writer they
/// can only be stale leftovers from before a truncation.
///
/// # Errors
/// Only real I/O failures (missing directory, unreadable file) error;
/// torn or empty logs are valid results.
pub fn read_log(dir: &Path) -> io::Result<WalLog> {
    let segments = list_segments(dir)?;
    let mut records = Vec::new();
    let mut torn = None;
    let mut valid_bytes = 0u64;
    for (index, path) in &segments {
        let mut data = Vec::new();
        File::open(path)?.read_to_end(&mut data)?;
        let (found, violation) = scan_segment(&data);
        for (payload, end_offset) in found {
            valid_bytes += HEADER_BYTES + payload.len() as u64;
            records.push(ReadRecord {
                payload,
                segment: *index,
                end_offset,
            });
        }
        if let Some((offset, reason)) = violation {
            torn = Some(TornTail {
                segment: *index,
                offset,
                reason,
            });
            break;
        }
    }
    Ok(WalLog {
        records,
        torn,
        segments,
        valid_bytes,
    })
}

/// Truncate the log so that `keep` — a `(segment, end_offset)` pair as
/// reported by [`ReadRecord`] — is the last surviving byte. With `None`
/// the log is emptied (the lowest segment is kept at zero length so the
/// index sequence stays monotone).
///
/// # Errors
/// Propagates filesystem errors from truncation or deletion.
pub fn truncate_log(dir: &Path, keep: Option<(u64, u64)>) -> io::Result<()> {
    let segments = list_segments(dir)?;
    if segments.is_empty() {
        return Ok(());
    }
    let (keep_segment, keep_offset) = match keep {
        Some(pair) => pair,
        None => (segments[0].0, 0),
    };
    for (index, path) in &segments {
        if *index < keep_segment {
            continue;
        }
        if *index == keep_segment {
            let file = OpenOptions::new().write(true).open(path)?;
            file.set_len(keep_offset)?;
            file.sync_data()?;
        } else {
            fs::remove_file(path)?;
        }
    }
    Ok(())
}

/// What one [`WalWriter::append`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppendOutcome {
    /// Bytes actually written (framing included; less than the full frame
    /// only when a crash point fired mid-record).
    pub bytes: u64,
    /// Whether this append triggered an fsync under the policy.
    pub synced: bool,
    /// Whether the append rotated to a fresh segment first.
    pub rotated: bool,
}

/// Append-only writer over a segment directory.
///
/// Opening repairs a torn tail (truncates the last segment to its valid
/// prefix, deletes any stale later segments) and resumes appending, so a
/// recovered process can keep logging into the same directory.
#[derive(Debug)]
pub struct WalWriter {
    dir: PathBuf,
    file: File,
    segment_index: u64,
    segment_len: u64,
    options: WalOptions,
    unsynced: u64,
    stream_offset: u64,
    crash: Option<CrashPoint>,
    dead: bool,
    appends: u64,
    fsyncs: u64,
    rotations: u64,
}

impl WalWriter {
    /// Open (or create) the log directory for appending.
    ///
    /// # Errors
    /// Propagates filesystem errors from directory creation, the initial
    /// scan, or tail repair.
    pub fn open(dir: &Path, options: WalOptions) -> io::Result<Self> {
        fs::create_dir_all(dir)?;
        let segments = list_segments(dir)?;
        let (segment_index, segment_len, stream_offset) = if segments.is_empty() {
            File::create(dir.join(segment_name(0)))?.sync_data()?;
            (0, 0, 0)
        } else {
            let mut total = 0u64;
            let mut last = (segments[0].0, 0u64);
            let mut torn_at = None;
            for (index, path) in &segments {
                let mut data = Vec::new();
                File::open(path)?.read_to_end(&mut data)?;
                let (records, violation) = scan_segment(&data);
                let valid: u64 = records.last().map_or(0, |(_, end)| *end);
                total += valid;
                last = (*index, valid);
                if violation.is_some() {
                    torn_at = Some(*index);
                    // Repair: truncate this segment to its valid prefix.
                    let file = OpenOptions::new().write(true).open(path)?;
                    file.set_len(valid)?;
                    file.sync_data()?;
                    break;
                }
            }
            if let Some(torn_index) = torn_at {
                // Stale segments after a torn one are unreachable by the
                // reader; drop them so appends land in a consistent tail.
                for (index, path) in &segments {
                    if *index > torn_index {
                        fs::remove_file(path)?;
                    }
                }
            }
            (last.0, last.1, total)
        };
        let path = dir.join(segment_name(segment_index));
        let mut file = OpenOptions::new().read(true).write(true).open(&path)?;
        file.seek(SeekFrom::Start(segment_len))?;
        Ok(Self {
            dir: dir.to_path_buf(),
            file,
            segment_index,
            segment_len,
            options,
            unsynced: 0,
            stream_offset,
            crash: None,
            dead: false,
            appends: 0,
            fsyncs: 0,
            rotations: 0,
        })
    }

    /// Arm (or disarm) a crash point on the write path.
    pub fn set_crash_point(&mut self, crash: Option<CrashPoint>) {
        self.crash = crash;
    }

    /// Whether a crash point has fired; a dead writer silently ignores
    /// every subsequent operation, like a dead process would.
    #[must_use]
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Global bytes appended across all segments since the log was first
    /// created (monotone; unaffected by compaction).
    #[must_use]
    pub fn stream_offset(&self) -> u64 {
        self.stream_offset
    }

    /// Index of the segment currently being appended to.
    #[must_use]
    pub fn segment_index(&self) -> u64 {
        self.segment_index
    }

    /// Records appended by this writer instance.
    #[must_use]
    pub fn appends(&self) -> u64 {
        self.appends
    }

    /// Fsyncs issued by this writer instance.
    #[must_use]
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs
    }

    /// Segment rotations performed by this writer instance.
    #[must_use]
    pub fn rotations(&self) -> u64 {
        self.rotations
    }

    /// Append one framed record, rotating and syncing per policy.
    ///
    /// # Errors
    /// Rejects payloads above [`MAX_RECORD_BYTES`]; propagates I/O errors.
    pub fn append(&mut self, payload: &[u8]) -> io::Result<AppendOutcome> {
        if self.dead {
            return Ok(AppendOutcome {
                bytes: 0,
                synced: false,
                rotated: false,
            });
        }
        if payload.len() as u64 > u64::from(MAX_RECORD_BYTES) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("record payload {} bytes exceeds cap", payload.len()),
            ));
        }
        let mut rotated = false;
        if self.segment_len >= self.options.segment_bytes && self.segment_len > 0 {
            self.rotate()?;
            rotated = true;
        }
        let mut frame = Vec::with_capacity(HEADER_BYTES as usize + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        if let Some(crash) = self.crash {
            let end = self.stream_offset + frame.len() as u64;
            if end > crash.offset() {
                // The process "dies" mid-write: persist only the prefix up
                // to the crash offset, then go silent forever.
                let keep = crash.offset().saturating_sub(self.stream_offset) as usize;
                self.file.write_all(&frame[..keep])?;
                self.file.flush()?;
                self.stream_offset += keep as u64;
                self.segment_len += keep as u64;
                self.dead = true;
                return Ok(AppendOutcome {
                    bytes: keep as u64,
                    synced: false,
                    rotated,
                });
            }
        }
        self.file.write_all(&frame)?;
        self.stream_offset += frame.len() as u64;
        self.segment_len += frame.len() as u64;
        self.appends += 1;
        self.unsynced += 1;
        let synced = match self.options.fsync {
            FsyncPolicy::Always => {
                self.sync()?;
                true
            }
            FsyncPolicy::EveryN(n) => {
                if self.unsynced >= n.max(1) {
                    self.sync()?;
                    true
                } else {
                    false
                }
            }
            FsyncPolicy::Never => false,
        };
        Ok(AppendOutcome {
            bytes: frame.len() as u64,
            synced,
            rotated,
        })
    }

    /// Force an fsync of the current segment.
    ///
    /// # Errors
    /// Propagates `fdatasync` failures.
    pub fn sync(&mut self) -> io::Result<()> {
        if self.dead {
            return Ok(());
        }
        self.file.sync_data()?;
        self.fsyncs += 1;
        self.unsynced = 0;
        Ok(())
    }

    /// Seal the current segment and start a fresh one.
    ///
    /// # Errors
    /// Propagates file creation/sync failures.
    pub fn rotate(&mut self) -> io::Result<()> {
        if self.dead {
            return Ok(());
        }
        // Seal: whatever reached the old segment must be durable before
        // the new one exists, or compaction could delete unsynced data.
        self.file.sync_data()?;
        self.fsyncs += 1;
        self.unsynced = 0;
        self.segment_index += 1;
        let path = self.dir.join(segment_name(self.segment_index));
        self.file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        self.file.sync_data()?;
        self.segment_len = 0;
        self.rotations += 1;
        Ok(())
    }

    /// Delete sealed segments older than the one being written — call
    /// after a checkpoint has made their contents redundant.
    ///
    /// # Errors
    /// Propagates deletion failures.
    pub fn compact(&mut self) -> io::Result<usize> {
        if self.dead {
            return Ok(0);
        }
        let mut removed = 0;
        for (index, path) in list_segments(&self.dir)? {
            if index < self.segment_index {
                fs::remove_file(path)?;
                removed += 1;
            }
        }
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    fn scratch_dir(tag: &str) -> PathBuf {
        let seq = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "easeml-wal-test-{}-{tag}-{seq}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn payload(i: u64) -> Vec<u8> {
        let mut p = i.to_le_bytes().to_vec();
        p.extend(std::iter::repeat_n(i as u8, (i % 13) as usize));
        p
    }

    #[test]
    fn append_read_round_trip_preserves_order_and_offsets() {
        let dir = scratch_dir("roundtrip");
        let mut writer = WalWriter::open(&dir, WalOptions::default()).unwrap();
        for i in 0..20 {
            writer.append(&payload(i)).unwrap();
        }
        writer.sync().unwrap();
        let log = read_log(&dir).unwrap();
        assert!(log.torn.is_none());
        assert_eq!(log.records.len(), 20);
        for (i, record) in log.records.iter().enumerate() {
            assert_eq!(record.payload, payload(i as u64));
        }
        assert_eq!(log.valid_bytes, writer.stream_offset());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn each_torn_tail_kind_truncates_instead_of_failing() {
        type Mutilate = Box<dyn Fn(&mut Vec<u8>)>;
        let cases: Vec<(TornReason, Mutilate)> = vec![
            (
                TornReason::PartialHeader,
                Box::new(|data: &mut Vec<u8>| data.extend_from_slice(&[1, 2, 3])),
            ),
            (
                TornReason::PartialPayload,
                Box::new(|data: &mut Vec<u8>| {
                    data.extend_from_slice(&100u32.to_le_bytes());
                    data.extend_from_slice(&7u32.to_le_bytes());
                    data.extend_from_slice(&[9; 10]);
                }),
            ),
            (
                TornReason::ZeroFill,
                Box::new(|data: &mut Vec<u8>| data.extend_from_slice(&[0; 64])),
            ),
            (
                TornReason::OversizeLength,
                Box::new(|data: &mut Vec<u8>| {
                    data.extend_from_slice(&u32::MAX.to_le_bytes());
                    data.extend_from_slice(&5u32.to_le_bytes());
                }),
            ),
        ];
        for (reason, mutilate) in cases {
            let dir = scratch_dir(reason.name());
            let mut writer = WalWriter::open(&dir, WalOptions::default()).unwrap();
            for i in 0..5 {
                writer.append(&payload(i)).unwrap();
            }
            writer.sync().unwrap();
            let clean_bytes = writer.stream_offset();
            drop(writer);
            let seg = dir.join("wal-00000000.log");
            let mut data = fs::read(&seg).unwrap();
            mutilate(&mut data);
            fs::write(&seg, &data).unwrap();
            let log = read_log(&dir).unwrap();
            assert_eq!(log.records.len(), 5, "{}", reason.name());
            assert_eq!(log.valid_bytes, clean_bytes, "{}", reason.name());
            let torn = log.torn.expect("torn tail detected");
            assert_eq!(torn.reason, reason);
            assert_eq!(torn.offset, clean_bytes);
            fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn bad_crc_drops_the_flipped_record_and_everything_after() {
        let dir = scratch_dir("badcrc");
        let mut writer = WalWriter::open(&dir, WalOptions::default()).unwrap();
        let mut ends = Vec::new();
        for i in 0..6 {
            writer.append(&payload(i)).unwrap();
            ends.push(writer.stream_offset());
        }
        writer.sync().unwrap();
        drop(writer);
        let seg = dir.join("wal-00000000.log");
        let mut data = fs::read(&seg).unwrap();
        // Flip one payload byte of record 3.
        let idx = (ends[2] + HEADER_BYTES) as usize;
        data[idx] ^= 0x40;
        fs::write(&seg, &data).unwrap();
        let log = read_log(&dir).unwrap();
        assert_eq!(log.records.len(), 3);
        let torn = log.torn.expect("bad crc reported");
        assert_eq!(torn.reason, TornReason::BadCrc);
        assert_eq!(torn.offset, ends[2]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_spreads_records_across_segments_and_reads_back_in_order() {
        let dir = scratch_dir("rotate");
        let options = WalOptions {
            segment_bytes: 64,
            fsync: FsyncPolicy::Never,
        };
        let mut writer = WalWriter::open(&dir, options).unwrap();
        for i in 0..30 {
            writer.append(&payload(i)).unwrap();
        }
        writer.sync().unwrap();
        assert!(
            writer.rotations() > 0,
            "segment cap never triggered rotation"
        );
        let log = read_log(&dir).unwrap();
        assert!(log.torn.is_none());
        assert_eq!(log.records.len(), 30);
        assert!(log.segments.len() > 1);
        for (i, record) in log.records.iter().enumerate() {
            assert_eq!(record.payload, payload(i as u64));
        }
        // Segment indices are non-decreasing along the record stream.
        assert!(log.records.windows(2).all(|w| w[0].segment <= w[1].segment));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopening_repairs_the_torn_tail_and_resumes_appending() {
        let dir = scratch_dir("reopen");
        let mut writer = WalWriter::open(&dir, WalOptions::default()).unwrap();
        for i in 0..4 {
            writer.append(&payload(i)).unwrap();
        }
        writer.sync().unwrap();
        drop(writer);
        // Tear the tail: half a header.
        let seg = dir.join("wal-00000000.log");
        let mut data = fs::read(&seg).unwrap();
        data.extend_from_slice(&[0xab, 0xcd, 0xef]);
        fs::write(&seg, &data).unwrap();
        // Reopen: the torn bytes must be gone and new appends valid.
        let mut writer = WalWriter::open(&dir, WalOptions::default()).unwrap();
        writer.append(&payload(99)).unwrap();
        writer.sync().unwrap();
        let log = read_log(&dir).unwrap();
        assert!(
            log.torn.is_none(),
            "reopen left a torn tail: {:?}",
            log.torn
        );
        assert_eq!(log.records.len(), 5);
        assert_eq!(log.records[4].payload, payload(99));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_deletes_sealed_segments_only() {
        let dir = scratch_dir("compact");
        let options = WalOptions {
            segment_bytes: 48,
            fsync: FsyncPolicy::Never,
        };
        let mut writer = WalWriter::open(&dir, options).unwrap();
        for i in 0..20 {
            writer.append(&payload(i)).unwrap();
        }
        writer.rotate().unwrap();
        writer.append(&payload(100)).unwrap();
        writer.sync().unwrap();
        let before = read_log(&dir).unwrap();
        assert!(before.segments.len() > 1);
        let removed = writer.compact().unwrap();
        assert_eq!(removed, before.segments.len() - 1);
        let after = read_log(&dir).unwrap();
        assert_eq!(after.segments.len(), 1);
        assert_eq!(after.records.len(), 1);
        assert_eq!(after.records[0].payload, payload(100));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncate_log_cuts_at_a_record_boundary() {
        let dir = scratch_dir("truncate");
        let options = WalOptions {
            segment_bytes: 64,
            fsync: FsyncPolicy::Never,
        };
        let mut writer = WalWriter::open(&dir, options).unwrap();
        for i in 0..16 {
            writer.append(&payload(i)).unwrap();
        }
        writer.sync().unwrap();
        drop(writer);
        let log = read_log(&dir).unwrap();
        let keep = &log.records[9];
        truncate_log(&dir, Some((keep.segment, keep.end_offset))).unwrap();
        let cut = read_log(&dir).unwrap();
        assert!(cut.torn.is_none());
        assert_eq!(cut.records.len(), 10);
        assert_eq!(cut.records[9].payload, payload(9));
        // A reopened writer continues from the cut.
        let mut writer = WalWriter::open(&dir, options).unwrap();
        writer.append(&payload(200)).unwrap();
        writer.sync().unwrap();
        let resumed = read_log(&dir).unwrap();
        assert_eq!(resumed.records.len(), 11);
        assert_eq!(resumed.records[10].payload, payload(200));
        // Truncating to empty leaves a clean zero-length log.
        truncate_log(&dir, None).unwrap();
        let empty = read_log(&dir).unwrap();
        assert!(empty.records.is_empty());
        assert!(empty.torn.is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_point_preserves_exactly_the_committed_prefix() {
        // Reference: clean run to learn the record end offsets.
        let options = WalOptions {
            segment_bytes: 96,
            fsync: FsyncPolicy::Never,
        };
        let dir = scratch_dir("crash-ref");
        let mut writer = WalWriter::open(&dir, options).unwrap();
        let mut ends = Vec::new();
        for i in 0..12 {
            writer.append(&payload(i)).unwrap();
            ends.push(writer.stream_offset());
        }
        writer.sync().unwrap();
        let total = writer.stream_offset();
        drop(writer);
        fs::remove_dir_all(&dir).unwrap();

        for k in 0..=total {
            let dir = scratch_dir("crash");
            let mut writer = WalWriter::open(&dir, options).unwrap();
            writer.set_crash_point(Some(CrashPoint::at_byte(k)));
            for i in 0..12 {
                writer.append(&payload(i)).unwrap();
                if writer.is_dead() {
                    break;
                }
            }
            // A dead writer ignores everything, like a dead process.
            writer.sync().unwrap();
            writer.append(&payload(999)).unwrap();
            drop(writer);
            let log = read_log(&dir).unwrap();
            let expected = ends.iter().filter(|&&end| end <= k).count();
            assert_eq!(
                log.records.len(),
                expected,
                "crash at byte {k}: wrong surviving record count"
            );
            for (i, record) in log.records.iter().enumerate() {
                assert_eq!(record.payload, payload(i as u64), "crash at byte {k}");
            }
            // Reopen repairs whatever the crash left behind.
            let mut writer = WalWriter::open(&dir, options).unwrap();
            writer.append(&payload(777)).unwrap();
            writer.sync().unwrap();
            let resumed = read_log(&dir).unwrap();
            assert!(
                resumed.torn.is_none(),
                "crash at byte {k} left a torn tail after reopen"
            );
            assert_eq!(resumed.records.len(), expected + 1);
            fs::remove_dir_all(&dir).unwrap();
        }
    }
}
