//! Seeded open-loop arrival processes.
//!
//! Both processes draw from the workspace's shared [`SplitMix64`] stream
//! (the same mixer `core::fault` and the telemetry sketches use), so a
//! `(kind, seed)` pair names one arrival sequence forever — across runs,
//! platforms, and checkpoint/restore cycles.

use easeml_wal::SplitMix64;

/// The arrival-rate shape of one job stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalKind {
    /// Homogeneous Poisson arrivals: exponential inter-arrival times with
    /// mean `1 / rate`.
    Poisson {
        /// Jobs per unit of simulated time.
        rate: f64,
    },
    /// Diurnally modulated Poisson process with instantaneous rate
    /// `base · (1 + amplitude · sin(2πt / period))`, realized by
    /// Lewis–Shedler thinning against the peak rate `base · (1 + amplitude)`.
    Diurnal {
        /// Mean rate (jobs per unit time).
        base: f64,
        /// Relative swing in `[0, 1]`: 0 degenerates to Poisson, 1 silences
        /// the trough entirely.
        amplitude: f64,
        /// Length of one day in simulated time units.
        period: f64,
    },
}

/// A deterministic, infinite stream of absolute arrival times.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrivalProcess {
    kind: ArrivalKind,
    rng: SplitMix64,
    t: f64,
}

impl ArrivalProcess {
    /// A process of the given shape, seeded at `seed`, starting at time 0.
    ///
    /// # Panics
    ///
    /// Panics on a non-finite or non-positive rate/base/period, or an
    /// amplitude outside `[0, 1]`.
    #[must_use]
    pub fn new(kind: ArrivalKind, seed: u64) -> Self {
        match kind {
            ArrivalKind::Poisson { rate } => {
                assert!(rate.is_finite() && rate > 0.0, "rate must be positive");
            }
            ArrivalKind::Diurnal {
                base,
                amplitude,
                period,
            } => {
                assert!(base.is_finite() && base > 0.0, "base rate must be positive");
                assert!(
                    (0.0..=1.0).contains(&amplitude),
                    "amplitude must lie in [0, 1]"
                );
                assert!(
                    period.is_finite() && period > 0.0,
                    "period must be positive"
                );
            }
        }
        ArrivalProcess {
            kind,
            rng: SplitMix64::new(seed),
            t: 0.0,
        }
    }

    /// One exponential draw with the given rate (inverse-CDF of a uniform).
    fn exp_draw(&mut self, rate: f64) -> f64 {
        // next_unit is in [0, 1); 1 - u is in (0, 1], so the log is finite.
        -(1.0 - self.rng.next_unit()).ln() / rate
    }

    /// Advances to and returns the next absolute arrival time.
    pub fn next_arrival(&mut self) -> f64 {
        match self.kind {
            ArrivalKind::Poisson { rate } => self.t += self.exp_draw(rate),
            ArrivalKind::Diurnal {
                base,
                amplitude,
                period,
            } => {
                let peak = base * (1.0 + amplitude);
                loop {
                    self.t += self.exp_draw(peak);
                    let rate =
                        base * (1.0 + amplitude * (std::f64::consts::TAU * self.t / period).sin());
                    if self.rng.next_unit() * peak <= rate {
                        break;
                    }
                }
            }
        }
        self.t
    }

    /// Every arrival strictly before `horizon`, in order.
    pub fn take_until(&mut self, horizon: f64) -> Vec<f64> {
        let mut times = Vec::new();
        loop {
            let at = self.next_arrival();
            if at >= horizon {
                return times;
            }
            times.push(at);
        }
    }
}

impl Iterator for ArrivalProcess {
    type Item = f64;

    fn next(&mut self) -> Option<f64> {
        Some(self.next_arrival())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_is_deterministic_and_monotone() {
        let kind = ArrivalKind::Poisson { rate: 2.0 };
        let a: Vec<f64> = ArrivalProcess::new(kind, 7).take(100).collect();
        let b: Vec<f64> = ArrivalProcess::new(kind, 7).take(100).collect();
        assert_eq!(a, b, "same seed must give the same stream");
        let c: Vec<f64> = ArrivalProcess::new(kind, 8).take(100).collect();
        assert_ne!(a, c, "different seeds must diverge");
        for w in a.windows(2) {
            assert!(w[1] > w[0], "arrival times must strictly increase");
        }
    }

    #[test]
    fn poisson_mean_rate_is_approximately_honored() {
        let mut p = ArrivalProcess::new(ArrivalKind::Poisson { rate: 4.0 }, 11);
        let times = p.take_until(500.0);
        let rate = times.len() as f64 / 500.0;
        assert!(
            (rate - 4.0).abs() < 0.25,
            "empirical rate {rate} too far from 4.0"
        );
    }

    #[test]
    fn diurnal_concentrates_arrivals_at_the_peak() {
        // rate(t) = 2·(1 + 0.9·sin(2πt/100)): peak near t ≡ 25 (mod 100),
        // trough near t ≡ 75. Count arrivals in the two half-cycles.
        let mut p = ArrivalProcess::new(
            ArrivalKind::Diurnal {
                base: 2.0,
                amplitude: 0.9,
                period: 100.0,
            },
            13,
        );
        let times = p.take_until(2000.0);
        let up = times.iter().filter(|t| (*t % 100.0) < 50.0).count();
        let down = times.len() - up;
        assert!(
            up as f64 > 1.5 * down as f64,
            "rising half-cycle must dominate: {up} vs {down}"
        );
        // Thinning keeps the mean near the base rate.
        let rate = times.len() as f64 / 2000.0;
        assert!((rate - 2.0).abs() < 0.3, "empirical base rate {rate}");
    }

    #[test]
    fn zero_amplitude_diurnal_degenerates_to_poisson_rate() {
        let mut p = ArrivalProcess::new(
            ArrivalKind::Diurnal {
                base: 3.0,
                amplitude: 0.0,
                period: 10.0,
            },
            5,
        );
        let times = p.take_until(300.0);
        let rate = times.len() as f64 / 300.0;
        assert!((rate - 3.0).abs() < 0.35, "empirical rate {rate}");
    }

    #[test]
    #[should_panic(expected = "amplitude")]
    fn out_of_range_amplitude_is_rejected() {
        let _ = ArrivalProcess::new(
            ArrivalKind::Diurnal {
                base: 1.0,
                amplitude: 1.5,
                period: 10.0,
            },
            1,
        );
    }
}
