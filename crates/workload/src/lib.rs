//! `easeml-workload` — trace-driven open-loop workloads with tenant churn
//! for the ease.ml reproduction.
//!
//! The serial simulator and the execution engine are *closed-loop*: every
//! tenant always has the next job ready, so the system is permanently
//! backlogged and the only question is who gets the next device. Real
//! multi-tenant clusters are *open-loop* — jobs arrive on their own clock,
//! tenants come and go — and quality-of-service questions (queueing delay,
//! per-tenant regret under contention, utilization under diurnal load)
//! only exist in that regime. This crate supplies the missing half:
//!
//! - [`ArrivalProcess`]: seeded Poisson and diurnally-modulated arrival
//!   streams built on the workspace's shared [`easeml_wal::SplitMix64`]
//!   mixer — one `(kind, seed)` pair names one arrival sequence forever;
//! - [`ChurnConfig`] / [`churn_timeline`]: a per-slot tenant lifecycle
//!   model alternating exponential active and absent periods;
//! - [`AzureTraceReader`] / [`HuaweiTraceReader`]: std-only CSV readers
//!   for the public cluster-trace schemas discrete-event simulators
//!   commonly replay, folded onto engine user slots by [`map_jobs`];
//! - [`WorkloadScript`] / [`ReplayDriver`]: a deterministic driver feeding
//!   arrivals and churn through an open-loop
//!   [`ExecEngine`](easeml_exec::ExecEngine), with a
//!   [`ReplayCheckpoint`] wrapper so a mid-replay crash resumes
//!   bit-exactly.
//!
//! Invariant anchoring it to the validated engine: a script with churn
//! disabled whose every tenant is always backlogged replays the classic
//! closed-loop run bit for bit (witness-digest equal) — see this crate's
//! `tests/replay.rs`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arrival;
mod lifecycle;
mod replay;
mod traces;

pub use arrival::{ArrivalKind, ArrivalProcess};
pub use lifecycle::{churn_timeline, ChurnConfig, LifecycleAction};
pub use replay::{
    ReplayCheckpoint, ReplayDriver, WorkloadEvent, WorkloadScript, REPLAY_CHECKPOINT_VERSION,
};
pub use traces::{map_jobs, AzureTraceReader, HuaweiTraceReader, TenantMap, TraceJob, TraceReader};
