//! The tenant lifecycle model: seeded join/leave churn over a fixed set of
//! tenant slots.
//!
//! Every slot starts active. A churned slot alternates exponentially
//! distributed active periods (mean [`ChurnConfig::mean_lifetime`]) with
//! absent periods (mean [`ChurnConfig::mean_absence`]); the transitions
//! become retire/rejoin events on the replay script. Each slot draws from
//! its own [`SplitMix64`] substream, so adding tenants never perturbs the
//! existing ones' timelines.

use easeml_wal::{splitmix64, SplitMix64};

/// One tenant-lifecycle transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifecycleAction {
    /// The tenant leaves the shared service.
    Retire {
        /// Slot index.
        user: usize,
    },
    /// A previously retired tenant rejoins.
    Rejoin {
        /// Slot index.
        user: usize,
    },
}

impl LifecycleAction {
    /// The slot the action concerns.
    #[must_use]
    pub fn user(&self) -> usize {
        match *self {
            LifecycleAction::Retire { user } | LifecycleAction::Rejoin { user } => user,
        }
    }
}

/// Churn intensity: mean active / absent period lengths.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnConfig {
    /// Mean length of an active period (simulated time units).
    pub mean_lifetime: f64,
    /// Mean length of an absence before the tenant rejoins.
    pub mean_absence: f64,
}

impl ChurnConfig {
    /// A churn model with the given mean active / absent period lengths.
    ///
    /// # Panics
    ///
    /// Panics unless both means are finite and positive.
    #[must_use]
    pub fn new(mean_lifetime: f64, mean_absence: f64) -> Self {
        assert!(
            mean_lifetime.is_finite() && mean_lifetime > 0.0,
            "mean lifetime must be positive"
        );
        assert!(
            mean_absence.is_finite() && mean_absence > 0.0,
            "mean absence must be positive"
        );
        ChurnConfig {
            mean_lifetime,
            mean_absence,
        }
    }
}

/// The full churn timeline for `num_users` slots over `[0, horizon)`:
/// `(time, action)` pairs sorted by time (ties break by slot index, retire
/// before rejoin). Every slot starts active, so the first action for any
/// slot is always a retirement.
#[must_use]
pub fn churn_timeline(
    num_users: usize,
    horizon: f64,
    churn: &ChurnConfig,
    seed: u64,
) -> Vec<(f64, LifecycleAction)> {
    let mut events = Vec::new();
    for user in 0..num_users {
        // An independent substream per slot: timelines are stable under
        // fleet growth and there is no cross-tenant draw interleaving.
        let mut rng = SplitMix64::new(seed ^ splitmix64(user as u64 + 1));
        let mut t = 0.0;
        let mut active = true;
        loop {
            let mean = if active {
                churn.mean_lifetime
            } else {
                churn.mean_absence
            };
            t += -(1.0 - rng.next_unit()).ln() * mean;
            if t >= horizon {
                break;
            }
            let action = if active {
                LifecycleAction::Retire { user }
            } else {
                LifecycleAction::Rejoin { user }
            };
            events.push((t, action));
            active = !active;
        }
    }
    events.sort_by(|a, b| {
        a.0.total_cmp(&b.0)
            .then_with(|| a.1.user().cmp(&b.1.user()))
            .then_with(|| {
                matches!(a.1, LifecycleAction::Rejoin { .. })
                    .cmp(&matches!(b.1, LifecycleAction::Rejoin { .. }))
            })
    });
    events
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeline_is_deterministic_sorted_and_alternating() {
        let churn = ChurnConfig::new(5.0, 2.0);
        let a = churn_timeline(4, 100.0, &churn, 7);
        let b = churn_timeline(4, 100.0, &churn, 7);
        assert_eq!(a, b, "same seed must give the same timeline");
        assert!(!a.is_empty(), "mean lifetime 5 over horizon 100 must churn");
        for w in a.windows(2) {
            assert!(w[1].0 >= w[0].0, "timeline must be time-sorted");
        }
        // Per slot: strictly alternating, starting with a retirement.
        for user in 0..4 {
            let actions: Vec<&LifecycleAction> = a
                .iter()
                .filter(|(_, act)| act.user() == user)
                .map(|(_, act)| act)
                .collect();
            for (i, action) in actions.iter().enumerate() {
                let expect_retire = i % 2 == 0;
                assert_eq!(
                    matches!(action, LifecycleAction::Retire { .. }),
                    expect_retire,
                    "slot {user} action {i} must alternate"
                );
            }
        }
    }

    #[test]
    fn growing_the_fleet_keeps_existing_timelines() {
        let churn = ChurnConfig::new(4.0, 3.0);
        let small = churn_timeline(2, 50.0, &churn, 9);
        let large = churn_timeline(5, 50.0, &churn, 9);
        let filtered: Vec<(f64, LifecycleAction)> = large
            .into_iter()
            .filter(|(_, act)| act.user() < 2)
            .collect();
        assert_eq!(small, filtered, "substreams must be per-slot independent");
    }

    #[test]
    fn long_lifetimes_produce_no_churn() {
        let churn = ChurnConfig::new(1e12, 1.0);
        assert!(churn_timeline(8, 100.0, &churn, 3).is_empty());
    }
}
