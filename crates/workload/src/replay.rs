//! The replay driver: feeds a time-ordered workload script — job arrivals
//! plus tenant churn — through an open-loop [`ExecEngine`].
//!
//! Determinism contract: a script is a pure value, the engine is seeded,
//! so `(dataset, priors, config, script, seed)` names one execution
//! forever. Lifecycle events gate the arrival feed — arrivals scripted
//! after a retirement are not pushed until the retirement applied — and a
//! lifecycle event applies at the first driver step whose engine clock has
//! reached it (or immediately when the engine would otherwise go idle).
//! [`ReplayDriver::checkpoint`] captures the engine snapshot plus the
//! script cursor, so a restore resumes the replay bit-exactly.

use crate::lifecycle::{churn_timeline, ChurnConfig, LifecycleAction};
use crate::{ArrivalKind, ArrivalProcess};
use easeml_data::Dataset;
use easeml_exec::{ExecCheckpoint, ExecEngine, ExecTrace};
use easeml_gp::ArmPrior;
use easeml_obs::json::{self, Json};
use easeml_wal::splitmix64;

/// One scripted workload event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkloadEvent {
    /// Tenant `user` submits one job at simulated time `at`.
    Arrival {
        /// Engine user slot.
        user: usize,
        /// Absolute simulated time.
        at: f64,
    },
    /// Tenant `user` leaves the service at `at`.
    Retire {
        /// Engine user slot.
        user: usize,
        /// Absolute simulated time.
        at: f64,
    },
    /// Tenant `user` rejoins the service at `at`.
    Rejoin {
        /// Engine user slot.
        user: usize,
        /// Absolute simulated time.
        at: f64,
    },
}

impl WorkloadEvent {
    /// The event's scripted time.
    #[must_use]
    pub fn at(&self) -> f64 {
        match *self {
            WorkloadEvent::Arrival { at, .. }
            | WorkloadEvent::Retire { at, .. }
            | WorkloadEvent::Rejoin { at, .. } => at,
        }
    }

    /// The tenant slot the event concerns.
    #[must_use]
    pub fn user(&self) -> usize {
        match *self {
            WorkloadEvent::Arrival { user, .. }
            | WorkloadEvent::Retire { user, .. }
            | WorkloadEvent::Rejoin { user, .. } => user,
        }
    }
}

/// A time-sorted sequence of workload events.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WorkloadScript {
    events: Vec<WorkloadEvent>,
}

impl WorkloadScript {
    /// A script from raw events; sorts them by time (stable, so ties keep
    /// insertion order).
    #[must_use]
    pub fn new(mut events: Vec<WorkloadEvent>) -> Self {
        events.sort_by(|a, b| a.at().total_cmp(&b.at()));
        WorkloadScript { events }
    }

    /// A synthetic open-loop workload: every user runs an independent,
    /// seeded arrival process of the given shape over `[0, horizon)`, with
    /// optional tenant churn layered on top.
    #[must_use]
    pub fn synthetic(
        num_users: usize,
        kind: ArrivalKind,
        horizon: f64,
        churn: Option<&ChurnConfig>,
        seed: u64,
    ) -> Self {
        let mut events = Vec::new();
        for user in 0..num_users {
            let mut process = ArrivalProcess::new(kind, seed ^ splitmix64(user as u64 + 1));
            for at in process.take_until(horizon) {
                events.push(WorkloadEvent::Arrival { user, at });
            }
        }
        if let Some(churn) = churn {
            // A distinct substream key so churn draws never collide with
            // arrival draws.
            for (at, action) in churn_timeline(num_users, horizon, churn, splitmix64(seed)) {
                events.push(match action {
                    LifecycleAction::Retire { user } => WorkloadEvent::Retire { user, at },
                    LifecycleAction::Rejoin { user } => WorkloadEvent::Rejoin { user, at },
                });
            }
        }
        WorkloadScript::new(events)
    }

    /// A script replaying mapped trace jobs (`(slot, time)` pairs from
    /// [`crate::map_jobs`]). When `retire_after_last_job` is set, each slot
    /// retires right after its final arrival — the churn a bounded trace
    /// implies.
    #[must_use]
    pub fn from_trace(mapped: &[(usize, f64)], retire_after_last_job: bool) -> Self {
        let mut events: Vec<WorkloadEvent> = mapped
            .iter()
            .map(|&(user, at)| WorkloadEvent::Arrival { user, at })
            .collect();
        if retire_after_last_job {
            let mut last: Vec<Option<f64>> = Vec::new();
            for &(user, at) in mapped {
                if last.len() <= user {
                    last.resize(user + 1, None);
                }
                last[user] = Some(last[user].map_or(at, |t: f64| t.max(at)));
            }
            for (user, at) in last.into_iter().enumerate() {
                if let Some(at) = at {
                    events.push(WorkloadEvent::Retire { user, at });
                }
            }
        }
        WorkloadScript::new(events)
    }

    /// The events, time-sorted.
    #[must_use]
    pub fn events(&self) -> &[WorkloadEvent] {
        &self.events
    }

    /// Total number of events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the script is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of job arrivals in the script.
    #[must_use]
    pub fn arrivals(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, WorkloadEvent::Arrival { .. }))
            .count()
    }

    /// Number of retire/rejoin events in the script.
    #[must_use]
    pub fn lifecycle_events(&self) -> usize {
        self.events.len() - self.arrivals()
    }
}

/// Current replay-checkpoint format version.
pub const REPLAY_CHECKPOINT_VERSION: u32 = 1;

/// A mid-replay snapshot: the engine checkpoint plus the script cursor.
/// The script itself is NOT embedded — it is a deterministic value the
/// caller reconstructs (same generator seed or same trace file) and hands
/// back to [`ReplayDriver::restore`]; `script_len` guards against resuming
/// with a different one.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayCheckpoint {
    /// Format version ([`REPLAY_CHECKPOINT_VERSION`]).
    pub version: u32,
    /// Script events already fed to the engine.
    pub cursor: usize,
    /// Total script length at checkpoint time.
    pub script_len: usize,
    /// The engine snapshot.
    pub engine: ExecCheckpoint,
}

impl ReplayCheckpoint {
    /// Serializes as a two-line document: a manifest line, then the engine
    /// checkpoint JSON.
    #[must_use]
    pub fn encode(&self) -> String {
        format!(
            "{{\"version\":{},\"cursor\":{},\"script_len\":{}}}\n{}",
            self.version,
            self.cursor,
            self.script_len,
            self.engine.to_json()
        )
    }

    /// Parses a document produced by [`ReplayCheckpoint::encode`].
    ///
    /// # Errors
    ///
    /// Returns a message on a malformed manifest, a version mismatch, or a
    /// malformed embedded engine checkpoint.
    pub fn decode(input: &str) -> Result<Self, String> {
        let (manifest, engine_json) = input.split_once('\n').ok_or_else(|| {
            "replay checkpoint needs a manifest line and an engine line".to_string()
        })?;
        let doc = json::parse(manifest)?;
        let Json::Object(fields) = doc else {
            return Err("replay manifest must be a JSON object".into());
        };
        let get_u64 = |key: &str| -> Result<u64, String> {
            match fields.iter().find(|(k, _)| k == key).map(|(_, v)| v) {
                Some(Json::Number(n)) if *n >= 0.0 && n.fract() == 0.0 => Ok(*n as u64),
                Some(other) => Err(format!("manifest field {key:?}: bad value {other:?}")),
                None => Err(format!("manifest field {key:?} missing")),
            }
        };
        let version = get_u64("version")? as u32;
        if version != REPLAY_CHECKPOINT_VERSION {
            return Err(format!(
                "unsupported replay checkpoint version {version} \
                 (expected {REPLAY_CHECKPOINT_VERSION})"
            ));
        }
        Ok(ReplayCheckpoint {
            version,
            cursor: get_u64("cursor")? as usize,
            script_len: get_u64("script_len")? as usize,
            engine: ExecCheckpoint::from_json(engine_json)?,
        })
    }
}

/// Drives a [`WorkloadScript`] through an open-loop [`ExecEngine`].
pub struct ReplayDriver<'a> {
    engine: ExecEngine<'a>,
    script: WorkloadScript,
    cursor: usize,
}

impl<'a> ReplayDriver<'a> {
    /// Wraps `engine` (switched into open-loop mode) around `script`.
    #[must_use]
    pub fn new(mut engine: ExecEngine<'a>, script: WorkloadScript) -> Self {
        engine.set_open_loop(true);
        ReplayDriver {
            engine,
            script,
            cursor: 0,
        }
    }

    /// The wrapped engine.
    #[must_use]
    pub fn engine(&self) -> &ExecEngine<'a> {
        &self.engine
    }

    /// The wrapped engine, mutably (attach recorders or durability).
    pub fn engine_mut(&mut self) -> &mut ExecEngine<'a> {
        &mut self.engine
    }

    /// Script events already fed to the engine.
    #[must_use]
    pub fn cursor(&self) -> usize {
        self.cursor
    }

    /// Pushes the maximal script prefix: arrivals unconditionally (they
    /// queue by time inside the engine), lifecycle events once the engine
    /// clock has reached them.
    fn feed(&mut self) {
        while let Some(event) = self.script.events.get(self.cursor) {
            match *event {
                WorkloadEvent::Arrival { user, at } => {
                    self.engine.push_arrival(user, at);
                }
                WorkloadEvent::Retire { user, at } if at <= self.engine.now() => {
                    self.engine.retire_tenant(user);
                }
                WorkloadEvent::Rejoin { user, at } if at <= self.engine.now() => {
                    self.engine.rejoin_tenant(user);
                }
                _ => break,
            }
            self.cursor += 1;
        }
    }

    /// One replay step: feed due script events, then advance the engine by
    /// one event. When the engine goes idle while a future lifecycle event
    /// still gates the script, the event applies immediately (the clock
    /// cannot advance through an empty event queue). Returns `false` once
    /// both the script and the engine are exhausted.
    pub fn step(&mut self) -> bool {
        loop {
            self.feed();
            if self.engine.tick() {
                return true;
            }
            match self.script.events.get(self.cursor) {
                Some(WorkloadEvent::Retire { user, .. }) => {
                    self.engine.retire_tenant(*user);
                    self.cursor += 1;
                }
                Some(WorkloadEvent::Rejoin { user, .. }) => {
                    self.engine.rejoin_tenant(*user);
                    self.cursor += 1;
                }
                // `feed` pushes every leading arrival, so the gate here is
                // always a lifecycle event or the script's end.
                Some(WorkloadEvent::Arrival { .. }) => unreachable!("feed pushes arrivals"),
                None => return false,
            }
        }
    }

    /// Drives the replay to completion and returns the engine's trace.
    #[must_use]
    pub fn run(mut self) -> ExecTrace {
        while self.step() {}
        self.engine.finish()
    }

    /// Snapshots the replay: engine checkpoint plus script cursor.
    #[must_use]
    pub fn checkpoint(&self) -> ReplayCheckpoint {
        ReplayCheckpoint {
            version: REPLAY_CHECKPOINT_VERSION,
            cursor: self.cursor,
            script_len: self.script.len(),
            engine: self.engine.checkpoint(),
        }
    }

    /// Resumes a replay from a checkpoint. `script` must be the same value
    /// the checkpointed driver ran (reconstruct it from the same seed or
    /// trace); only its length is verifiable here.
    ///
    /// # Errors
    ///
    /// Version mismatch, script length mismatch, cursor out of range, or
    /// an engine restore failure.
    pub fn restore(
        dataset: &'a Dataset,
        priors: &[ArmPrior],
        script: WorkloadScript,
        ck: &ReplayCheckpoint,
    ) -> Result<Self, String> {
        if ck.version != REPLAY_CHECKPOINT_VERSION {
            return Err(format!(
                "unsupported replay checkpoint version {} (expected {REPLAY_CHECKPOINT_VERSION})",
                ck.version
            ));
        }
        if ck.script_len != script.len() {
            return Err(format!(
                "checkpoint was taken against a {}-event script, got {}",
                ck.script_len,
                script.len()
            ));
        }
        if ck.cursor > script.len() {
            return Err(format!(
                "cursor {} out of range for a {}-event script",
                ck.cursor,
                script.len()
            ));
        }
        let engine = ExecEngine::restore(dataset, priors, &ck.engine)?;
        Ok(ReplayDriver {
            engine,
            script,
            cursor: ck.cursor,
        })
    }
}
