//! Std-only readers that replay public cluster-trace CSVs as ease.ml job
//! streams.
//!
//! The schemas mirror the Azure VM-instances table and the Huawei cloud
//! event log that discrete-event cluster simulators commonly replay; both
//! readers are deliberately lenient about extra columns and strict about
//! the columns they use, reporting 1-based line numbers on every parse
//! error. A trace names its tenants with free-form keys; [`map_jobs`]
//! folds those keys onto the engine's fixed user slots (first come, first
//! mapped) so a replay never needs unbounded tenancy.

/// One job parsed out of a trace: tenant `tenant` asks for one unit of
/// service at absolute time `at`.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceJob {
    /// The trace's tenant key (VM type, user id, resource class, …).
    pub tenant: String,
    /// Arrival time in the trace's own time unit.
    pub at: f64,
}

/// A cluster-trace parser producing time-sorted job arrivals.
pub trait TraceReader {
    /// The schema's short name (used in diagnostics).
    fn name(&self) -> &'static str;

    /// Parses `input` (the full CSV text) into job arrivals sorted by
    /// time.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending 1-based line.
    fn parse(&self, input: &str) -> Result<Vec<TraceJob>, String>;
}

/// Splits one CSV line, trimming whitespace and a trailing `\r`.
fn fields(line: &str) -> Vec<&str> {
    line.trim_end_matches('\r')
        .split(',')
        .map(str::trim)
        .collect()
}

/// Whether a line looks like a header (its time column does not parse).
fn parse_time(field: &str, what: &str, line_no: usize) -> Result<f64, String> {
    let t: f64 = field
        .parse()
        .map_err(|_| format!("line {line_no}: {what} {field:?} is not a number"))?;
    if !t.is_finite() || t < 0.0 {
        return Err(format!(
            "line {line_no}: {what} {t} must be finite and non-negative"
        ));
    }
    Ok(t)
}

fn sort_jobs(mut jobs: Vec<TraceJob>) -> Vec<TraceJob> {
    // Stable: ties keep trace order, which keeps replays deterministic.
    jobs.sort_by(|a, b| a.at.total_cmp(&b.at));
    jobs
}

/// Azure-style VM instances table: `vm_id,vm_type_id,start_time,end_time`
/// (extra columns tolerated, header optional). Each row is one job arrival
/// at `start_time`, attributed to tenant `vm_type_id`.
#[derive(Debug, Clone, Copy, Default)]
pub struct AzureTraceReader;

impl TraceReader for AzureTraceReader {
    fn name(&self) -> &'static str {
        "azure"
    }

    fn parse(&self, input: &str) -> Result<Vec<TraceJob>, String> {
        let mut jobs = Vec::new();
        for (i, line) in input.lines().enumerate() {
            let line_no = i + 1;
            if line.trim().is_empty() {
                continue;
            }
            let cols = fields(line);
            if cols.len() < 3 {
                return Err(format!(
                    "line {line_no}: azure rows need at least 3 columns \
                     (vm_id,vm_type_id,start_time), got {}",
                    cols.len()
                ));
            }
            // The header row is recognized by its non-numeric time column.
            if i == 0 && cols[2].parse::<f64>().is_err() {
                continue;
            }
            if cols[1].is_empty() {
                return Err(format!("line {line_no}: empty vm_type_id"));
            }
            jobs.push(TraceJob {
                tenant: cols[1].to_string(),
                at: parse_time(cols[2], "start_time", line_no)?,
            });
        }
        Ok(sort_jobs(jobs))
    }
}

/// Huawei-style event log: `vm_id,cpu,memory,time,type` where `type` 0 is
/// a creation and 1 a deletion (extra columns tolerated, header optional).
/// Creations become job arrivals attributed to the resource-class tenant
/// `c<cpu>m<memory>`; deletions are skipped.
#[derive(Debug, Clone, Copy, Default)]
pub struct HuaweiTraceReader;

impl TraceReader for HuaweiTraceReader {
    fn name(&self) -> &'static str {
        "huawei"
    }

    fn parse(&self, input: &str) -> Result<Vec<TraceJob>, String> {
        let mut jobs = Vec::new();
        for (i, line) in input.lines().enumerate() {
            let line_no = i + 1;
            if line.trim().is_empty() {
                continue;
            }
            let cols = fields(line);
            if cols.len() < 5 {
                return Err(format!(
                    "line {line_no}: huawei rows need at least 5 columns \
                     (vm_id,cpu,memory,time,type), got {}",
                    cols.len()
                ));
            }
            if i == 0 && cols[3].parse::<f64>().is_err() {
                continue;
            }
            let kind: u32 = cols[4]
                .parse()
                .map_err(|_| format!("line {line_no}: type {:?} is not an integer", cols[4]))?;
            match kind {
                0 => jobs.push(TraceJob {
                    tenant: format!("c{}m{}", cols[1], cols[2]),
                    at: parse_time(cols[3], "time", line_no)?,
                }),
                1 => {}
                other => {
                    return Err(format!(
                        "line {line_no}: type must be 0 (create) or 1 (delete), got {other}"
                    ))
                }
            }
        }
        Ok(sort_jobs(jobs))
    }
}

/// How trace tenant keys landed on engine user slots.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantMap {
    /// Slot index → trace tenant key, in first-seen order.
    pub names: Vec<String>,
    /// Jobs dropped because their tenant arrived after every slot was
    /// taken.
    pub dropped: usize,
}

impl TenantMap {
    /// The slot a tenant key maps to, if any.
    #[must_use]
    pub fn slot(&self, tenant: &str) -> Option<usize> {
        self.names.iter().position(|n| n == tenant)
    }
}

/// Folds trace tenants onto `num_slots` engine user slots, first come
/// first mapped. Jobs from tenants beyond the slot budget are dropped and
/// counted in the returned [`TenantMap::dropped`].
#[must_use]
pub fn map_jobs(jobs: &[TraceJob], num_slots: usize) -> (Vec<(usize, f64)>, TenantMap) {
    let mut names: Vec<String> = Vec::new();
    let mut mapped = Vec::new();
    let mut dropped = 0usize;
    for job in jobs {
        let slot = match names.iter().position(|n| *n == job.tenant) {
            Some(slot) => slot,
            None if names.len() < num_slots => {
                names.push(job.tenant.clone());
                names.len() - 1
            }
            None => {
                dropped += 1;
                continue;
            }
        };
        mapped.push((slot, job.at));
    }
    (mapped, TenantMap { names, dropped })
}

#[cfg(test)]
mod tests {
    use super::*;

    const AZURE: &str = "\
vm_id,vm_type_id,start_time,end_time
1,small,0.5,9.0
2,large,0.25,4.0
3,small,1.75,2.5
";

    const HUAWEI: &str = "\
vm_id,cpu,memory,time,type
1,4,8,0.5,0
1,4,8,3.0,1
2,8,16,1.25,0
3,4,8,2.0,0
";

    #[test]
    fn azure_rows_become_time_sorted_jobs() {
        let jobs = AzureTraceReader.parse(AZURE).expect("parse");
        assert_eq!(
            jobs,
            vec![
                TraceJob {
                    tenant: "large".into(),
                    at: 0.25
                },
                TraceJob {
                    tenant: "small".into(),
                    at: 0.5
                },
                TraceJob {
                    tenant: "small".into(),
                    at: 1.75
                },
            ]
        );
    }

    #[test]
    fn huawei_creations_become_jobs_and_deletions_are_skipped() {
        let jobs = HuaweiTraceReader.parse(HUAWEI).expect("parse");
        assert_eq!(jobs.len(), 3, "three creations, one deletion");
        assert_eq!(jobs[0].tenant, "c4m8");
        assert_eq!(jobs[1].tenant, "c8m16");
        assert_eq!(jobs[2].tenant, "c4m8");
        assert_eq!(jobs[0].at, 0.5);
    }

    #[test]
    fn parse_errors_name_the_line() {
        let err = AzureTraceReader
            .parse("vm_id,vm_type_id,start_time\n1,small,soon\n")
            .unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        assert!(err.contains("soon"), "{err}");
        let err = HuaweiTraceReader.parse("1,4,8,0.5,7\n").unwrap_err();
        assert!(err.contains("type must be 0"), "{err}");
        let err = AzureTraceReader.parse("1,x,-3.0\n").unwrap_err();
        assert!(err.contains("non-negative"), "{err}");
    }

    #[test]
    fn headerless_traces_parse_too() {
        let jobs = AzureTraceReader.parse("1,t0,2.0,9.9\n").expect("parse");
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].tenant, "t0");
    }

    #[test]
    fn map_jobs_folds_tenants_first_come_first_mapped() {
        let jobs = AzureTraceReader.parse(AZURE).expect("parse");
        let (mapped, map) = map_jobs(&jobs, 2);
        assert_eq!(map.names, vec!["large".to_string(), "small".to_string()]);
        assert_eq!(map.dropped, 0);
        assert_eq!(mapped, vec![(0, 0.25), (1, 0.5), (1, 1.75)]);
        let (mapped, map) = map_jobs(&jobs, 1);
        assert_eq!(map.dropped, 2, "both small jobs dropped");
        assert_eq!(mapped, vec![(0, 0.25)]);
        assert_eq!(map.slot("large"), Some(0));
        assert_eq!(map.slot("small"), None);
    }
}
