//! Replay-driver invariants that anchor the open-loop workload engine to
//! the validated closed-loop execution engine:
//!
//! 1. churn disabled + always backlogged ⇒ the workload-driven run is
//!    bit-identical (witness-digest equal) to the closed-loop engine run;
//! 2. a mid-replay checkpoint — engine snapshot plus script cursor,
//!    round-tripped through its serialized form — resumes bit-exactly
//!    under churn;
//! 3. a retired tenant is never dispatched again until it rejoins;
//! 4. a cluster-trace CSV replays end-to-end into served jobs.

use easeml::sim::{SchedulerKind, SimConfig};
use easeml_data::{Dataset, SynConfig};
use easeml_exec::{ExecEngine, Fleet};
use easeml_gp::ArmPrior;
use easeml_obs::{Event, InMemoryRecorder, RecorderHandle};
use easeml_workload::{
    map_jobs, ArrivalKind, AzureTraceReader, ChurnConfig, ReplayCheckpoint, ReplayDriver,
    TraceReader, WorkloadEvent, WorkloadScript,
};
use std::sync::Arc;

fn dataset(users: usize, models: usize, seed: u64) -> Dataset {
    SynConfig {
        num_users: users,
        num_models: models,
        ..SynConfig::paper(0.5, 0.5)
    }
    .generate(seed)
}

fn priors(dataset: &Dataset) -> Vec<ArmPrior> {
    (0..dataset.num_users())
        .map(|_| ArmPrior::independent(dataset.num_models(), 0.05))
        .collect()
}

fn engine<'a>(
    d: &'a Dataset,
    p: &[ArmPrior],
    cfg: &SimConfig,
    devices: usize,
    recorder: RecorderHandle,
) -> ExecEngine<'a> {
    ExecEngine::new(
        d,
        p,
        SchedulerKind::Hybrid,
        cfg,
        Fleet::uniform(devices),
        7,
        recorder,
    )
}

fn witness_digests(events: &[Event]) -> Vec<String> {
    events
        .iter()
        .filter_map(|e| match e {
            Event::DecisionWitness { round, digest, .. } => Some(format!("{round}:{digest}")),
            _ => None,
        })
        .collect()
}

/// A script with every job already queued at time zero and enough jobs per
/// user that no backlog can empty before the budget commits.
fn flooded_script(d: &Dataset, budget: f64) -> WorkloadScript {
    let min_cost = (0..d.num_users())
        .flat_map(|u| (0..d.num_models()).map(move |m| d.cost(u, m)))
        .fold(f64::INFINITY, f64::min);
    let enough = (budget / min_cost).ceil() as usize + 8;
    let mut events = Vec::new();
    for user in 0..d.num_users() {
        for _ in 0..enough {
            events.push(WorkloadEvent::Arrival { user, at: 0.0 });
        }
    }
    WorkloadScript::new(events)
}

#[test]
fn no_churn_always_backlogged_replay_equals_the_closed_loop_run() {
    let d = dataset(5, 4, 3);
    let p = priors(&d);
    let cfg = SimConfig::new(9.0);
    let closed_rec = Arc::new(InMemoryRecorder::new());
    let closed = engine(&d, &p, &cfg, 3, RecorderHandle::new(closed_rec.clone())).run();
    let open_rec = Arc::new(InMemoryRecorder::new());
    let driver = ReplayDriver::new(
        engine(&d, &p, &cfg, 3, RecorderHandle::new(open_rec.clone())),
        flooded_script(&d, cfg.budget),
    );
    let open = driver.run();
    assert_eq!(open, closed, "workload replay must equal the closed loop");
    let serial = witness_digests(&closed_rec.events());
    let replayed = witness_digests(&open_rec.events());
    assert!(!serial.is_empty());
    assert_eq!(serial, replayed, "witness digest chains must be identical");
}

#[test]
fn mid_replay_checkpoint_roundtrips_and_resumes_bit_exactly() {
    let d = dataset(5, 4, 21);
    let p = priors(&d);
    let cfg = SimConfig::new(10.0);
    let script = WorkloadScript::synthetic(
        d.num_users(),
        ArrivalKind::Poisson { rate: 3.0 },
        40.0,
        Some(&ChurnConfig::new(6.0, 3.0)),
        17,
    );
    assert!(script.lifecycle_events() > 0, "the script must churn");
    let reference = ReplayDriver::new(
        engine(&d, &p, &cfg, 2, RecorderHandle::noop()),
        script.clone(),
    )
    .run();
    let mut driver = ReplayDriver::new(
        engine(&d, &p, &cfg, 2, RecorderHandle::noop()),
        script.clone(),
    );
    for _ in 0..7 {
        assert!(driver.step(), "the replay must outlast seven steps");
    }
    let encoded = driver.checkpoint().encode();
    let decoded = ReplayCheckpoint::decode(&encoded).expect("decode replay checkpoint");
    assert_eq!(decoded, driver.checkpoint());
    let restored = ReplayDriver::restore(&d, &p, script, &decoded).expect("restore");
    assert_eq!(restored.cursor(), driver.cursor());
    let resumed = restored.run();
    assert_eq!(
        resumed, reference,
        "a restored replay must finish bit-identically"
    );
}

#[test]
fn restore_rejects_a_mismatched_script() {
    let d = dataset(4, 3, 5);
    let p = priors(&d);
    let cfg = SimConfig::new(6.0);
    let script = WorkloadScript::synthetic(
        d.num_users(),
        ArrivalKind::Poisson { rate: 2.0 },
        20.0,
        None,
        9,
    );
    let mut driver = ReplayDriver::new(engine(&d, &p, &cfg, 2, RecorderHandle::noop()), script);
    assert!(driver.step());
    let ck = driver.checkpoint();
    let other = WorkloadScript::new(vec![WorkloadEvent::Arrival { user: 0, at: 0.0 }]);
    let err = match ReplayDriver::restore(&d, &p, other, &ck) {
        Ok(_) => panic!("a mismatched script must be rejected"),
        Err(err) => err,
    };
    assert!(err.contains("script"), "{err}");
}

#[test]
fn retired_tenants_never_reappear_until_rejoin() {
    let d = dataset(4, 3, 11);
    let p = priors(&d);
    // A budget far beyond the scripted work: the replay must end because
    // the arrivals run dry, never because the budget binds.
    let cfg = SimConfig::new(1000.0);
    // Dense arrivals for everyone; tenant 2 retires at t=2 and rejoins at
    // t=6; tenant 3 retires at t=4 for good.
    let mut events = Vec::new();
    for user in 0..4 {
        for i in 0..60 {
            events.push(WorkloadEvent::Arrival {
                user,
                at: 0.15 * f64::from(i),
            });
        }
    }
    events.push(WorkloadEvent::Retire { user: 2, at: 2.0 });
    events.push(WorkloadEvent::Rejoin { user: 2, at: 6.0 });
    events.push(WorkloadEvent::Retire { user: 3, at: 4.0 });
    let rec = Arc::new(InMemoryRecorder::new());
    let driver = ReplayDriver::new(
        engine(&d, &p, &cfg, 2, RecorderHandle::new(rec.clone())),
        WorkloadScript::new(events),
    );
    let _ = driver.run();
    // Walk the event stream: between TenantRetired and TenantJoined, the
    // tenant must never be dispatched.
    let mut retired = [false; 4];
    let mut saw_rejoin_dispatch = false;
    for event in rec.events().iter() {
        match event {
            Event::TenantRetired { user, .. } => retired[*user] = true,
            Event::TenantJoined { user, .. } => retired[*user] = false,
            Event::RunDispatched { user, .. } => {
                assert!(!retired[*user], "tenant {user} dispatched while retired");
                if *user == 2 && !retired[2] {
                    saw_rejoin_dispatch = true;
                }
            }
            _ => {}
        }
    }
    assert!(retired[3], "tenant 3 must end retired");
    assert!(
        saw_rejoin_dispatch,
        "tenant 2 must be served again after rejoining"
    );
}

#[test]
fn a_cluster_trace_csv_replays_end_to_end() {
    let csv = "\
vm_id,vm_type_id,start_time,end_time
1,burst,0.0,1.0
2,steady,0.4,2.0
3,burst,0.8,1.5
4,steady,1.2,3.0
5,burst,1.6,2.5
6,steady,2.0,4.0
";
    let jobs = AzureTraceReader.parse(csv).expect("parse trace");
    let d = dataset(2, 3, 13);
    let p = priors(&d);
    let (mapped, map) = map_jobs(&jobs, d.num_users());
    assert_eq!(map.dropped, 0);
    let script = WorkloadScript::from_trace(&mapped, true);
    assert_eq!(script.arrivals(), 6);
    assert_eq!(script.lifecycle_events(), 2, "both tenants retire");
    let cfg = SimConfig::new(50.0);
    let rec = Arc::new(InMemoryRecorder::new());
    let driver = ReplayDriver::new(
        engine(&d, &p, &cfg, 2, RecorderHandle::new(rec.clone())),
        script,
    );
    let trace = driver.run();
    assert_eq!(trace.dispatches, 6, "every trace job must be served");
    let arrivals = rec
        .events()
        .iter()
        .filter(|e| matches!(e, Event::JobArrived { .. }))
        .count();
    assert_eq!(arrivals, 6, "one JobArrived per trace row");
    let retirements = rec
        .events()
        .iter()
        .filter(|e| matches!(e, Event::TenantRetired { .. }))
        .count();
    assert_eq!(retirements, 2);
}
