//! The astrophysics use case behind Figure 5: automatic input
//! normalization for data with an extreme dynamic range.
//!
//! Galaxy snapshots look like images (Tensor[A, B, 3]-shaped) but span ten
//! orders of magnitude of intensity; feeding them to image models directly
//! yields unusable quality. Ease.ml expands every consistent model with the
//! normalization family f_k(x) = −x^{2k} + x^k, one extra candidate per k.
//!
//! Run with: `cargo run --example astro_normalization`

use easeml_dsl::normalize::{expand_with_normalizations, Normalization, DEFAULT_KS};
use easeml_dsl::{match_templates, parse_program};

fn main() {
    // The astrophysics group declares an image-recovery task (GAN-style
    // deconvolution, as in the paper's citation [30]).
    let program =
        parse_program("{input: {[Tensor[128, 128, 3]], []}, output: {[Tensor[128, 128, 3]], []}}")
            .expect("valid program");
    let matched = match_templates(&program).expect("a template matches");
    println!("workload: {}", matched.workload);
    println!(
        "consistent models: {:?}",
        matched.models.iter().map(|m| m.name()).collect::<Vec<_>>()
    );

    // Candidate expansion: each (model, k) pair is one candidate.
    let candidates = expand_with_normalizations(&matched.models, &DEFAULT_KS);
    println!(
        "\nafter normalization expansion: {} candidates",
        candidates.len()
    );
    for c in candidates.iter().take(6) {
        println!("  {}", c.label());
    }
    println!("  ...");

    // Show what the family does to a simulated galaxy patch whose pixel
    // intensities span ten orders of magnitude.
    let raw: Vec<f64> = vec![
        1e-10, 1e-8, 1e-6, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 10.0, 1e3, 1e6, 1e10,
    ];
    println!("\nraw intensity -> normalized value (4*f_k after min-max rescale):");
    print!("{:>12}", "raw");
    for &k in &DEFAULT_KS {
        print!("  k={k:<8}");
    }
    println!();
    for &x in &raw {
        print!("{x:>12.2e}");
        for &k in &DEFAULT_KS {
            let mut buf = raw.clone();
            Normalization::new(k).normalize_buffer(&mut buf);
            let idx = raw.iter().position(|&v| v == x).unwrap();
            print!("  {:<10.4}", buf[idx]);
        }
        println!();
    }
    println!("\nsmaller k lifts faint structure (small raw values) into the visible");
    println!("range — the effect the paper's galaxy snapshots illustrate.");
}
