//! Kill a multi-device run mid-write, then recover it bit-exactly.
//!
//! Three phases, end to end through the public durability API:
//!
//! 1. **reference** — the `easeml-exec` engine runs a seeded 4-tenant
//!    workload (optionally under `--chaos` fault injection) to completion
//!    with a write-ahead log attached, recording the uninterrupted final
//!    state digest and the total WAL stream size;
//! 2. **doomed run** — the same workload runs again into `--state-dir`
//!    with group-commit fsync (`EveryN(4)`) and a *seeded crash point*
//!    armed at a byte offset drawn from `--seed`: the append crossing the
//!    offset is torn mid-record and every later write silently no-ops,
//!    exactly like the process dying mid-`write(2)`. A checkpoint is
//!    taken at startup and again mid-run (if the writer is still alive),
//!    so recovery is checkpoint + O(delta) WAL suffix, not a full replay;
//! 3. **recovery** — [`easeml_exec::recover_engine`] rebuilds the engine
//!    from the checkpoint, replays the committed WAL suffix verifying the
//!    rolling witness digest at every completion, truncates the torn
//!    tail, and the example then drives the recovered engine to the end:
//!    its final digest must equal the reference's bit for bit.
//!
//! The state directory is kept on exit so `easeml-trace recovery-report
//! <state-dir>/wal` can audit the surviving log (CI uploads it as an
//! artifact). Run with:
//!
//! `cargo run --example crash_recovery -- --chaos --state-dir /tmp/ezml`

use easeml::fault::FaultConfig;
use easeml::prelude::*;
use easeml_exec::{recover_engine, ExecCheckpoint, ExecEngine, Fleet};
use easeml_gp::ArmPrior;
use easeml_obs::RecorderHandle;
use easeml_wal::{sample_offsets, CrashPoint, FsyncPolicy, WalOptions};
use std::path::PathBuf;

struct Options {
    state_dir: PathBuf,
    chaos: bool,
    seed: u64,
}

fn parse_args() -> Options {
    let mut opts = Options {
        state_dir: std::env::temp_dir()
            .join(format!("easeml-crash-recovery-{}", std::process::id())),
        chaos: false,
        seed: 41,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--state-dir" => {
                opts.state_dir = PathBuf::from(args.next().expect("--state-dir needs a path"));
            }
            "--chaos" => opts.chaos = true,
            "--seed" => {
                opts.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed needs an integer");
            }
            other => panic!("unknown argument {other:?} (try --state-dir PATH, --chaos, --seed N)"),
        }
    }
    opts
}

fn workload(chaos: bool) -> (easeml_data::Dataset, Vec<ArmPrior>, SimConfig) {
    let dataset = easeml_data::SynConfig {
        num_users: 4,
        num_models: 3,
        ..easeml_data::SynConfig::paper(0.5, 0.5)
    }
    .generate(1);
    let priors: Vec<ArmPrior> = (0..4).map(|_| ArmPrior::independent(3, 0.05)).collect();
    let mut cfg = SimConfig::new(8.0);
    if chaos {
        cfg.fault = Some(
            FaultConfig::new(99)
                .with_crash_rate(0.25)
                .with_stragglers(0.20, 2.5),
        );
    }
    (dataset, priors, cfg)
}

fn wal_options() -> WalOptions {
    WalOptions {
        segment_bytes: 1024,
        fsync: FsyncPolicy::EveryN(4),
    }
}

const MID_CHECKPOINT_AT: usize = 6;

fn main() {
    let opts = parse_args();
    let (dataset, priors, cfg) = workload(opts.chaos);
    let make = || {
        ExecEngine::new(
            &dataset,
            &priors,
            SchedulerKind::EaseMl,
            &cfg,
            Fleet::uniform(3),
            7,
            RecorderHandle::noop(),
        )
    };

    // Phase 1: the uninterrupted reference (scratch WAL, discarded).
    let probe_dir = opts.state_dir.join("reference-scratch");
    let _ = std::fs::remove_dir_all(&opts.state_dir);
    std::fs::create_dir_all(&probe_dir).expect("create state dir");
    let mut reference = make();
    reference.set_durability(Durability::open(&probe_dir, wal_options()).expect("open probe WAL"));
    let mut ticks = 0usize;
    while reference.tick() {
        ticks += 1;
    }
    let reference_digest = reference.state_digest();
    let total_bytes = reference.durability().stream_offset();
    drop(reference);
    let _ = std::fs::remove_dir_all(&probe_dir);
    println!(
        "reference: {ticks} completion(s), digest {reference_digest}, wal stream {total_bytes} byte(s)"
    );

    // Phase 2: the doomed run, crash point drawn from the seed.
    let crash_at = sample_offsets(opts.seed, total_bytes.saturating_sub(1), 1)[0];
    let wal_dir = opts.state_dir.join("wal");
    std::fs::create_dir_all(&wal_dir).expect("create wal dir");
    let ckpt = opts.state_dir.join("checkpoint.json");
    let mut doomed = make();
    let durability = Durability::open(&wal_dir, wal_options()).expect("open WAL");
    durability.set_crash_point(Some(CrashPoint::at_byte(crash_at)));
    doomed.set_durability(durability);
    doomed.checkpoint_to(&ckpt).expect("initial checkpoint");
    let mut t = 0usize;
    let mut checkpointed = 0usize;
    while !doomed.durability().is_dead() && doomed.tick() {
        t += 1;
        if t == MID_CHECKPOINT_AT && !doomed.durability().is_dead() {
            doomed.checkpoint_to(&ckpt).expect("mid-run checkpoint");
            checkpointed = t;
        }
    }
    println!(
        "doomed run: crash point fired at byte {crash_at} after {t} completion(s) \
         (last durable checkpoint at {checkpointed})"
    );
    drop(doomed);

    // Phase 3: recover, verify, and catch up to the reference.
    let doc = std::fs::read_to_string(&ckpt).expect("read checkpoint");
    let ck = ExecCheckpoint::from_json(&doc).expect("parse checkpoint");
    let (mut recovered, report) =
        recover_engine(&dataset, &priors, &ck, &wal_dir).expect("recovery");
    println!(
        "recovered: checkpoint at {} completion(s), replayed {} (digest-verified), \
         dropped {} uncommitted record(s), torn tail: {}",
        report.checkpoint_rounds,
        report.replayed_rounds,
        report.dropped_records,
        report.torn_tail.as_deref().unwrap_or("none"),
    );
    while recovered.tick() {}
    let recovered_digest = recovered.state_digest();
    println!(
        "recovery digest match: {}",
        recovered_digest == reference_digest
    );
    assert_eq!(
        recovered_digest, reference_digest,
        "recovered run diverged from the uninterrupted reference"
    );
    println!(
        "state kept in {} (audit with: easeml-trace recovery-report {})",
        opts.state_dir.display(),
        wal_dir.display()
    );
}
