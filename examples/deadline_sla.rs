//! Extension example: deadline-aware scheduling (§4.5's open question of
//! integrating "hard rules such as each user's deadline").
//!
//! Three research groups share the cluster. The meteorology group has a
//! conference deadline: it must have been served at least 4 times by global
//! round 6, no matter what the greedy potential estimates say. The
//! `DeadlinePicker` wrapper preempts GREEDY exactly when needed and
//! delegates otherwise.
//!
//! Run with: `cargo run --example deadline_sla`

use easeml_bandit::{BetaSchedule, GpUcb};
use easeml_gp::ArmPrior;
use easeml_sched::{Deadline, DeadlinePicker, Greedy, PickRule, Tenant, UserPicker};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let names = ["astro", "meteo", "biology"];
    let k = 4; // candidate models per group
               // Ground truth the scheduler cannot see.
    let qualities = [
        [0.90, 0.70, 0.65, 0.60], // astro: huge potential, greedy loves it
        [0.55, 0.58, 0.60, 0.62], // meteo: small gains, greedy would starve it
        [0.80, 0.75, 0.70, 0.72],
    ];

    let beta = BetaSchedule::MultiTenant {
        max_cost: 1.0,
        num_tenants: 3,
        max_arms: k,
        delta: 0.1,
    };
    let mut tenants: Vec<Tenant> = (0..3)
        .map(|i| {
            Tenant::new(
                i,
                GpUcb::cost_oblivious(ArmPrior::independent(k, 0.05), 1e-3, beta),
            )
        })
        .collect();

    // Meteo (tenant 1) must be served ≥ 4 times by round 6.
    let deadlines = vec![
        None,
        Some(Deadline {
            round: 6,
            min_serves: 4,
        }),
        None,
    ];
    let mut picker = DeadlinePicker::new(Greedy::new(PickRule::MaxUcbGap), deadlines, 6);
    let mut rng = StdRng::seed_from_u64(7);

    // Warm-up: one serve each (Algorithm 2 lines 1–4).
    for (i, t) in tenants.iter_mut().enumerate() {
        let m = t.select_model();
        t.observe(m, qualities[i][m]);
    }

    println!("round  served   reason                serves(meteo)");
    for step in 0..10 {
        let urgent = picker.most_urgent(&tenants, step);
        let u = picker.pick(&tenants, step, &mut rng);
        let m = tenants[u].select_model();
        tenants[u].observe(m, qualities[u][m]);
        picker.after_observe(&tenants, u);
        let reason = match urgent {
            Some(x) if x == u => "deadline override",
            _ => "greedy potential",
        };
        println!(
            "{step:>5}  {:<8} {:<21} {}",
            names[u],
            reason,
            tenants[1].serves()
        );
    }

    let meteo_serves = tenants[1].serves();
    println!("\nmeteo was served {meteo_serves} times (deadline required 4 by round 6)");
    assert!(meteo_serves >= 4, "SLA violated");
    println!("SLA met; remaining capacity went to the high-potential groups.");
}
