//! The Figure-3 walkthrough: a declarative image-classification service.
//!
//! Two research groups declare their tasks in the ease.ml DSL, feed
//! examples, and let the platform explore candidate models on the shared
//! (simulated) cluster with the HYBRID scheduler. `infer` always serves the
//! best model found so far.
//!
//! Run with: `cargo run --example image_classification_service`

use easeml::server::{EaseMl, QualityOracle, TrainingOutcome};

fn main() {
    // The quality oracle stands in for the deep-learning subsystem: it
    // replays a plausible accuracy/cost profile per (user, architecture).
    let oracle: QualityOracle = Box::new(|user, model| {
        let info = model.info();
        // User 0's task is easy; user 1's is harder and favours deeper nets.
        let base: f64 = if user == 0 { 0.82 } else { 0.55 };
        let depth_bonus = match info.name {
            "ResNet-50" | "VGG-16" => 0.08,
            "GoogLeNet" | "ResNet-18" => 0.05,
            _ => 0.0,
        };
        Ok(TrainingOutcome {
            accuracy: (base + depth_bonus).min(0.99),
            cost: info.relative_cost,
        })
    });

    let mut server = EaseMl::new(oracle, 42);

    // a. Define models (Figure 3a): dogs-vs-cats for the vision group…
    let vision = server
        .register_user(
            "vision-group",
            "{input: {[Tensor[256, 256, 3]], []}, output: {[Tensor[2]], []}}",
        )
        .expect("valid program");
    // …and a 1000-class problem for the biology group.
    let biology = server
        .register_user(
            "biology-group",
            "{input: {[Tensor[224, 224, 3]], []}, output: {[Tensor[1000]], []}}",
        )
        .expect("valid program");

    println!("registered users: {}", server.num_users());
    for (user, name) in [(vision, "vision-group"), (biology, "biology-group")] {
        println!(
            "  {name}: workload = {}, candidates = {:?}",
            server.job(user).workload(),
            server
                .job(user)
                .candidate_models()
                .iter()
                .map(|m| m.name())
                .collect::<Vec<_>>()
        );
    }

    // c. Supervision (Figure 3c): pipe labelled examples into `feed`.
    let dog_images = (0..250).map(|i| (vec![i as f64; 4], vec![1.0, 0.0]));
    println!(
        "\nvision-group: {} images added",
        server.storage().feed(vision, dog_images)
    );
    let cat_images = (0..300).map(|i| (vec![i as f64; 4], vec![0.0, 1.0]));
    println!(
        "vision-group: {} images total",
        server.storage().feed(vision, cat_images)
    );

    // e. Supervision engineering (Figure 3e): refine flips noisy labels off.
    server.storage().refine(vision, 3, false);
    println!(
        "vision-group: {} examples enabled after refine",
        server.storage().enabled_count(vision)
    );

    // d. Update model (Figure 3d): the platform explores in the background.
    println!("\n- - - - REPORT - - - -");
    let mut last_best: Vec<Option<f64>> = vec![None, None];
    for day in 1..=12 {
        let (user, model, outcome) = server.run_round();
        let improved = last_best[user].is_none_or(|b| outcome.accuracy > b);
        if improved {
            last_best[user] = Some(outcome.accuracy);
            println!(
                "Day {day:>2}: user {user} {:<12} acc {:.0}  <- new best",
                model.name(),
                outcome.accuracy * 100.0
            );
        } else {
            println!(
                "Day {day:>2}: user {user} {:<12} acc {:.0}",
                model.name(),
                outcome.accuracy * 100.0
            );
        }
    }
    println!("- - - - - - - - - - -");

    // b. Apply model (Figure 3b): `infer` uses the best model so far.
    for (user, name) in [(vision, "vision-group"), (biology, "biology-group")] {
        let (model, acc) = server.infer(user).expect("explored at least once");
        println!(
            "{name}: infer() now served by {} at accuracy {:.2} (cluster time {:.1}h)",
            model.name(),
            acc,
            server.elapsed()
        );
    }
}
