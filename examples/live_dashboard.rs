//! A HYBRID multi-tenant run that is observable *while it executes*.
//!
//! Wires the full live-telemetry stack around an [`EaseMl`] server:
//!
//! * a [`TeeRecorder`] fans every event out to an [`InMemoryRecorder`]
//!   (backing `/trace`), a [`TimeSeriesRecorder`] (per-tenant regret
//!   curves), and a rotating [`JsonlFileSink`] on disk;
//! * a [`TelemetryServer`] serves `/healthz`, `/metrics` (Prometheus),
//!   `/status` (JSON job snapshot), and `/trace?after=<seq>`;
//! * while rounds execute, the example polls its *own* `/metrics` endpoint
//!   over TCP — exactly what a Prometheus scraper would fetch — and renders
//!   the per-tenant regret table in the terminal.
//!
//! Run with: `cargo run --release --example live_dashboard`
//!
//! Flags: `--rounds N` (default 60), `--port P` (default 0 = ephemeral),
//! `--no-serve` (skip the HTTP endpoint; print from the in-process
//! snapshot instead — used by the CI smoke test), `--trace-out PATH`
//! (write the JSONL trace to PATH and keep it on exit, ready for
//! `easeml-trace report PATH`; without it the trace goes to a temp file
//! that is deleted when the example finishes), `--chaos` (attach a seeded
//! fault injector: crashes, timeouts, and stragglers exercise the
//! retry/quarantine path while the dashboard stays live — the CI chaos
//! smoke test runs exactly this), `--profile-out PATH` (attach a live
//! [`easeml_obs::Profiler`]: `/profile` serves the call-tree while the
//! run executes, and flamegraph-ready folded stacks land at PATH on
//! exit).

use easeml::fault::{FaultConfig, FaultInjector};
use easeml::prelude::*;
use easeml::server::{QualityOracle, TrainingOutcome};
use easeml_dsl::ModelId;
use easeml_obs::{
    InMemoryRecorder, JsonlFileSink, RecorderHandle, StreamingSink, TeeRecorder, TimeSeriesRecorder,
};
use easeml_obs_http::{TelemetryHub, TelemetryServer};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

/// Four research groups sharing the cluster: two vision, two time-series.
const TENANTS: &[(&str, &str)] = &[
    (
        "vision-lab",
        "{input: {[Tensor[64, 64, 3]], []}, output: {[Tensor[5]], []}}",
    ),
    (
        "meteo-lab",
        "{input: {[Tensor[16]], [next]}, output: {[Tensor[3]], []}}",
    ),
    (
        "astro-lab",
        "{input: {[Tensor[32, 32, 3]], []}, output: {[Tensor[10]], []}}",
    ),
    (
        "finance-lab",
        "{input: {[Tensor[8]], [next]}, output: {[Tensor[2]], []}}",
    ),
];

/// Deterministic toy oracle: per-user base quality plus a model-recency
/// bonus, cost from the model zoo. Kept as a free function so the example
/// can also compute each tenant's best achievable quality μ* (the regret
/// target).
fn oracle(user: usize, model: ModelId) -> TrainingOutcome {
    let info = model.info();
    let base = [0.70, 0.52, 0.61, 0.47][user % 4];
    TrainingOutcome {
        accuracy: (base + 0.02 * (info.year as f64 - 2010.0)).min(0.99),
        cost: info.relative_cost,
    }
}

struct Options {
    rounds: usize,
    serve: bool,
    port: u16,
    trace_out: Option<std::path::PathBuf>,
    chaos: bool,
    profile_out: Option<std::path::PathBuf>,
}

fn parse_args() -> Options {
    let mut opts = Options {
        rounds: 60,
        serve: true,
        port: 0,
        trace_out: None,
        chaos: false,
        profile_out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--rounds" => {
                let value = args.next().expect("--rounds needs a value");
                opts.rounds = value.parse().expect("--rounds must be an integer");
            }
            "--port" => {
                let value = args.next().expect("--port needs a value");
                opts.port = value.parse().expect("--port must be a port number");
            }
            "--no-serve" => opts.serve = false,
            "--trace-out" => {
                let value = args.next().expect("--trace-out needs a path");
                opts.trace_out = Some(value.into());
            }
            "--chaos" => opts.chaos = true,
            "--profile-out" => {
                let value = args.next().expect("--profile-out needs a path");
                opts.profile_out = Some(value.into());
            }
            other => {
                eprintln!(
                    "unknown argument {other:?}; flags: --rounds N --port P --no-serve \
                     --trace-out PATH --chaos --profile-out PATH"
                );
                std::process::exit(2);
            }
        }
    }
    opts
}

/// One blocking `GET` against the local endpoint; returns the body.
fn fetch(addr: SocketAddr, target: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("telemetry endpoint vanished");
    write!(stream, "GET {target} HTTP/1.1\r\nHost: dash\r\n\r\n").expect("write request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    match raw.split_once("\r\n\r\n") {
        Some((_, body)) => body.to_string(),
        None => String::new(),
    }
}

/// Pulls `easeml_user_regret{user="i"} v` samples out of a Prometheus
/// payload — the same parse a dashboard panel would do.
fn regret_from_metrics(metrics: &str) -> Vec<(usize, f64)> {
    metrics
        .lines()
        .filter_map(|line| {
            let rest = line.strip_prefix("easeml_user_regret{user=\"")?;
            let (user, value) = rest.split_once("\"} ")?;
            Some((user.parse().ok()?, value.parse().ok()?))
        })
        .collect()
}

fn print_table(round: usize, clock: f64, regrets: &[(usize, f64)], source: &str) {
    println!("after round {round:>4}  (sim clock {clock:>8.2}, via {source})");
    println!("  {:<12} {:>8}", "tenant", "regret");
    for &(user, regret) in regrets {
        let name = TENANTS.get(user).map_or("?", |(n, _)| *n);
        let bar = "#".repeat((regret * 40.0).round() as usize);
        println!("  {name:<12} {regret:>8.4}  {bar}");
    }
    let mean = regrets.iter().map(|(_, r)| r).sum::<f64>() / regrets.len().max(1) as f64;
    println!("  {:<12} {mean:>8.4}\n", "mean");
}

fn main() {
    let opts = parse_args();

    // Recorder stack: one event stream feeds the in-memory trace, the
    // per-tenant regret curves, and a rotating on-disk JSONL trace.
    let primary = Arc::new(InMemoryRecorder::new());
    let series = Arc::new(TimeSeriesRecorder::new().with_sample_interval(0.5));
    // An explicit --trace-out path is kept for offline analysis with
    // `easeml-trace`; the default temp-dir trace is deleted on exit.
    let trace_path = opts.trace_out.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!(
            "easeml-live-dashboard-{}.jsonl",
            std::process::id()
        ))
    });
    let file_sink =
        Arc::new(JsonlFileSink::create(&trace_path).expect("create trace file in temp dir"));
    let tee = Arc::new(
        TeeRecorder::new(primary.clone())
            .with_sink(series.clone() as Arc<dyn StreamingSink>)
            .with_sink(file_sink.clone() as Arc<dyn StreamingSink>),
    );

    let quality: QualityOracle = Box::new(|user, model| Ok(oracle(user, model)));
    let mut service = EaseMl::new(quality, 42);
    if opts.chaos {
        // A seeded, replayable fault storm: 12% crashes, 5% timeouts, 10%
        // stragglers at 3× cost — rough but realistic trainer weather.
        let config = FaultConfig::new(7)
            .with_crash_rate(0.12)
            .with_timeout_rate(0.05)
            .with_stragglers(0.10, 3.0);
        service.set_fault_injector(Some(FaultInjector::new(config)));
        println!("chaos mode: seeded fault injection is ON\n");
    }
    service.set_recorder(RecorderHandle::new(tee.clone()));
    for (name, program) in TENANTS {
        service.register_user(name, program).expect("valid program");
    }
    // Regret against the true best achievable quality μ*, which the toy
    // oracle lets us compute exactly.
    for user in 0..service.num_users() {
        let target = service
            .job(user)
            .candidate_models()
            .iter()
            .map(|&m| oracle(user, m).accuracy)
            .fold(0.0f64, f64::max);
        series.set_target(user, target);
    }

    // With --profile-out, a live profiler aggregates every span the run
    // opens; /profile serves the call tree while rounds execute, and the
    // folded stacks are written on exit.
    let profiler = opts
        .profile_out
        .as_ref()
        .map(|_| Arc::new(easeml_obs::Profiler::new()));
    let previous_profiler = profiler
        .as_ref()
        .map(|p| easeml_obs::set_global_profiler(Some(p.clone())));

    // Registering the file sink publishes its write accounting
    // (easeml_sink_{bytes,lines,dropped,rotations}_total) on /metrics —
    // a scraper can alert on dropped trace writes without touching disk.
    let mut hub = TelemetryHub::new(primary.clone())
        .with_series(series.clone())
        .with_sink_stats("trace", file_sink.clone());
    if let Some(p) = &profiler {
        hub = hub.with_profiler(p.clone());
    }
    let hub = Arc::new(hub);
    hub.set_status_json(service.status_json());
    let telemetry = if opts.serve {
        let server = TelemetryServer::serve(("127.0.0.1", opts.port), hub.clone())
            .expect("bind telemetry endpoint");
        println!("live telemetry on http://{}", server.local_addr());
        println!("  /healthz  /metrics  /status  /trace?after=<seq>  /profile\n");
        Some(server)
    } else {
        None
    };

    let poll_every = (opts.rounds / 6).max(1);
    for round in 1..=opts.rounds {
        service.run_round();
        hub.set_status_json(service.status_json());
        if round % poll_every == 0 || round == opts.rounds {
            match &telemetry {
                Some(server) => {
                    // Poll our own endpoint — the same bytes Prometheus
                    // would scrape — and render the regret table from it.
                    let metrics = fetch(server.local_addr(), "/metrics");
                    let mut regrets = regret_from_metrics(&metrics);
                    regrets.sort_unstable_by_key(|&(user, _)| user);
                    print_table(round, service.elapsed(), &regrets, "/metrics");
                }
                None => {
                    let snapshot = series.snapshot();
                    let regrets: Vec<(usize, f64)> = snapshot
                        .users
                        .iter()
                        .map(|(&user, s)| (user, s.regret()))
                        .collect();
                    print_table(round, snapshot.clock, &regrets, "snapshot");
                }
            }
        }
    }

    tee.flush();
    let snapshot = series.snapshot();
    println!(
        "done: {} rounds, sim clock {:.2}",
        snapshot.rounds, snapshot.clock
    );
    if opts.chaos {
        let status = service.status_snapshot();
        println!(
            "chaos: {} failed (censored) runs charged alongside {} completed",
            status.failed_runs, status.completed_runs
        );
        for user in 0..service.num_users() {
            let quarantined = service.quarantined_arms(user);
            if !quarantined.is_empty() {
                let name = TENANTS.get(user).map_or("?", |(n, _)| *n);
                println!("chaos: {name} has quarantined arms {quarantined:?}");
            }
        }
    }
    println!(
        "trace: {} events in memory, JSONL on disk at {} ({} rotations, {} dropped)",
        primary.num_events(),
        trace_path.display(),
        file_sink.rotations(),
        file_sink.dropped(),
    );
    if let Some(server) = &telemetry {
        let trace_tail = fetch(
            server.local_addr(),
            &format!("/trace?after={}", primary.last_seq().saturating_sub(2)),
        );
        println!("last trace lines via /trace:");
        for line in trace_tail.lines() {
            println!("  {line}");
        }
    }
    if let (Some(path), Some(p)) = (&opts.profile_out, &profiler) {
        easeml_obs::set_global_profiler(previous_profiler.flatten());
        let profile = p.snapshot();
        std::fs::write(path, profile.folded_stacks()).expect("write folded stacks");
        println!(
            "profile: {} closed spans across {} call-tree nodes; folded stacks at {} \
             (render with flamegraph.pl or speedscope)",
            profile.closed_spans(),
            profile.nodes().len().saturating_sub(1),
            path.display()
        );
    }
    drop(telemetry);
    if opts.trace_out.is_none() {
        let _ = std::fs::remove_file(&trace_path);
    } else {
        println!(
            "trace kept for offline analysis: easeml-trace report {}",
            trace_path.display()
        );
    }
}
