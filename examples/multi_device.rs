//! A heterogeneous GPU fleet scheduling four tenants with delayed feedback.
//!
//! Runs the `easeml-exec` discrete-event engine on a synthetic workload:
//!
//! * a fleet of `--devices N` devices with mixed speed factors, kept
//!   saturated by GP-BUCB hallucinated dispatch (arms are picked while
//!   earlier runs are still in flight — feedback arrives later, in
//!   completion order);
//! * mid-run, the engine is checkpointed to JSON with runs still in
//!   flight, then restored and replayed to verify the restart is
//!   bit-identical to the uninterrupted run;
//! * with `--chaos`, a seeded fault injector crashes and times out runs —
//!   a censored run frees its device at censoring time and charges only
//!   its partial cost;
//! * with `--trace-out PATH`, the full structured-event stream (schema v4:
//!   `RunDispatched` / `RunFinished` / `DeviceIdle`) is written as JSONL,
//!   ready for `easeml-trace report PATH`.
//!
//! Run with: `cargo run --example multi_device -- --devices 4 --chaos`

use easeml::fault::FaultConfig;
use easeml::prelude::*;
use easeml_exec::{DeviceSpec, ExecCheckpoint, ExecEngine, Fleet};
use easeml_gp::ArmPrior;
use easeml_obs::{InMemoryRecorder, JsonlFileSink, RecorderHandle, StreamingSink, TeeRecorder};
use std::sync::Arc;

struct Options {
    devices: usize,
    budget: f64,
    chaos: bool,
    trace_out: Option<std::path::PathBuf>,
}

fn parse_args() -> Options {
    let mut opts = Options {
        devices: 4,
        budget: 60.0,
        chaos: false,
        trace_out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--devices" => {
                let value = args.next().expect("--devices needs a value");
                opts.devices = value.parse().expect("--devices must be an integer");
                assert!(opts.devices > 0, "--devices must be positive");
            }
            "--budget" => {
                let value = args.next().expect("--budget needs a value");
                opts.budget = value.parse().expect("--budget must be a number");
            }
            "--chaos" => opts.chaos = true,
            "--trace-out" => {
                let value = args.next().expect("--trace-out needs a path");
                opts.trace_out = Some(value.into());
            }
            other => {
                eprintln!(
                    "unknown argument {other:?}; flags: --devices N --budget B --chaos \
                     --trace-out PATH"
                );
                std::process::exit(2);
            }
        }
    }
    opts
}

/// Mixed speed factors, cycled across the fleet: one hot cluster node, two
/// stock ones, one throttled.
fn fleet_specs(devices: usize) -> Vec<DeviceSpec> {
    const SPEEDS: [f64; 4] = [1.5, 1.0, 1.0, 0.75];
    (0..devices)
        .map(|d| DeviceSpec::with_speed(SPEEDS[d % SPEEDS.len()]))
        .collect()
}

fn main() {
    let opts = parse_args();
    let specs = fleet_specs(opts.devices);

    // Six tenants exploring eight models each, unit costs: every dispatch
    // charges 1.0, so `--budget` is also the total number of dispatches.
    let dataset = easeml_data::SynConfig {
        num_users: 6,
        num_models: 8,
        ..easeml_data::SynConfig::paper(0.5, 1.0)
    }
    .generate(42)
    .unit_cost_view();
    let priors: Vec<ArmPrior> = (0..dataset.num_users())
        .map(|_| ArmPrior::independent(dataset.num_models(), 0.05))
        .collect();
    let mut cfg = SimConfig::new(opts.budget);
    if opts.chaos {
        cfg.fault = Some(
            FaultConfig::new(7)
                .with_crash_rate(0.12)
                .with_timeout_rate(0.05)
                .with_stragglers(0.10, 3.0),
        );
        println!("chaos mode: seeded fault injection is ON");
    }

    // Recorder stack: the in-memory trace, teed to a JSONL file when
    // --trace-out is given.
    let primary = Arc::new(InMemoryRecorder::new());
    let file_sink = opts
        .trace_out
        .as_ref()
        .map(|path| Arc::new(JsonlFileSink::create(path).expect("create trace file")));
    let mut tee = TeeRecorder::new(primary.clone());
    if let Some(sink) = &file_sink {
        tee = tee.with_sink(sink.clone() as Arc<dyn StreamingSink>);
    }
    let tee = Arc::new(tee);
    let handle = RecorderHandle::new(tee.clone());

    println!(
        "fleet: {} device(s), speeds {:?}",
        specs.len(),
        specs.iter().map(|s| s.speed).collect::<Vec<_>>()
    );
    let mut engine = ExecEngine::new(
        &dataset,
        &priors,
        SchedulerKind::Hybrid,
        &cfg,
        Fleet::new(specs.clone()),
        11,
        handle,
    );

    // Step past the first completions, then checkpoint with runs still in
    // flight — the crash-safety path a real cluster controller would take.
    let mut ticked = 0;
    while ticked < 2 * opts.devices && engine.tick() {
        ticked += 1;
    }
    let checkpoint = engine.checkpoint();
    let encoded = checkpoint.to_json();
    println!(
        "checkpoint at t={:.2}: {} bytes, {} run(s) in flight, {:.1} cost committed",
        engine.now(),
        encoded.len(),
        engine.in_flight_len(),
        engine.committed()
    );

    // The interrupted copy restores from JSON and finishes on its own...
    let decoded = ExecCheckpoint::from_json(&encoded).expect("parse checkpoint");
    let restored = ExecEngine::restore(&dataset, &priors, &decoded).expect("restore checkpoint");
    let replayed = restored.run();
    // ...while the original keeps running uninterrupted.
    let trace = engine.run();
    let consistent = replayed == trace;
    println!("checkpoint replay consistent: {consistent}");

    println!(
        "makespan: {:.2}  completed rounds: {}  censored: {}  total charged: {:.1}",
        trace.makespan, trace.sim.rounds, trace.censored, trace.total_charged
    );
    println!("parallel dispatches: {}", trace.parallel_dispatches);
    for (d, spec) in specs.iter().enumerate() {
        let busy = trace.device_busy[d];
        let utilization = 100.0 * busy / (spec.slots as f64 * trace.makespan);
        println!(
            "device {d}: speed {:.2}  busy {:>7.2}  idle {:>7.2}  utilization {utilization:5.1}%",
            spec.speed, busy, trace.device_idle[d]
        );
    }
    let mean_loss = trace
        .sim
        .points
        .last()
        .map_or(trace.sim.initial_loss, |p| p.1);
    println!(
        "mean loss: {:.4} (from {:.4} after warm-up)",
        mean_loss, trace.sim.initial_loss
    );

    tee.flush();
    match &opts.trace_out {
        Some(path) => println!(
            "trace: {} events, JSONL at {} — analyze with: easeml-trace report {}",
            primary.num_events(),
            path.display(),
            path.display()
        ),
        None => println!("trace: {} events in memory", primary.num_events()),
    }
    if !consistent {
        eprintln!("error: restored run diverged from the uninterrupted one");
        std::process::exit(1);
    }
}
