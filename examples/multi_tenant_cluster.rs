//! Multi-tenant scheduling head-to-head on the DEEPLEARNING surrogate: the
//! paper's core claim in one runnable binary.
//!
//! Ten test users share one cluster under a 10%-of-total-cost budget; the
//! HYBRID scheduler (ease.ml) races round robin and the most-cited-first
//! heuristic. Lower accuracy loss earlier is better.
//!
//! Run with: `cargo run --release --example multi_tenant_cluster`

use easeml::prelude::*;
use easeml::report::curves_table;

fn main() {
    let dataset = easeml_data::DatasetKind::DeepLearning.generate(20_180_801);
    println!(
        "dataset: {} ({} users x {} models, total cost {:.0} GPU-hours)",
        dataset.name(),
        dataset.num_users(),
        dataset.num_models(),
        dataset.total_cost()
    );

    let cfg = ExperimentConfig {
        test_users: 10,
        repetitions: 10,
        budget: Budget::FractionOfCost(0.10),
        ..ExperimentConfig::default()
    };
    println!(
        "protocol: {} repetitions, 10 test users, budget = 10% of total cost\n",
        cfg.repetitions
    );

    let results = vec![
        run_experiment(&dataset, SchedulerKind::EaseMl, &cfg, 1),
        run_experiment(&dataset, SchedulerKind::RoundRobin, &cfg, 1),
        run_experiment(&dataset, SchedulerKind::MostCited, &cfg, 1),
    ];
    println!("{}", curves_table(&results, 10));

    // The paper's reading: how much faster does ease.ml reach the loss
    // level it attains after 20% of its budget?
    let target = results[0].mean_curve[results[0].mean_curve.len() / 5];
    for other in 1..results.len() {
        match speedup_factor(
            &results[0].grid_pct,
            &results[other].mean_curve,
            &results[0].mean_curve,
            target,
        ) {
            Some(s) => println!(
                "ease.ml reaches mean loss {target:.3} {s:.1}x faster than {}",
                results[other].scheduler.name()
            ),
            None => println!(
                "{} never reaches mean loss {target:.3} within this budget",
                results[other].scheduler.name()
            ),
        }
    }
}
