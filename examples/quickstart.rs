//! Quickstart: single-tenant, cost-aware model selection with GP-UCB.
//!
//! One user, eight candidate models with different accuracies and training
//! costs. The cost-aware GP-UCB policy of the paper's §3.2 finds the best
//! model while preferring cheap exploration.
//!
//! Run with: `cargo run --example quickstart`

use easeml_bandit::{BetaSchedule, GpUcb, RegretTracker};
use easeml_gp::{ArmPrior, Kernel, RbfKernel};

fn main() {
    // Ground truth the policy cannot see: accuracy and cost per model.
    let names = [
        "NIN",
        "GoogLeNet",
        "ResNet-50",
        "AlexNet",
        "BN-AlexNet",
        "ResNet-18",
        "VGG-16",
        "SqueezeNet",
    ];
    let accuracy = [0.76, 0.83, 0.86, 0.72, 0.77, 0.82, 0.84, 0.73];
    let cost = [2.0, 6.0, 10.0, 1.2, 2.2, 4.0, 12.0, 1.0];

    // Prior: models are correlated through a 1-D "architecture family"
    // feature; in production this comes from quality vectors on other
    // users' datasets (Appendix A).
    let features: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64 * 0.3]).collect();
    let prior = ArmPrior::from_gram(RbfKernel::new(0.8).gram(&features).scaled(0.02))
        .with_mean(vec![0.75; 8]);

    let beta = BetaSchedule::CostAware {
        max_cost: 12.0,
        num_arms: 8,
        delta: 0.1,
    };
    let mut policy = GpUcb::cost_aware(prior, 1e-4, beta, cost.to_vec());
    let mut regret = RegretTracker::with_costs(accuracy.to_vec(), cost.to_vec());

    println!("round  model        accuracy  cost   best-so-far  accuracy-loss");
    for round in 1..=10 {
        let arm = policy.select_arm();
        policy.observe(arm, accuracy[arm]);
        regret.record(arm, accuracy[arm]);
        let (best_arm, best_acc) = policy.best_observed().unwrap();
        println!(
            "{round:>5}  {:<11} {:>9.2} {:>5.1}   {:<11} {:>13.3}",
            names[arm],
            accuracy[arm],
            cost[arm],
            names[best_arm],
            regret.accuracy_loss()
        );
        if regret.accuracy_loss() < 1e-9 {
            println!("\nfound the best model ({best_acc}) after {round} rounds");
            break;
        }
    }
    println!(
        "\ntotal training cost spent: {:.1} GPU-hours (training everything once costs {:.1})",
        regret.total_cost(),
        cost.iter().sum::<f64>()
    );
}
