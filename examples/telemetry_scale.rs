//! Constant-memory telemetry under a tenant-count stress test.
//!
//! Folds a synthetic multi-tenant event stream into an *aggregate-mode*
//! [`TimeSeriesRecorder`] — the bounded configuration that replaces
//! per-tenant series with mergeable quantile sketches, top-K offender
//! trackers, and a fixed exemplar reservoir — and verifies the two claims
//! the scale layer makes:
//!
//! 1. **Boundedness**: recorder state and the rendered `/metrics` body
//!    stay ~flat as the tenant count U grows (run `--sweep` for the
//!    U ∈ {1k, 10k, 100k} version the CI smoke test executes);
//! 2. **Accuracy**: the regret quantiles the sketch reports agree with an
//!    exact sort of the same observations within the configured relative
//!    error.
//!
//! Prints `telemetry scale check: pass` when both hold.
//!
//! Run with: `cargo run --release --example telemetry_scale -- --sweep`
//!
//! Flags: `--users N` (default 100000), `--events N` (default 50000),
//! `--sweep` (run U ∈ {1k, 10k, 100k} with the same event budget and
//! assert state/body stay flat across the two orders of magnitude),
//! `--profile` (run each fold under a live [`easeml_obs::Profiler`] and
//! print the per-phase self-time table — where does a 100k-tenant fold
//! actually spend its time?).

use easeml_obs::{
    set_global_profiler, Event, InMemoryRecorder, Profiler, RecorderHandle, ScaleConfig,
    TimeSeriesRecorder, DEFAULT_SKETCH_ALPHA,
};
use easeml_obs_http::render_metrics;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Quality target every synthetic tenant chases; regret observation of a
/// run is `max(target - quality, 0)`, matching the recorder's fold.
const TARGET: f64 = 0.95;

struct Options {
    users: usize,
    events: usize,
    sweep: bool,
    profile: bool,
}

fn parse_args() -> Options {
    let mut opts = Options {
        users: 100_000,
        events: 50_000,
        sweep: false,
        profile: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--users" => {
                let value = args.next().expect("--users needs a value");
                opts.users = value.parse().expect("--users must be an integer");
            }
            "--events" => {
                let value = args.next().expect("--events needs a value");
                opts.events = value.parse().expect("--events must be an integer");
            }
            "--sweep" => opts.sweep = true,
            "--profile" => opts.profile = true,
            other => {
                eprintln!(
                    "unknown argument {other:?}; flags: --users N --events N --sweep --profile"
                );
                std::process::exit(2);
            }
        }
    }
    opts
}

/// Result of one fold run: the bounded footprints plus the exact regret
/// observations for the sketch cross-check.
struct RunOutcome {
    state_bytes: usize,
    metrics_bytes: usize,
    sketch_quantiles: Vec<(f64, f64)>,
    exact_regret: Vec<f64>,
}

/// Folds `events` synthetic training runs across `users` tenants into a
/// fresh aggregate-mode recorder and snapshots the bounded layer.
fn run_fold(users: usize, events: usize, seed: u64) -> RunOutcome {
    const RULES: [&str; 3] = ["hybrid", "greedy(max-gap)", "round-robin"];
    // Coarse phase spans for --profile. The handle is a noop recorder —
    // nothing lands in any event buffer — but a live global profiler still
    // hooks span enter/exit and attributes wall time to the phases.
    let spans = RecorderHandle::noop();
    let recorder = TimeSeriesRecorder::aggregate(ScaleConfig::default());
    recorder.set_default_target(TARGET);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut exact_regret = Vec::new();
    let fold_span = spans.span("scale_fold");
    for i in 0..events {
        let user = rng.gen_range(0..users.max(1));
        if i % 16 == 0 {
            recorder.fold(&Event::SchedulerDecision {
                round: i as u64,
                user,
                rule: RULES[(i / 16) % RULES.len()].to_string(),
                scores: Vec::new(),
                parent: 0,
            });
        } else {
            let quality: f64 = rng.gen_range(0.0..1.0);
            exact_regret.push((TARGET - quality).max(0.0));
            recorder.fold(&Event::TrainingCompleted {
                user,
                model: i % 20,
                cost: rng.gen_range(0.5..1.5),
                quality,
                parent: 0,
            });
        }
    }
    drop(fold_span);
    let snapshot = {
        let _span = spans.span("snapshot");
        recorder.snapshot()
    };
    // Render the same bytes a Prometheus scraper would pull; an empty
    // event recorder keeps the measurement about the bounded families.
    let body = {
        let _span = spans.span("render_metrics");
        render_metrics(&InMemoryRecorder::new(), Some(&snapshot))
    };
    let merged = snapshot.scale.merged().expect("stream produced runs");
    let sketch_quantiles = [0.5, 0.9, 0.99]
        .iter()
        .map(|&q| (q, merged.regret.quantile(q).unwrap_or(0.0)))
        .collect();
    RunOutcome {
        state_bytes: recorder.approx_state_bytes(),
        metrics_bytes: body.len(),
        sketch_quantiles,
        exact_regret,
    }
}

/// Compares the sketch's regret quantiles against an exact sort of the
/// same observations; returns the worst relative error.
fn cross_check(outcome: &mut RunOutcome) -> f64 {
    outcome
        .exact_regret
        .sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite regret"));
    let n = outcome.exact_regret.len();
    let mut worst = 0.0f64;
    for &(q, est) in &outcome.sketch_quantiles {
        let rank = ((q * (n - 1) as f64).floor() as usize).min(n - 1);
        let truth = outcome.exact_regret[rank];
        let rel = if truth.abs() > 1e-9 {
            (est - truth).abs() / truth
        } else if (est - truth).abs() > 1e-9 {
            f64::INFINITY
        } else {
            0.0
        };
        worst = worst.max(rel);
    }
    worst
}

fn main() {
    let opts = parse_args();
    let tenant_counts: Vec<usize> = if opts.sweep {
        vec![1_000, 10_000, 100_000]
    } else {
        vec![opts.users]
    };

    println!(
        "aggregate-mode fold: {} events per run, U in {:?}",
        opts.events, tenant_counts
    );
    println!(
        "{:>8} {:>12} {:>14} {:>22}",
        "users", "state bytes", "metrics bytes", "regret p50/p90/p99"
    );
    let mut rows = Vec::new();
    let mut phase_tables = Vec::new();
    for &users in &tenant_counts {
        let mut outcome = if opts.profile {
            // Fresh profiler per tenant count, so each table stands alone.
            let profiler = Arc::new(Profiler::new());
            let previous = set_global_profiler(Some(profiler.clone()));
            let outcome = run_fold(users, opts.events, 20_180_801 ^ users as u64);
            set_global_profiler(previous);
            phase_tables.push((users, profiler.snapshot()));
            outcome
        } else {
            run_fold(users, opts.events, 20_180_801 ^ users as u64)
        };
        let worst_rel = cross_check(&mut outcome);
        let qs: Vec<String> = outcome
            .sketch_quantiles
            .iter()
            .map(|(_, v)| format!("{v:.4}"))
            .collect();
        println!(
            "{users:>8} {:>12} {:>14} {:>22}",
            outcome.state_bytes,
            outcome.metrics_bytes,
            qs.join(" / ")
        );
        // The sketch promises relative error alpha on every quantile; the
        // extra alpha of slack absorbs rank rounding at the sort
        // boundaries.
        assert!(
            worst_rel <= 2.0 * DEFAULT_SKETCH_ALPHA,
            "sketch quantiles drifted {:.3}% from the exact sort (limit {:.3}%)",
            worst_rel * 100.0,
            200.0 * DEFAULT_SKETCH_ALPHA
        );
        rows.push((users, outcome.state_bytes, outcome.metrics_bytes));
    }

    // Boundedness is one-sided: across the sweep (a 100x tenant-count
    // spread in --sweep mode) neither the recorder state nor the scrape
    // body may *grow* with U. Either may shrink — with a fixed event
    // budget a small U gives every exemplar tenant a longer curve window.
    let (small, large) = (rows.first().expect("ran"), rows.last().expect("ran"));
    assert!(
        large.1 as f64 <= 1.5 * small.1 as f64,
        "recorder state grew with U: {} bytes at U={} vs {} bytes at U={}",
        large.1,
        large.0,
        small.1,
        small.0
    );
    assert!(
        large.2 as f64 <= 1.5 * small.2 as f64,
        "/metrics body grew with U: {} bytes at U={} vs {} bytes at U={}",
        large.2,
        large.0,
        small.2,
        small.0
    );
    // And in absolute terms the bounded layer must stay small — far under
    // what per-tenant series would need at these tenant counts.
    let max_state = rows.iter().map(|r| r.1).max().expect("at least one run");
    assert!(
        max_state < 512 * 1024,
        "recorder state must stay under 512 KiB, got {max_state}"
    );

    for (users, profile) in &phase_tables {
        println!("\nphase breakdown at U={users} (--profile):");
        println!(
            "  {:<16} {:>8} {:>12} {:>14}",
            "phase", "calls", "self ms", "p95 ns/call"
        );
        for row in profile.phase_table() {
            println!(
                "  {:<16} {:>8} {:>12.2} {:>14.0}",
                row.name,
                row.calls,
                row.self_ns as f64 / 1e6,
                row.latency.quantile(0.95).unwrap_or(0.0)
            );
        }
    }

    println!(
        "\nsketch-vs-exact agreement within {:.1}% on every run",
        200.0 * DEFAULT_SKETCH_ALPHA
    );
    println!("state and /metrics body flat across the sweep: ok");
    println!("telemetry scale check: pass");
}
