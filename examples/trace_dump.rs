//! Recording a simulation: HYBRID vs round robin with the observability
//! layer attached.
//!
//! Runs the same synthetic workload under both schedulers with an
//! [`easeml_obs::InMemoryRecorder`] plugged in, prints each recorder's
//! human-readable summary (event totals, per-component latencies, per-user
//! service stats), and dumps the first few lines of the HYBRID run's JSONL
//! trace — the machine-readable stream a dashboard or notebook would
//! consume.
//!
//! Run with: `cargo run --release --example trace_dump`

use easeml::prelude::*;
use easeml_gp::ArmPrior;
use easeml_obs::{InMemoryRecorder, Recorder, RecorderHandle};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn record_run(kind: SchedulerKind) -> (Arc<InMemoryRecorder>, SimTrace) {
    let dataset = easeml_data::SynConfig {
        num_users: 8,
        num_models: 16,
        ..easeml_data::SynConfig::paper(0.5, 1.0)
    }
    .generate(42)
    .unit_cost_view();
    let priors: Vec<ArmPrior> = (0..8).map(|_| ArmPrior::independent(16, 0.05)).collect();
    let cfg = SimConfig {
        budget: 64.0,
        cost_aware: false,
        noise_var: 1e-3,
        delta: 0.1,
        fault: None,
    };

    let rec = Arc::new(InMemoryRecorder::new());
    let handle = RecorderHandle::new(rec.clone());
    // The global hook additionally captures the library-internal timers
    // (Cholesky, posterior refresh) that have no recorder parameter.
    let previous = easeml_obs::set_global_recorder(Some(rec.clone() as Arc<dyn Recorder>));
    let mut rng = StdRng::seed_from_u64(7);
    let trace = simulate_with_recorder(&dataset, &priors, kind, &cfg, &mut rng, &handle);
    easeml_obs::set_global_recorder(previous);
    (rec, trace)
}

fn main() {
    for kind in [SchedulerKind::EaseMl, SchedulerKind::RoundRobin] {
        let (rec, trace) = record_run(kind);
        println!("────────────────────────────────────────────────────────");
        println!(
            "scheduler {:<18} {} rounds, final mean loss {:.4}",
            kind.name(),
            trace.rounds,
            easeml_linalg::vec_ops::mean(&trace.final_losses)
        );
        println!("────────────────────────────────────────────────────────");
        println!("{}", rec.summary());

        if kind == SchedulerKind::EaseMl {
            println!("first 8 lines of the JSONL trace:");
            for line in rec.to_jsonl().lines().take(8) {
                println!("  {line}");
            }
            println!();
        }
    }
}
