//! Cluster-trace CSV → open-loop replay → `workload-report`.
//!
//! The end-to-end path `easeml-workload` exists for, on a bundled
//! miniature Azure-style trace (`examples/data/azure_mini.csv`):
//!
//! * parse the CSV with [`easeml_workload::AzureTraceReader`] and fold its
//!   free-form tenant keys onto the engine's fixed user slots with
//!   [`easeml_workload::map_jobs`];
//! * turn the mapped jobs into a [`easeml_workload::WorkloadScript`] where
//!   each tenant retires right after its final arrival — the churn a
//!   bounded trace implies;
//! * replay the script open-loop through the HYBRID scheduler on a
//!   three-device fleet, recording the structured-event stream (schema v6:
//!   `JobArrived` / `TenantRetired` ride alongside the execution events);
//! * load the recorded JSONL back through `easeml-trace` and print the
//!   same report `easeml-trace workload-report` renders, then assert the
//!   invariants CI greps for: nonzero tenant churn and a consistent
//!   Theorem 1 regret decomposition.
//!
//! Run with: `cargo run --example trace_replay`
//! Flags: `--trace-out PATH` (keep the JSONL), `--report-out PATH` (write
//! the rendered report, e.g. for a CI artifact).

use easeml::prelude::*;
use easeml_exec::{ExecEngine, Fleet};
use easeml_gp::ArmPrior;
use easeml_obs::{schema_header_line, InMemoryRecorder, RecorderHandle};
use easeml_workload::{map_jobs, AzureTraceReader, ReplayDriver, TraceReader, WorkloadScript};
use std::collections::BTreeMap;
use std::sync::Arc;

/// The bundled miniature Azure-style VM-instances table.
const MINI_TRACE: &str = include_str!("data/azure_mini.csv");

/// Engine user slots the trace's tenant keys fold onto.
const USERS: usize = 6;

/// Devices in the replay fleet.
const DEVICES: usize = 3;

/// Seed for the dataset and the engine's hallucinated-dispatch stream.
const SEED: u64 = 42;

struct Options {
    trace_out: Option<std::path::PathBuf>,
    report_out: Option<std::path::PathBuf>,
}

fn parse_args() -> Options {
    let mut opts = Options {
        trace_out: None,
        report_out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--trace-out" => {
                let value = args.next().expect("--trace-out needs a path");
                opts.trace_out = Some(value.into());
            }
            "--report-out" => {
                let value = args.next().expect("--report-out needs a path");
                opts.report_out = Some(value.into());
            }
            other => {
                eprintln!("unknown argument {other:?}; flags: --trace-out PATH --report-out PATH");
                std::process::exit(2);
            }
        }
    }
    opts
}

fn main() {
    let opts = parse_args();

    // 1. Trace CSV → time-sorted jobs → engine user slots.
    let jobs = AzureTraceReader
        .parse(MINI_TRACE)
        .expect("bundled trace parses");
    let (mapped, tenants) = map_jobs(&jobs, USERS);
    println!(
        "parsed {} azure jobs -> {} tenant(s) on {} slot(s), {} dropped",
        jobs.len(),
        tenants.names.len(),
        USERS,
        tenants.dropped,
    );
    for (slot, name) in tenants.names.iter().enumerate() {
        println!("  slot {slot}: {name}");
    }
    assert_eq!(tenants.dropped, 0, "the bundled trace fits the slot budget");

    // 2. Mapped jobs → open-loop script; a bounded trace implies churn
    //    (each tenant retires after its last arrival).
    let script = WorkloadScript::from_trace(&mapped, true);
    println!(
        "script: {} arrival(s), {} lifecycle event(s)\n",
        script.arrivals(),
        script.lifecycle_events(),
    );

    // 3. Replay through HYBRID on a uniform fleet, recording everything.
    //    The budget never binds: the trace bounds the work.
    let dataset = easeml_data::SynConfig {
        num_users: USERS,
        num_models: 6,
        ..easeml_data::SynConfig::paper(0.5, 0.5)
    }
    .generate(SEED);
    let priors: Vec<ArmPrior> = (0..USERS).map(|_| ArmPrior::independent(6, 0.05)).collect();
    let cfg = SimConfig::new(1e12);
    let rec = Arc::new(InMemoryRecorder::new());
    let driver = ReplayDriver::new(
        ExecEngine::new(
            &dataset,
            &priors,
            SchedulerKind::Hybrid,
            &cfg,
            Fleet::uniform(DEVICES),
            SEED,
            RecorderHandle::new(rec.clone()),
        ),
        script,
    );
    let exec_trace = driver.run();
    println!(
        "replayed: {} dispatch(es), makespan {:.4}\n",
        exec_trace.dispatches, exec_trace.makespan,
    );

    // 4. Recorded events → JSONL on disk → back through the trace loader,
    //    exactly what `easeml-trace workload-report FILE` would read.
    let trace_path = opts
        .trace_out
        .unwrap_or_else(|| std::env::temp_dir().join("easeml_trace_replay.jsonl"));
    let jsonl = format!("{}\n{}", schema_header_line(), rec.to_jsonl());
    std::fs::write(&trace_path, jsonl).expect("write trace jsonl");
    let loaded = easeml_trace::load_trace(&trace_path).expect("reload the recorded trace");
    let report = easeml_trace::render_workload_report(&loaded, &BTreeMap::new());
    print!("{report}");

    // 5. The invariants CI greps for, asserted in-process too.
    let fold = easeml_trace::workload_report(&loaded.events);
    assert_eq!(
        fold.arrivals as usize,
        mapped.len(),
        "every mapped job reaches the recorded trace"
    );
    assert!(
        fold.retirements as usize == tenants.names.len(),
        "each trace tenant retires after its final job"
    );
    assert!(exec_trace.dispatches > 0, "the replay dispatched work");
    assert!(
        report.contains("decomposition consistent: true"),
        "Theorem 1 regret decomposition must balance on the replayed trace"
    );
    println!(
        "\nchecks: {} arrival(s) recorded, {} retirement(s), decomposition consistent",
        fold.arrivals, fold.retirements,
    );

    if let Some(path) = opts.report_out {
        std::fs::write(&path, &report).expect("write report");
        println!("report written to {}", path.display());
    }
    println!("trace written to {}", trace_path.display());
}
