#!/usr/bin/env bash
# Compare two `easeml_bench::obs_snapshot` perf dumps and fail on
# per-component latency regressions.
#
# Usage: scripts/bench_snapshot_diff.sh BASELINE.perf.json CANDIDATE.perf.json [THRESHOLD_PCT]
#
#   BASELINE / CANDIDATE  perf.json files written under target/experiments/
#                         by `cargo bench -p easeml-bench --bench obs_overhead`
#   THRESHOLD_PCT         max allowed p50/p95 increase, percent (default 25)
#
# Environment:
#   MIN_BASELINE_NS  baseline quantiles below this are treated as noise
#                    floor and skipped (default 500)
#   PROFILE_ALLOC_THRESHOLD_PCT  max allowed allocs-per-step increase on
#                    profile/<phase>@u=N rows, percent (default 10 — the
#                    workload is seeded, so allocation counts are nearly
#                    deterministic and drift means a real code change)
#
# Exit status: 0 if no component regressed, 1 if any p50 or p95 grew by
# more than the threshold, 2 on usage/parse errors.
#
# First run: when BASELINE does not exist yet, the candidate is copied
# into place as the new baseline and the script exits 0 — there is
# nothing to diff against, and failing would force every fresh checkout
# to hand-seed a baseline before the perf gate can run at all.
#
# Components absent from either file, or with a zero sample count in
# either, are reported as "skipped" — a missing component is a schema
# change, not a perf regression, and belongs in review.
set -euo pipefail

if [[ $# -lt 2 || $# -gt 3 ]]; then
    echo "usage: $0 BASELINE.perf.json CANDIDATE.perf.json [THRESHOLD_PCT]" >&2
    exit 2
fi

baseline=$1
candidate=$2
threshold=${3:-25}
min_ns=${MIN_BASELINE_NS:-500}
alloc_threshold=${PROFILE_ALLOC_THRESHOLD_PCT:-10}

if [[ ! -r $candidate ]]; then
    echo "error: cannot read candidate $candidate" >&2
    exit 2
fi

if [[ ! -e $baseline ]]; then
    # First run on this checkout: seed the baseline from the candidate
    # instead of failing. The next run diffs against today's numbers.
    mkdir -p "$(dirname "$baseline")"
    cp "$candidate" "$baseline"
    echo "no baseline at $baseline — bootstrapped it from $candidate"
    echo "OK: baseline seeded; rerun after the next bench to diff against it"
    exit 0
fi

if [[ ! -r $baseline ]]; then
    echo "error: cannot read baseline $baseline" >&2
    exit 2
fi

# Component lines look like
#     {"name": "sched/pick", "count": 123, "p50_ns": 4567, "p95_ns": 8910, "max_ns": 11213},
# and are the only lines carrying a "p50_ns" key (the "events" array
# reuses the name/count shape but has no quantiles).
#
# Snapshots with no quantile rows at all (e.g. workload_scaling, whose
# rows are deliberately wall-time-only) skip the p50/p95 diff pass — the
# candidate-only boundedness checks below still run. A candidate with no
# recognized rows of any kind is still an error.
if ! grep -q '"p50_ns"' "$candidate"; then
    if grep -Eq '"name": "(telemetry|profile|wal|workload)/' "$candidate"; then
        echo "component quantile diff: skipped (no p50_ns rows in candidate)"
    else
        echo "error: no recognized component rows in the candidate file" >&2
        exit 2
    fi
else
awk -v threshold="$threshold" -v min_ns="$min_ns" '
function extract(line, key,    rest) {
    if (index(line, "\"" key "\":") == 0) return ""
    rest = substr(line, index(line, "\"" key "\":") + length(key) + 3)
    gsub(/^[ \t]+/, "", rest)
    gsub(/[,}].*$/, "", rest)
    gsub(/"/, "", rest)
    return rest
}
FNR == 1 { file_idx++ }
/"p50_ns"/ {
    name = extract($0, "name")
    if (name == "") next
    if (file_idx == 1) {
        base_count[name] = extract($0, "count")
        base_p50[name] = extract($0, "p50_ns")
        base_p95[name] = extract($0, "p95_ns")
    } else {
        cand_count[name] = extract($0, "count")
        cand_p50[name] = extract($0, "p50_ns")
        cand_p95[name] = extract($0, "p95_ns")
        order[++n] = name
    }
}
END {
    if (n == 0) {
        printf "error: no component lines with p50_ns found in the candidate file\n" > "/dev/stderr"
        exit 2
    }
    printf "%-22s %12s %12s %8s   %s\n", "component", "quantile", "baseline", "now", "delta"
    failed = 0
    for (i = 1; i <= n; i++) {
        name = order[i]
        if (!(name in base_count)) {
            printf "%-22s %12s  (skipped: not in baseline)\n", name, "-"
            continue
        }
        if (base_count[name] + 0 == 0 || cand_count[name] + 0 == 0) {
            printf "%-22s %12s  (skipped: zero samples)\n", name, "-"
            continue
        }
        split("p50 p95", qs, " ")
        for (q = 1; q <= 2; q++) {
            quant = qs[q]
            b = (quant == "p50") ? base_p50[name] + 0 : base_p95[name] + 0
            c = (quant == "p50") ? cand_p50[name] + 0 : cand_p95[name] + 0
            if (b < min_ns) {
                printf "%-22s %12s %12d %8d   (skipped: baseline under %d ns noise floor)\n", \
                    name, quant "_ns", b, c, min_ns
                continue
            }
            delta = 100.0 * (c - b) / b
            flag = ""
            if (delta > threshold + 0) {
                flag = "  REGRESSION (limit +" threshold "%)"
                failed = 1
            }
            printf "%-22s %12s %12d %8d   %+7.1f%%%s\n", name, quant "_ns", b, c, delta, flag
        }
    }
    if (failed) {
        printf "\nFAIL: at least one component quantile regressed more than %s%%\n", threshold
        exit 1
    }
    printf "\nOK: no component quantile regressed more than %s%%\n", threshold
}
' "$baseline" "$candidate"
fi

# Telemetry-scale boundedness: rows named telemetry/fold@u=N (written by
# `cargo bench -p easeml-bench --bench telemetry_scale`, in ascending
# tenant order) carry the recorder state and /metrics body size at each
# tenant count. Aggregate mode promises both are bounded in U: the check
# is one-sided — the largest-U row must not exceed 1.5x the smallest-U
# row (shrinking is fine; with a fixed event budget, fewer tenants give
# each exemplar a longer curve window).
# Snapshots without telemetry rows (e.g. obs_overhead) skip the check.
awk '
function extract(line, key,    rest) {
    if (index(line, "\"" key "\":") == 0) return ""
    rest = substr(line, index(line, "\"" key "\":") + length(key) + 3)
    gsub(/^[ \t]+/, "", rest)
    gsub(/[,}].*$/, "", rest)
    return rest
}
/"name": "telemetry\/fold@u=/ {
    n++
    state[n] = extract($0, "state_bytes") + 0
    body[n] = extract($0, "metrics_bytes") + 0
}
END {
    if (n < 2) {
        printf "telemetry boundedness: skipped (%d telemetry row(s) in candidate)\n", n
        exit 0
    }
    if (state[1] <= 0 || body[1] <= 0) {
        printf "error: telemetry rows carry zero state/body sizes\n" > "/dev/stderr"
        exit 2
    }
    printf "telemetry state bytes, smallest -> largest U: %d -> %d (%.2fx)\n", \
        state[1], state[n], state[n] / state[1]
    printf "telemetry /metrics bytes, smallest -> largest U: %d -> %d (%.2fx)\n", \
        body[1], body[n], body[n] / body[1]
    if (state[n] > 1.5 * state[1] || body[n] > 1.5 * body[1]) {
        printf "\nFAIL: telemetry state or /metrics body grows with the tenant count\n"
        exit 1
    }
    printf "OK: telemetry footprint bounded across the tenant sweep\n"
}
' "$candidate"

# Hot-path profiling budgets: rows named profile/<phase>@u=N (written by
# `cargo bench -p easeml-bench --bench profile_scaling`) carry per-phase
# self time and allocation counts normalised per scheduler step. Both are
# diffed against the baseline: self time with the same latency threshold
# as the component quantiles (plus the noise floor), allocation counts
# with the tighter PROFILE_ALLOC_THRESHOLD_PCT — the workload is seeded,
# so a sustained allocs/step increase is a code change, not jitter.
# Snapshots without profile rows (e.g. obs_overhead) skip the check.
awk -v threshold="$threshold" -v min_ns="$min_ns" -v alloc_threshold="$alloc_threshold" '
function extract(line, key,    rest) {
    if (index(line, "\"" key "\":") == 0) return ""
    rest = substr(line, index(line, "\"" key "\":") + length(key) + 3)
    gsub(/^[ \t]+/, "", rest)
    gsub(/[,}].*$/, "", rest)
    gsub(/"/, "", rest)
    return rest
}
FNR == 1 { file_idx++ }
/"name": "profile\// {
    name = extract($0, "name")
    if (name == "") next
    if (file_idx == 1) {
        base_self[name] = extract($0, "self_ns_per_step")
        base_allocs[name] = extract($0, "allocs_per_step")
        in_base[name] = 1
    } else {
        cand_self[name] = extract($0, "self_ns_per_step")
        cand_allocs[name] = extract($0, "allocs_per_step")
        order[++n] = name
    }
}
END {
    if (n == 0) {
        printf "profile budgets: skipped (no profile rows in candidate)\n"
        exit 0
    }
    printf "\n%-34s %14s %12s %8s   %s\n", "profile phase", "metric", "baseline", "now", "delta"
    failed = 0
    for (i = 1; i <= n; i++) {
        name = order[i]
        if (!(name in in_base)) {
            printf "%-34s %14s  (skipped: not in baseline)\n", name, "-"
            continue
        }
        b = base_self[name] + 0; c = cand_self[name] + 0
        if (b < min_ns) {
            printf "%-34s %14s %12d %8d   (skipped: baseline under %d ns noise floor)\n", \
                name, "self_ns/step", b, c, min_ns
        } else {
            delta = 100.0 * (c - b) / b
            flag = ""
            if (delta > threshold + 0) {
                flag = "  REGRESSION (limit +" threshold "%)"
                failed = 1
            }
            printf "%-34s %14s %12d %8d   %+7.1f%%%s\n", name, "self_ns/step", b, c, delta, flag
        }
        b = base_allocs[name] + 0; c = cand_allocs[name] + 0
        if (b <= 0) {
            printf "%-34s %14s %12.2f %8.2f   (skipped: zero baseline)\n", \
                name, "allocs/step", b, c
            continue
        }
        delta = 100.0 * (c - b) / b
        flag = ""
        if (delta > alloc_threshold + 0) {
            flag = "  REGRESSION (limit +" alloc_threshold "%)"
            failed = 1
        }
        printf "%-34s %14s %12.2f %8.2f   %+7.1f%%%s\n", name, "allocs/step", b, c, delta, flag
    }
    if (failed) {
        printf "\nFAIL: a profiled phase blew its per-step time or allocation budget\n"
        exit 1
    }
    printf "\nOK: every profiled phase within its per-step budgets\n"
}
' "$baseline" "$candidate"

# WAL recovery boundedness: rows named wal/recover_ms@delta=N (written by
# `cargo bench -p easeml-bench --bench wal_throughput`, in ascending delta
# order) carry the per-replayed-round recovery cost. Incremental recovery
# promises O(delta): the check is one-sided — the largest-delta row must
# not exceed 1.5x the per-round cost of the smallest-delta row. (Smaller
# deltas are always *more* expensive per round: the fixed checkpoint-load
# cost is amortised over fewer replayed rounds, so growth in this
# direction means replay re-reads history.) Candidate-only, like the
# telemetry check: absolute recovery time is machine-dependent, so there
# is nothing meaningful to diff against a baseline from another host.
# Snapshots without WAL rows (e.g. obs_overhead) skip the check.
awk '
function extract(line, key,    rest) {
    if (index(line, "\"" key "\":") == 0) return ""
    rest = substr(line, index(line, "\"" key "\":") + length(key) + 3)
    gsub(/^[ \t]+/, "", rest)
    gsub(/[,}].*$/, "", rest)
    return rest
}
/"name": "wal\/recover_ms@delta=/ {
    n++
    delta[n] = extract($0, "delta") + 0
    per_round[n] = extract($0, "ms_per_round") + 0
}
END {
    if (n < 2) {
        printf "wal recovery boundedness: skipped (%d wal recovery row(s) in candidate)\n", n
        exit 0
    }
    if (per_round[1] <= 0 || per_round[n] <= 0) {
        printf "error: wal recovery rows carry zero ms_per_round\n" > "/dev/stderr"
        exit 2
    }
    printf "wal recovery ms/round, smallest -> largest delta: %.6f (delta=%d) -> %.6f (delta=%d) (%.2fx)\n", \
        per_round[1], delta[1], per_round[n], delta[n], per_round[n] / per_round[1]
    if (per_round[n] > 1.5 * per_round[1]) {
        printf "\nFAIL: per-round recovery cost grows with the replay delta (not O(delta))\n"
        exit 1
    }
    printf "OK: incremental recovery cost bounded per replayed round across the delta sweep\n"
}
' "$candidate"

# Open-loop workload boundedness: rows named workload/replay@rate=R,churn=C
# (written by `cargo bench -p easeml-bench --bench workload_scaling`, in
# ascending rate order within each churn group) carry the engine's wall
# cost per dispatched job. Every cell scripts the same expected job count
# (the horizon shrinks as the rate grows), so per-job cost must be bounded
# in the arrival rate: the check is one-sided — within each churn group
# the largest-rate row must not exceed 2x the smallest-rate row (generous:
# cells run tens of milliseconds, so scheduler noise is material).
# Candidate-only, like the telemetry and WAL checks: absolute wall time is
# machine-dependent, so there is nothing to diff against a baseline from
# another host. Snapshots without workload rows skip the check.
awk '
function extract(line, key,    rest) {
    if (index(line, "\"" key "\":") == 0) return ""
    rest = substr(line, index(line, "\"" key "\":") + length(key) + 3)
    gsub(/^[ \t]+/, "", rest)
    gsub(/[,}].*$/, "", rest)
    return rest
}
/"name": "workload\/replay@rate=/ {
    churn = extract($0, "churn") + 0
    n[churn]++
    rate[churn, n[churn]] = extract($0, "rate") + 0
    cost[churn, n[churn]] = extract($0, "ns_per_served") + 0
}
END {
    total = n[0] + n[1]
    if (total == 0) {
        printf "workload boundedness: skipped (no workload rows in candidate)\n"
        exit 0
    }
    failed = 0
    for (churn = 0; churn <= 1; churn++) {
        if (n[churn] < 2) continue
        first = cost[churn, 1]; last = cost[churn, n[churn]]
        if (first <= 0 || last <= 0) {
            printf "error: workload rows carry zero ns_per_served\n" > "/dev/stderr"
            exit 2
        }
        printf "workload ns/served (churn=%d), smallest -> largest rate: %.0f (rate=%g) -> %.0f (rate=%g) (%.2fx)\n", \
            churn, first, rate[churn, 1], last, rate[churn, n[churn]], last / first
        if (last > 2.0 * first) failed = 1
    }
    if (failed) {
        printf "\nFAIL: per-job engine cost grows with the arrival rate\n"
        exit 1
    }
    printf "OK: per-job open-loop cost bounded across the arrival-rate sweep\n"
}
' "$candidate"
