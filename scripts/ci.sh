#!/usr/bin/env bash
# The full CI gate, runnable locally. Mirrors .github/workflows/ci.yml.
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings denied)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test --workspace"
cargo test --workspace -q

echo "==> cargo doc (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> live_dashboard smoke run"
smoke_trace="$(mktemp -t easeml-ci-smoke-XXXXXX.jsonl)"
trap 'rm -f "$smoke_trace"' EXIT
cargo run --quiet --example live_dashboard -- \
  --rounds 5 --no-serve --trace-out "$smoke_trace"

echo "==> easeml-trace report on the smoke trace"
report="$(cargo run --quiet -p easeml-trace -- report "$smoke_trace")"
echo "$report"
# The offline analyzer must reconstruct a non-empty, internally
# consistent Theorem 1 regret decomposition from the recorded trace.
echo "$report" | grep -q "regret decomposition (Theorem 1)"
echo "$report" | grep -q "decomposition consistent: true"
if echo "$report" | grep -q "rounds: 0 "; then
  echo "error: smoke trace produced an empty regret decomposition" >&2
  exit 1
fi

echo "CI gate passed."
