#!/usr/bin/env bash
# The full CI gate, runnable locally. Mirrors .github/workflows/ci.yml.
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings denied)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test --workspace"
cargo test --workspace -q

echo "==> cargo doc (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> live_dashboard smoke run"
smoke_trace="$(mktemp -t easeml-ci-smoke-XXXXXX.jsonl)"
trap 'rm -f "$smoke_trace"' EXIT
cargo run --quiet --example live_dashboard -- \
  --rounds 5 --no-serve --trace-out "$smoke_trace"

echo "==> easeml-trace report on the smoke trace"
report="$(cargo run --quiet -p easeml-trace -- report "$smoke_trace")"
echo "$report"
# The offline analyzer must reconstruct a non-empty, internally
# consistent Theorem 1 regret decomposition from the recorded trace.
echo "$report" | grep -q "regret decomposition (Theorem 1)"
echo "$report" | grep -q "decomposition consistent: true"
if echo "$report" | grep -q "rounds: 0 "; then
  echo "error: smoke trace produced an empty regret decomposition" >&2
  exit 1
fi
# The scale section folds the trace into sketches and must agree with the
# exact per-quantile fold on a trace this small.
echo "$report" | grep -q "sketch-vs-exact cross-check: pass"

echo "==> easeml-trace profile on the smoke trace"
smoke_folded="$(mktemp -t easeml-ci-folded-XXXXXX.folded)"
trap 'rm -f "$smoke_trace" "$smoke_folded"' EXIT
profile_out="$(cargo run --quiet -p easeml-trace -- profile "$smoke_trace" \
  --folded "$smoke_folded")"
echo "$profile_out"
# The folded call tree must be non-empty and balanced (every SpanStart
# paired with its SpanEnd, none orphaned), and the scheduler's hot loop
# must attribute at least 95% of its wall time to named child phases.
echo "$profile_out" | grep -q "scheduler_step"
echo "$profile_out" | grep -q "0 unclosed, 0 orphaned"
echo "$profile_out" | grep -q "wall time attributed (pass"
test -s "$smoke_folded"

echo "==> chaos smoke run (seeded fault injection)"
chaos_trace="$(mktemp -t easeml-ci-chaos-XXXXXX.jsonl)"
trap 'rm -f "$smoke_trace" "$smoke_folded" "$chaos_trace"' EXIT
cargo run --quiet --example live_dashboard -- \
  --rounds 25 --no-serve --chaos --trace-out "$chaos_trace"

echo "==> easeml-trace report on the chaos trace"
chaos_report="$(cargo run --quiet -p easeml-trace -- report "$chaos_trace")"
echo "$chaos_report"
# The storm must actually censor runs (a zero count means the fault
# injector silently stopped firing), and the Theorem 1 decomposition must
# stay consistent with censored cost on the clock.
echo "$chaos_report" | grep -q "TrainingFailed:"
if echo "$chaos_report" | grep -q "TrainingFailed: 0 "; then
  echo "error: chaos run recorded no censored training runs" >&2
  exit 1
fi
echo "$chaos_report" | grep -q "decomposition consistent: true"
# Censored runs observe full regret; the sketch fold must still match the
# exact fold under censoring.
echo "$chaos_report" | grep -q "sketch-vs-exact cross-check: pass"

echo "==> multi-device smoke run (4 devices, chaos, mid-flight checkpoint)"
exec_trace="$(mktemp -t easeml-ci-exec-XXXXXX.jsonl)"
trap 'rm -f "$smoke_trace" "$smoke_folded" "$chaos_trace" "$exec_trace"' EXIT
exec_out="$(cargo run --quiet --example multi_device -- \
  --devices 4 --chaos --trace-out "$exec_trace")"
echo "$exec_out"
# The fleet must actually overlap runs (a zero means the dispatcher fell
# back to serial execution) and the mid-flight checkpoint must replay to
# the exact uninterrupted trajectory.
echo "$exec_out" | grep -q "parallel dispatches:"
if echo "$exec_out" | grep -q "parallel dispatches: 0$"; then
  echo "error: multi-device run made no parallel dispatches" >&2
  exit 1
fi
echo "$exec_out" | grep -q "checkpoint replay consistent: true"

echo "==> easeml-trace report on the multi-device trace"
exec_report="$(cargo run --quiet -p easeml-trace -- report "$exec_trace")"
echo "$exec_report"
# The offline analyzer must see the v4 execution stream and keep the
# Theorem 1 decomposition consistent with delayed completions on the clock.
echo "$exec_report" | grep -q "multi-device execution"
echo "$exec_report" | grep -q "decomposition consistent: true"
if echo "$exec_report" | grep -Eq "peak in-flight: [01] "; then
  echo "error: trace shows no overlapping runs on a 4-device fleet" >&2
  exit 1
fi
echo "$exec_report" | grep -q "sketch-vs-exact cross-check: pass"

echo "==> decision-provenance replay-diff smoke"
replay_scenario="$(mktemp -t easeml-ci-replay-XXXXXX.json)"
replay_trace="$(mktemp -t easeml-ci-replay-XXXXXX.jsonl)"
trap 'rm -f "$smoke_trace" "$smoke_folded" "$chaos_trace" "$exec_trace" \
  "$replay_scenario" "$replay_trace"' EXIT
printf '{"kind":"greedy(max-gap)","budget":14.0}\n' > "$replay_scenario"
cargo run --quiet -p easeml-trace -- record "$replay_scenario" "$replay_trace"
# Clean pass: both the serial simulator and the exec engine at D=1 must
# reproduce every recorded decision digest — scheduler equivalence.
replay_out="$(cargo run --quiet -p easeml-trace -- replay-diff \
  "$replay_scenario" "$replay_trace")"
echo "$replay_out"
echo "$replay_out" | grep -q "result: CLEAN (2/2 leg(s) clean)"
# Seeded-mutation pass: rotating the picker's choice from step 4 on must
# make the harness exit nonzero and pinpoint round 4 as the first
# divergence on both legs — proof the digest binary search works.
if mutated_out="$(cargo run --quiet -p easeml-trace -- replay-diff \
  "$replay_scenario" "$replay_trace" --mutate-at 4)"; then
  echo "error: replay-diff did not fail on a seeded picker mutation" >&2
  exit 1
else
  echo "$mutated_out"
fi
echo "$mutated_out" | grep -q "first divergent round: 4"
echo "$mutated_out" | grep -q "result: DIVERGED"
# The aggregate explain report must fold the same witnesses back out.
cargo run --quiet -p easeml-trace -- explain "$replay_trace" \
  | grep -q "committed rounds: 49"

echo "==> crash-recovery smoke (exec engine, chaos, seeded crash point)"
crash_dir="$(mktemp -d -t easeml-ci-crash-XXXXXX)"
trap 'rm -f "$smoke_trace" "$smoke_folded" "$chaos_trace" "$exec_trace" \
  "$replay_scenario" "$replay_trace"; rm -rf "$crash_dir"' EXIT
crash_out="$(cargo run --quiet --example crash_recovery -- \
  --chaos --seed 41 --state-dir "$crash_dir/state")"
echo "$crash_out"
# The crash point must actually fire mid-stream and the recovered engine,
# driven to completion, must land on the uninterrupted run's exact digest.
echo "$crash_out" | grep -q "crash point fired at byte"
echo "$crash_out" | grep -q "recovery digest match: true"
echo "==> easeml-trace recovery-report on the surviving WAL"
wal_report="$(cargo run --quiet -p easeml-trace -- recovery-report "$crash_dir/state/wal")"
echo "$wal_report"
# The post-recovery log must re-verify its commit digest chain offline.
echo "$wal_report" | grep -q "digest chain: verified"

echo "==> telemetry scale smoke (aggregate mode, U up to 100k)"
scale_out="$(cargo run --quiet --example telemetry_scale -- --sweep --events 30000)"
echo "$scale_out"
# The aggregate-mode recorder must keep its state and the /metrics body
# flat across a 100x tenant sweep while the sketch quantiles stay within
# the configured relative error of an exact sort — the example asserts
# both and prints the pass line only when they hold.
echo "$scale_out" | grep -q "telemetry scale check: pass"

echo "==> workload replay smoke (trace CSV, open-loop, tenant churn)"
workload_trace="$(mktemp -t easeml-ci-workload-XXXXXX.jsonl)"
workload_report_file="$(mktemp -t easeml-ci-workload-XXXXXX.txt)"
trap 'rm -f "$smoke_trace" "$smoke_folded" "$chaos_trace" "$exec_trace" \
  "$replay_scenario" "$replay_trace" "$workload_trace" \
  "$workload_report_file"; rm -rf "$crash_dir"' EXIT
workload_out="$(cargo run --quiet --example trace_replay -- \
  --trace-out "$workload_trace" --report-out "$workload_report_file")"
echo "$workload_out"
# The bundled trace must map without dropping jobs, the replay must
# retire every tenant (a bounded trace implies churn), and the Theorem 1
# decomposition must stay consistent on the open-loop event stream.
echo "$workload_out" | grep -Eq "tenant churn: [1-9][0-9]* retirement"
echo "$workload_out" | grep -q "decomposition consistent: true"
echo "$workload_out" | grep -q ", 0 dropped"
# The standalone analyzer must reproduce the fold from the JSONL alone.
cargo run --quiet -p easeml-trace -- workload-report "$workload_trace" \
  | grep -q "tenant churn: 6 retirement(s)"
test -s "$workload_report_file"

echo "CI gate passed."
