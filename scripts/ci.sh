#!/usr/bin/env bash
# The full CI gate, runnable locally. Mirrors .github/workflows/ci.yml.
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings denied)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test --workspace"
cargo test --workspace -q

echo "==> cargo doc (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> live_dashboard smoke run"
cargo run --quiet --example live_dashboard -- --rounds 5 --no-serve

echo "CI gate passed."
