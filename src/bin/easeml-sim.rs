//! `easeml-sim` — command-line driver for the multi-tenant experiments.
//!
//! ```text
//! easeml-sim <dataset> <scheduler>... [options]
//!
//! datasets:   deeplearning | 179classifier | syn-0.01-0.1 | syn-0.01-1.0 |
//!             syn-0.5-0.1 | syn-0.5-1.0 | csv:<path>
//! schedulers: easeml | hybrid | greedy | greedy-sigma | greedy-random |
//!             round-robin | random | fcfs | most-cited | most-recent
//! options:    --budget <frac>      budget fraction (default 0.25)
//!             --runs               cost-oblivious budget (% of runs)
//!             --reps <n>           repetitions (default 10)
//!             --test-users <n>     test users per split (default 10)
//!             --seed <s>           base seed (default 20180801)
//!             --csv-out <path>     write the long-format curve CSV
//! ```

use easeml::prelude::*;
use easeml::report;
use easeml_data::DatasetKind;
use easeml_sched::PickRule;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: easeml-sim <dataset> <scheduler>... [--budget F] [--runs] \
         [--reps N] [--test-users N] [--seed S] [--csv-out PATH]\n\
         datasets: deeplearning | 179classifier | syn-0.01-0.1 | syn-0.01-1.0 | \
         syn-0.5-0.1 | syn-0.5-1.0 | csv:<path>\n\
         schedulers: easeml | hybrid | greedy | greedy-sigma | greedy-random | \
         round-robin | random | fcfs | most-cited | most-recent"
    );
    ExitCode::from(2)
}

fn parse_scheduler(s: &str) -> Option<SchedulerKind> {
    Some(match s {
        "easeml" | "hybrid" => SchedulerKind::EaseMl,
        "greedy" => SchedulerKind::Greedy(PickRule::MaxUcbGap),
        "greedy-sigma" => SchedulerKind::Greedy(PickRule::MaxSigmaTilde),
        "greedy-random" => SchedulerKind::Greedy(PickRule::Random),
        "round-robin" => SchedulerKind::RoundRobin,
        "random" => SchedulerKind::Random,
        "fcfs" => SchedulerKind::Fcfs,
        "most-cited" => SchedulerKind::MostCited,
        "most-recent" => SchedulerKind::MostRecent,
        _ => return None,
    })
}

fn parse_dataset(s: &str, seed: u64) -> Option<easeml_data::Dataset> {
    let kind = match s {
        "deeplearning" => DatasetKind::DeepLearning,
        "179classifier" => DatasetKind::Classifier179,
        "syn-0.01-0.1" => DatasetKind::Syn001_01,
        "syn-0.01-1.0" => DatasetKind::Syn001_10,
        "syn-0.5-0.1" => DatasetKind::Syn05_01,
        "syn-0.5-1.0" => DatasetKind::Syn05_10,
        _ => {
            if let Some(path) = s.strip_prefix("csv:") {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| eprintln!("cannot read {path}: {e}"))
                    .ok()?;
                return easeml_data::io::from_csv(path, &text)
                    .map_err(|e| eprintln!("cannot parse {path}: {e}"))
                    .ok();
            }
            return None;
        }
    };
    Some(kind.generate(seed))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        return usage();
    }

    let mut budget_frac = 0.25f64;
    let mut runs_budget = false;
    let mut reps = 10usize;
    let mut test_users = 10usize;
    let mut seed = 20_180_801u64;
    let mut csv_out: Option<String> = None;
    let mut positional: Vec<&str> = Vec::new();

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        macro_rules! value {
            () => {
                match it.next() {
                    Some(v) => v,
                    None => {
                        eprintln!("missing value for {arg}");
                        return usage();
                    }
                }
            };
        }
        match arg.as_str() {
            "--budget" => match value!().parse() {
                Ok(v) if (0.0..=1.0).contains(&v) && v > 0.0 => budget_frac = v,
                _ => {
                    eprintln!("--budget must be a fraction in (0, 1]");
                    return usage();
                }
            },
            "--runs" => runs_budget = true,
            "--reps" => match value!().parse() {
                Ok(v) if v > 0 => reps = v,
                _ => return usage(),
            },
            "--test-users" => match value!().parse() {
                Ok(v) if v > 0 => test_users = v,
                _ => return usage(),
            },
            "--seed" => match value!().parse() {
                Ok(v) => seed = v,
                _ => return usage(),
            },
            "--csv-out" => csv_out = Some(value!().clone()),
            other if other.starts_with("--") => {
                eprintln!("unknown option {other}");
                return usage();
            }
            other => positional.push(other),
        }
    }
    let (dataset_name, scheduler_names) = match positional.split_first() {
        Some((d, s)) if !s.is_empty() => (*d, s),
        _ => return usage(),
    };
    let Some(dataset) = parse_dataset(dataset_name, seed) else {
        eprintln!("unknown dataset `{dataset_name}`");
        return usage();
    };
    if test_users >= dataset.num_users() {
        eprintln!(
            "--test-users {} leaves no training users (dataset has {})",
            test_users,
            dataset.num_users()
        );
        return ExitCode::from(2);
    }

    let budget = if runs_budget {
        Budget::FractionOfRuns(budget_frac)
    } else {
        Budget::FractionOfCost(budget_frac)
    };
    let cfg = ExperimentConfig {
        test_users,
        repetitions: reps,
        budget,
        ..ExperimentConfig::default()
    };

    println!(
        "dataset {} ({} users x {} models), {} reps, budget {:.0}% of {}",
        dataset.name(),
        dataset.num_users(),
        dataset.num_models(),
        reps,
        budget_frac * 100.0,
        if runs_budget { "runs" } else { "total cost" }
    );

    let mut results = Vec::new();
    for name in scheduler_names {
        let Some(kind) = parse_scheduler(name) else {
            eprintln!("unknown scheduler `{name}`");
            return usage();
        };
        let start = std::time::Instant::now();
        let r = run_experiment(&dataset, kind, &cfg, seed);
        println!(
            "  {:<22} final mean loss {:.4} ({:.1}s)",
            kind.name(),
            r.mean_curve.last().unwrap(),
            start.elapsed().as_secs_f64()
        );
        results.push(r);
    }

    println!();
    println!("{}", report::curves_table(&results, 10));
    if let Some(path) = csv_out {
        match std::fs::write(&path, report::curves_csv(&results)) {
            Ok(()) => println!("csv written to {path}"),
            Err(e) => {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
