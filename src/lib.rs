//! Workspace root of the ease.ml reproduction.
//!
//! This crate hosts the runnable examples under `examples/` and the
//! cross-crate integration tests under `tests/`; the actual library surface
//! lives in the member crates and is re-exported here for convenience:
//!
//! * [`easeml`] — the platform, simulation engine, and experiment harness;
//! * [`easeml_sched`] — multi-tenant schedulers (round robin, greedy,
//!   hybrid);
//! * [`easeml_bandit`] — single-tenant GP-UCB and baselines;
//! * [`easeml_gp`] — Gaussian-process posteriors and kernels;
//! * [`easeml_data`] — datasets and the Appendix-B generator;
//! * [`easeml_dsl`] — the declarative language and template matcher;
//! * [`easeml_exec`] — the multi-device discrete-event execution engine
//!   (heterogeneous fleets, GP-BUCB delayed-feedback dispatch, in-flight
//!   checkpoint/restore);
//! * [`easeml_linalg`] — the dense linear-algebra substrate;
//! * [`easeml_obs`] — zero-cost observability (events, histograms, sinks,
//!   regret time series);
//! * [`easeml_obs_http`] — the live telemetry endpoint (`/metrics`,
//!   `/status`, `/trace`).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use easeml;
pub use easeml_bandit;
pub use easeml_data;
pub use easeml_dsl;
pub use easeml_exec;
pub use easeml_gp;
pub use easeml_linalg;
pub use easeml_obs;
pub use easeml_obs_http;
pub use easeml_sched;
