//! Cross-crate integration tests: the full pipeline from DSL source to
//! multi-tenant scheduling results.

use easeml::prelude::*;
use easeml::server::{QualityOracle, TrainingOutcome};
use easeml_data::{DatasetKind, SynConfig};
use easeml_sched::PickRule;

/// DSL source → template matching → scheduling → infer, end to end.
#[test]
fn declarative_service_end_to_end() {
    // Oracle replays a fixed quality profile per (user, model-year) — a
    // stand-in for the deep-learning subsystem.
    let oracle: QualityOracle = Box::new(|user, model| {
        let info = model.info();
        Ok(TrainingOutcome {
            accuracy: (0.55 + 0.01 * (user as f64) + 0.015 * (info.year as f64 - 2010.0)).min(0.98),
            cost: info.relative_cost,
        })
    });
    let mut server = EaseMl::new(oracle, 42);
    let vision = server
        .register_user(
            "vision",
            "{input: {[Tensor[224, 224, 3]], []}, output: {[Tensor[10]], []}}",
        )
        .unwrap();
    let meteo = server
        .register_user(
            "meteo",
            "{input: {[Tensor[24]], [next]}, output: {[Tensor[4]], []}}",
        )
        .unwrap();

    // Feed some data through the declarative operators.
    server
        .storage()
        .feed(vision, vec![(vec![0.1; 8], vec![1.0])]);
    server
        .storage()
        .feed(meteo, vec![(vec![0.2; 4], vec![0.0])]);
    assert_eq!(server.storage().total_fed(), 2);

    let rounds = server.run_until(30.0);
    assert!(rounds >= 4);

    // Both users can infer, and the vision user's candidates come from the
    // image-classification template.
    let (model, acc) = server.infer(vision).unwrap();
    assert!(acc > 0.5);
    assert!(easeml_dsl::zoo::IMAGE_CLASSIFIERS.contains(&model));
    assert!(server.infer(meteo).is_some());
}

/// The headline claim of the paper, qualitatively: on a workload with
/// meaningful structure, ease.ml's scheduler reaches a low average loss
/// with less budget than the workload-agnostic baselines.
#[test]
fn easeml_beats_round_robin_and_random_on_synthetic_data() {
    let dataset = SynConfig {
        num_users: 30,
        num_models: 20,
        ..SynConfig::paper(0.5, 1.0)
    }
    .generate(11);
    let cfg = ExperimentConfig {
        test_users: 6,
        repetitions: 8,
        budget: Budget::FractionOfRuns(0.5),
        grid_points: 41,
        ..ExperimentConfig::default()
    };
    let easeml = run_experiment(&dataset, SchedulerKind::EaseMl, &cfg, 77);
    let rr = run_experiment(&dataset, SchedulerKind::RoundRobin, &cfg, 77);
    let rnd = run_experiment(&dataset, SchedulerKind::Random, &cfg, 77);

    // Compare the area under the mean-loss curve (lower = faster progress).
    let auc = |c: &[f64]| c.iter().sum::<f64>();
    let a_easeml = auc(&easeml.mean_curve);
    let a_rr = auc(&rr.mean_curve);
    let a_rnd = auc(&rnd.mean_curve);
    assert!(
        a_easeml <= a_rr * 1.05,
        "ease.ml {a_easeml:.3} should not trail round-robin {a_rr:.3}"
    );
    assert!(
        a_easeml <= a_rnd * 1.05,
        "ease.ml {a_easeml:.3} should not trail random {a_rnd:.3}"
    );
}

/// FCFS is the paper's strawman: its early worst-case behaviour is bad
/// because late users starve.
#[test]
fn fcfs_starves_late_users() {
    let dataset = SynConfig {
        num_users: 12,
        num_models: 8,
        ..SynConfig::paper(0.5, 0.5)
    }
    .generate(5);
    let cfg = ExperimentConfig {
        test_users: 4,
        repetitions: 5,
        budget: Budget::FractionOfRuns(0.4),
        grid_points: 21,
        ..ExperimentConfig::default()
    };
    let fcfs = run_experiment(&dataset, SchedulerKind::Fcfs, &cfg, 9);
    let rr = run_experiment(&dataset, SchedulerKind::RoundRobin, &cfg, 9);
    // Early in the budget (20%), round robin has served everyone once
    // while FCFS is still grinding user 0's arms: mean loss must be lower
    // for round robin.
    let idx = 4; // 20% of the 21-point grid
    assert!(
        rr.mean_curve[idx] < fcfs.mean_curve[idx] + 1e-9,
        "rr {:.4} vs fcfs {:.4}",
        rr.mean_curve[idx],
        fcfs.mean_curve[idx]
    );
}

/// All scheduler kinds execute on all Figure-8 dataset kinds (smoke).
#[test]
fn every_scheduler_runs_on_every_dataset_kind() {
    for kind in [DatasetKind::DeepLearning, DatasetKind::Syn05_01] {
        let dataset = kind.generate(3);
        let cfg = ExperimentConfig {
            test_users: 3,
            repetitions: 2,
            budget: Budget::FractionOfCost(0.15),
            grid_points: 11,
            ..ExperimentConfig::default()
        };
        let mut schedulers = vec![
            SchedulerKind::Fcfs,
            SchedulerKind::RoundRobin,
            SchedulerKind::Random,
            SchedulerKind::Greedy(PickRule::MaxUcbGap),
            SchedulerKind::Greedy(PickRule::MaxSigmaTilde),
            SchedulerKind::Greedy(PickRule::Random),
            SchedulerKind::Hybrid,
            SchedulerKind::EaseMl,
        ];
        if kind == DatasetKind::DeepLearning {
            schedulers.push(SchedulerKind::MostCited);
            schedulers.push(SchedulerKind::MostRecent);
        }
        for s in schedulers {
            let r = run_experiment(&dataset, s, &cfg, 1);
            assert_eq!(r.mean_curve.len(), 11, "{} on {:?}", s.name(), kind);
            assert!(
                r.mean_curve.iter().all(|l| l.is_finite() && *l >= 0.0),
                "{} on {:?}",
                s.name(),
                kind
            );
        }
    }
}

/// The empirical kernel transfers information: with many training users the
/// prior is informative, and ease.ml's loss after a fixed budget is no
/// worse than with a starved kernel (Figure 14's direction).
#[test]
fn training_set_size_helps_or_at_least_does_not_hurt() {
    let dataset = SynConfig {
        num_users: 40,
        num_models: 16,
        ..SynConfig::paper(1.0, 1.0)
    }
    .generate(21);
    let base = ExperimentConfig {
        test_users: 6,
        repetitions: 6,
        budget: Budget::FractionOfCost(0.25),
        grid_points: 21,
        ..ExperimentConfig::default()
    };
    let full = run_experiment(&dataset, SchedulerKind::EaseMl, &base, 13);
    let starved = {
        let cfg = ExperimentConfig {
            train_fraction: 0.08,
            ..base
        };
        run_experiment(&dataset, SchedulerKind::EaseMl, &cfg, 13)
    };
    let auc = |c: &[f64]| c.iter().sum::<f64>();
    assert!(
        auc(&full.mean_curve) <= auc(&starved.mean_curve) * 1.10,
        "full kernel {:.3} should not trail starved kernel {:.3}",
        auc(&full.mean_curve),
        auc(&starved.mean_curve)
    );
}

/// Multi-tenant regret of the simulated schedulers is regret-free in
/// trend: average regret falls as the budget grows.
#[test]
fn average_regret_shrinks_with_budget() {
    use easeml_sched::MultiTenantRegret;
    let dataset = SynConfig {
        num_users: 8,
        num_models: 6,
        ..SynConfig::paper(0.5, 0.5)
    }
    .generate(2)
    .unit_cost_view();
    let priors: Vec<easeml_gp::ArmPrior> = (0..8)
        .map(|_| easeml_gp::ArmPrior::independent(6, 0.05))
        .collect();
    let mut short_avg = 0.0;
    let mut long_avg = 0.0;
    for (budget, out) in [(8.0, &mut short_avg), (48.0, &mut long_avg)] {
        let cfg = SimConfig {
            budget,
            cost_aware: false,
            noise_var: 1e-3,
            delta: 0.1,
            fault: None,
        };
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(3);
        let trace = simulate(&dataset, &priors, SchedulerKind::Hybrid, &cfg, &mut rng);
        // Reconstruct the multi-tenant regret from the trace's loss points:
        // use the mean loss as a proxy for Σ r_i / n.
        let reg = MultiTenantRegret::new((0..8).map(|i| dataset.best_quality(i)).collect());
        // Replay: we lack per-round user ids in the trace, so drive regret
        // from mean losses directly (mean loss ≤ mean regret).
        let final_mean_loss = trace.points.last().unwrap().1;
        *out = final_mean_loss;
        let _ = reg; // regret API exercised in its own unit tests
    }
    assert!(
        long_avg <= short_avg + 1e-9,
        "more budget must not increase final loss: {short_avg:.4} -> {long_avg:.4}"
    );
}
