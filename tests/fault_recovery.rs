//! The fault-tolerance acceptance scenarios, end to end through the public
//! API: a seeded fault storm survives without panicking and quarantines
//! brittle arms, and a kill + restore at an arbitrary round reproduces the
//! exact remaining decision sequence of the uninterrupted run.

use easeml::fault::{FaultConfig, FaultInjector, FaultRates};
use easeml::server::{EaseMl, QualityOracle, RoundOutcome, TrainingOutcome};
use easeml_obs::{InMemoryRecorder, RecorderHandle};
use std::collections::BTreeMap;
use std::sync::Arc;

const VISION_PROG: &str = "{input: {[Tensor[64, 64, 3]], []}, output: {[Tensor[5]], []}}";
const METEO_PROG: &str = "{input: {[Tensor[16]], [next]}, output: {[Tensor[3]], []}}";

fn toy_oracle() -> QualityOracle {
    Box::new(|user, model| {
        let info = model.info();
        let base = if user % 2 == 0 { 0.66 } else { 0.48 };
        Ok(TrainingOutcome {
            accuracy: (base + 0.02 * (info.year as f64 - 2010.0)).min(0.99),
            cost: info.relative_cost,
        })
    })
}

/// ISSUE acceptance: a seeded run with a ≥10% crash rate and stragglers
/// (plus one deterministically brittle arm) completes without panicking,
/// charges the censored runs, and quarantines at least one arm.
#[test]
fn seeded_fault_storm_completes_and_quarantines() {
    let mut config = FaultConfig::new(41)
        .with_crash_rate(0.15)
        .with_timeout_rate(0.05)
        .with_stragglers(0.20, 2.5);
    // One brittle model family that always crashes: the retry policy must
    // give up on it and mask it out of the GP-UCB argmax.
    config.arm_overrides.insert(
        0,
        FaultRates {
            crash: 1.0,
            ..FaultRates::NONE
        },
    );

    let mut server = EaseMl::new(toy_oracle(), 23);
    server.set_fault_injector(Some(FaultInjector::new(config)));
    let recorder = Arc::new(InMemoryRecorder::new());
    server.set_recorder(RecorderHandle::new(recorder.clone()));
    server.register_user("vision-lab", VISION_PROG).unwrap();
    server.register_user("meteo-lab", METEO_PROG).unwrap();

    for _ in 0..40 {
        // `run_round` retries/censors internally and never panics under
        // injected faults; it always lands one completed run.
        let (_, _, outcome) = server.run_round();
        assert!(outcome.accuracy.is_finite() && outcome.cost.is_finite());
    }

    let snap = server.status_snapshot();
    assert_eq!(snap.completed_runs, 40);
    assert!(snap.failed_runs > 0, "the storm must censor some runs");
    let quarantined: Vec<(usize, Vec<usize>)> = (0..server.num_users())
        .map(|u| (u, server.quarantined_arms(u)))
        .filter(|(_, arms)| !arms.is_empty())
        .collect();
    assert!(
        !quarantined.is_empty(),
        "at least one arm must be quarantined: {snap:?}"
    );

    // Cost accounting stays closed and the recorded trace replays to a
    // consistent Theorem 1 decomposition with nonzero failure counts.
    let charged: f64 = snap.users.iter().map(|u| u.cost).sum();
    assert!((charged - server.elapsed()).abs() <= 1e-9 * (1.0 + charged));
    let events = recorder.events_since(0);
    let faults = easeml_trace::fault_report(&events);
    assert!(
        faults.failed_runs > 0 && faults.quarantines > 0,
        "{faults:?}"
    );
    let regret = easeml_trace::regret_report(&events, &BTreeMap::new());
    assert!(regret.is_consistent(1e-9), "{regret:?}");
}

/// ISSUE acceptance: kill the server at an arbitrary round, restore from
/// the checkpoint, and the remaining decision sequence — users, models,
/// attempts, censoring — is exactly the uninterrupted run's.
#[test]
fn kill_and_restore_reproduces_the_remaining_decisions() {
    let make = || {
        let mut server = EaseMl::new(toy_oracle(), 77);
        server.set_fault_injector(Some(FaultInjector::new(
            FaultConfig::new(5)
                .with_crash_rate(0.20)
                .with_stragglers(0.15, 3.0),
        )));
        server.register_user("vision-lab", VISION_PROG).unwrap();
        server.register_user("meteo-lab", METEO_PROG).unwrap();
        server
    };
    let total = 24usize;

    // The uninterrupted reference trajectory.
    let mut reference = make();
    let all: Vec<RoundOutcome> = (0..total)
        .map(|_| reference.try_run_round().unwrap())
        .collect();

    for kill_at in [1usize, 7, 15] {
        let mut server = make();
        for _ in 0..kill_at {
            server.try_run_round().unwrap();
        }
        let checkpoint = server.checkpoint();
        drop(server); // the "kill"

        let mut restored = EaseMl::restore(&checkpoint, toy_oracle()).expect("checkpoint restores");
        let tail: Vec<RoundOutcome> = (kill_at..total)
            .map(|_| restored.try_run_round().unwrap())
            .collect();
        assert_eq!(
            &all[kill_at..],
            &tail[..],
            "diverged after restore at round {kill_at}"
        );
        assert_eq!(
            restored.elapsed().to_bits(),
            reference.elapsed().to_bits(),
            "clock diverged after restore at round {kill_at}"
        );
    }
}
