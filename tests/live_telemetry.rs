//! End-to-end live telemetry: an [`EaseMl`] server instrumented with the
//! full tee stack (in-memory trace + regret time series + rotating file
//! sink), exported over a real TCP [`TelemetryServer`], asserted through
//! the same HTTP requests a Prometheus scraper or dashboard would make.

use easeml::prelude::*;
use easeml::server::{QualityOracle, TrainingOutcome};
use easeml_obs::{
    Event, InMemoryRecorder, JsonlFileSink, RecorderHandle, StreamingSink, TeeRecorder,
    TimeSeriesRecorder, TRACE_SCHEMA_VERSION,
};
use easeml_obs_http::{TelemetryHub, TelemetryServer};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

const IMAGE_PROG: &str = "{input: {[Tensor[64, 64, 3]], []}, output: {[Tensor[5]], []}}";
const TS_PROG: &str = "{input: {[Tensor[16]], [next]}, output: {[Tensor[3]], []}}";

fn toy_oracle() -> QualityOracle {
    Box::new(|user, model| {
        let info = model.info();
        let base = if user % 2 == 0 { 0.7 } else { 0.5 };
        Ok(TrainingOutcome {
            accuracy: (base + 0.02 * (info.year as f64 - 2010.0)).min(0.99),
            cost: info.relative_cost,
        })
    })
}

fn get(addr: SocketAddr, target: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(stream, "GET {target} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let (head, body) = raw.split_once("\r\n\r\n").unwrap();
    (head.to_string(), body.to_string())
}

#[test]
fn scheduler_run_is_observable_over_http() {
    // --- the instrumented service -----------------------------------
    let primary = Arc::new(InMemoryRecorder::new());
    let series = Arc::new(TimeSeriesRecorder::new());
    let trace_path = std::env::temp_dir().join(format!(
        "easeml-live-telemetry-test-{}.jsonl",
        std::process::id()
    ));
    let file_sink = Arc::new(JsonlFileSink::create(&trace_path).unwrap());
    let tee = Arc::new(
        TeeRecorder::new(primary.clone())
            .with_sink(series.clone() as Arc<dyn StreamingSink>)
            .with_sink(file_sink.clone() as Arc<dyn StreamingSink>),
    );

    let mut service = EaseMl::new(toy_oracle(), 11);
    service.set_recorder(RecorderHandle::new(tee.clone()));
    service.register_user("vision-lab", IMAGE_PROG).unwrap();
    service.register_user("meteo-lab", TS_PROG).unwrap();

    let hub = Arc::new(
        TelemetryHub::new(primary.clone())
            .with_series(series.clone())
            .with_sink_stats("trace", file_sink.clone()),
    );
    let server = TelemetryServer::serve("127.0.0.1:0", hub.clone()).unwrap();
    let addr = server.local_addr();

    for _ in 0..20 {
        service.run_round();
    }
    hub.set_status_json(service.status_json());
    tee.flush();

    // --- /healthz ----------------------------------------------------
    let (head, body) = get(addr, "/healthz");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert_eq!(body, "ok\n");

    // --- /metrics: Prometheus text with regret and latency buckets ---
    let (head, metrics) = get(addr, "/metrics");
    assert!(head.contains("text/plain; version=0.0.4"), "{head}");
    assert!(
        metrics.contains("easeml_user_regret{user=\"0\"}"),
        "{metrics}"
    );
    assert!(
        metrics.contains("easeml_user_regret{user=\"1\"}"),
        "{metrics}"
    );
    // run_round times SimRound and (post-warm-up) SchedulerPick; both must
    // surface as cumulative histogram series closing with +Inf.
    for component in ["sim/round", "sched/pick"] {
        assert!(
            metrics.contains(&format!(
                "easeml_component_latency_ns_bucket{{component=\"{component}\",le=\"+Inf\"}}"
            )),
            "missing +Inf bucket for {component}: {metrics}"
        );
        assert!(
            metrics.contains(&format!(
                "easeml_component_latency_ns_count{{component=\"{component}\"}}"
            )),
            "{metrics}"
        );
    }
    // Cumulative le= buckets are non-decreasing for each component.
    let mut last: Option<(String, u64)> = None;
    for line in metrics.lines().filter(|l| {
        l.starts_with("easeml_component_latency_ns_bucket") && !l.contains("le=\"+Inf\"")
    }) {
        let component = line.split("component=\"").nth(1).unwrap().split('"').next();
        let value: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
        let key = component.unwrap().to_string();
        if let Some((prev_key, prev)) = &last {
            if *prev_key == key {
                assert!(value >= *prev, "buckets not cumulative: {line}");
            }
        }
        last = Some((key, value));
    }
    assert!(metrics.contains("easeml_rounds_total 20"), "{metrics}");
    assert!(
        metrics.contains("easeml_counter_total{name=\"server/rounds\"} 20"),
        "{metrics}"
    );
    // The bounded scale families are always on: regret quantiles per
    // strategy, top-K offenders, and the telemetry's own accounting.
    assert!(
        metrics.contains("easeml_regret_quantile{"),
        "missing bounded regret quantile family: {metrics}"
    );
    assert!(
        metrics.contains("easeml_regret_topk{user=\""),
        "missing top-K offender family: {metrics}"
    );
    assert!(
        metrics.contains("easeml_telemetry_overhead_ns_total{component=\"timeseries/fold\"}"),
        "missing self-overhead family: {metrics}"
    );
    assert!(
        metrics.contains("easeml_telemetry_state_bytes"),
        "{metrics}"
    );
    // The registered file sink reports its write accounting; every event
    // reached disk (lines = seq header excluded, counted at scrape time).
    assert!(
        metrics.contains("easeml_sink_lines_total{sink=\"trace\"}"),
        "missing sink accounting: {metrics}"
    );
    assert!(
        metrics.contains("easeml_sink_dropped_total{sink=\"trace\"} 0"),
        "{metrics}"
    );
    // The exporter accounts for itself from the second scrape on.
    let (_, metrics2) = get(addr, "/metrics");
    assert!(
        metrics2.contains("easeml_telemetry_renders_total 1"),
        "{metrics2}"
    );

    // --- /status: the scheduler snapshot -----------------------------
    let (head, status) = get(addr, "/status");
    assert!(head.contains("application/json"), "{head}");
    assert!(status.contains("\"name\":\"vision-lab\""), "{status}");
    assert!(status.contains("\"status\":\"exploring\""), "{status}");
    assert!(status.contains("\"best_model\":"), "{status}");
    assert!(status.contains("\"elapsed_cost\":"), "{status}");

    // --- /trace?after=N returns exactly the events past the cursor ---
    let total = primary.last_seq();
    let (_, full) = get(addr, "/trace");
    assert_eq!(full.lines().count() as u64, total);
    let after = total - 3;
    let (_, tail) = get(addr, &format!("/trace?after={after}"));
    assert_eq!(tail.lines().count(), 3);
    let expected = primary.events_since(after);
    for (line, expected) in tail.lines().zip(&expected) {
        assert_eq!(&Event::from_json(line).unwrap(), expected);
    }
    let (_, empty) = get(addr, &format!("/trace?after={total}"));
    assert_eq!(empty, "");

    // --- the file sink holds the same seq-tagged stream, prefixed by
    //     the schema-version header ------------------------------------
    let disk = std::fs::read_to_string(&trace_path).unwrap();
    assert_eq!(disk.lines().count() as u64, total + 1);
    let mut disk_lines = disk.lines();
    assert_eq!(disk_lines.next().unwrap(), easeml_obs::schema_header_line());
    let first = disk_lines.next().unwrap();
    assert!(first.starts_with("{\"seq\":1,\"event\":"), "{first}");
    // The on-disk trace round-trips through the offline analyzer with a
    // non-empty Theorem 1 regret decomposition.
    let parsed = easeml_trace::parse_trace(&disk);
    assert_eq!(parsed.schema_version, Some(u64::from(TRACE_SCHEMA_VERSION)));
    assert_eq!(parsed.skipped_lines, 0);
    assert_eq!(parsed.events.len() as u64, total);
    let regret = easeml_trace::regret_report(&parsed.events, &Default::default());
    assert!(regret.rounds > 0 && regret.clock > 0.0);
    assert!(regret.aggregate.total > 0.0, "{regret:?}");
    assert!(regret.is_consistent(1e-9), "{regret:?}");

    // --- the tee's numbering agrees with the in-memory recorder ------
    assert_eq!(tee.last_seq(), primary.last_seq());

    drop(server);
    let _ = std::fs::remove_file(&trace_path);
}
