//! Regression tests pinning the *qualitative shapes* of the paper's
//! figures at reduced repetition counts — the properties EXPERIMENTS.md
//! reports. Each test mirrors one bench target with a smaller budget so the
//! suite stays fast.

use easeml::prelude::*;
use easeml_data::DatasetKind;
use easeml_sched::PickRule;

fn auc(curve: &[f64]) -> f64 {
    curve.iter().sum::<f64>() / curve.len() as f64
}

/// Figure 9's shape: on DEEPLEARNING under a cost budget, ease.ml's average
/// accuracy loss falls clearly faster than the most-cited / most-recent
/// heuristics.
#[test]
fn fig09_easeml_beats_the_user_heuristics() {
    let dataset = DatasetKind::DeepLearning.generate(20_180_801);
    let cfg = ExperimentConfig {
        test_users: 10,
        repetitions: 10,
        budget: Budget::FractionOfCost(0.10),
        grid_points: 51,
        ..ExperimentConfig::default()
    };
    let easeml = run_experiment(&dataset, SchedulerKind::EaseMl, &cfg, 1);
    let cited = run_experiment(&dataset, SchedulerKind::MostCited, &cfg, 1);
    let recent = run_experiment(&dataset, SchedulerKind::MostRecent, &cfg, 1);

    assert!(
        auc(&easeml.mean_curve) < auc(&cited.mean_curve) * 0.85,
        "ease.ml {:.4} vs most-cited {:.4}",
        auc(&easeml.mean_curve),
        auc(&cited.mean_curve)
    );
    assert!(
        auc(&easeml.mean_curve) < auc(&recent.mean_curve) * 0.85,
        "ease.ml {:.4} vs most-recent {:.4}",
        auc(&easeml.mean_curve),
        auc(&recent.mean_curve)
    );
    // The speedup at the level ease.ml reaches early is well above 1x.
    let target = easeml.mean_curve[5]; // 10% of budget
    let s = speedup_factor(
        &easeml.grid_pct,
        &cited.mean_curve,
        &easeml.mean_curve,
        target,
    );
    match s {
        Some(s) => assert!(s > 1.5, "speedup only {s:.2}x"),
        None => { /* most-cited never reaches it — an even stronger win */ }
    }
}

/// Figure 13's shape: cost-awareness matters — disabling it (c ≡ 1 inside
/// GP-UCB) while still paying real costs is clearly worse.
#[test]
fn fig13_cost_awareness_helps() {
    let dataset = DatasetKind::DeepLearning.generate(20_180_801);
    let aware_cfg = ExperimentConfig {
        test_users: 10,
        repetitions: 10,
        budget: Budget::FractionOfCost(0.10),
        grid_points: 21,
        ..ExperimentConfig::default()
    };
    let oblivious_cfg = ExperimentConfig {
        cost_aware_override: Some(false),
        ..aware_cfg.clone()
    };
    let aware = run_experiment(&dataset, SchedulerKind::EaseMl, &aware_cfg, 2);
    let oblivious = run_experiment(&dataset, SchedulerKind::EaseMl, &oblivious_cfg, 2);
    assert!(
        auc(&aware.mean_curve) < auc(&oblivious.mean_curve) * 0.9,
        "aware {:.4} vs oblivious {:.4}",
        auc(&aware.mean_curve),
        auc(&oblivious.mean_curve)
    );
}

/// Figure 14's shape: starving the kernel of training users (10%) hurts;
/// 50% is within reach of 100% (diminishing return).
#[test]
fn fig14_training_size_ordering() {
    let dataset = DatasetKind::DeepLearning.generate(20_180_801);
    let base = ExperimentConfig {
        test_users: 10,
        repetitions: 10,
        budget: Budget::FractionOfCost(0.10),
        grid_points: 21,
        ..ExperimentConfig::default()
    };
    let run_frac = |f: f64| {
        let cfg = ExperimentConfig {
            train_fraction: f,
            ..base.clone()
        };
        auc(&run_experiment(&dataset, SchedulerKind::EaseMl, &cfg, 3).mean_curve)
    };
    let a10 = run_frac(0.10);
    let a50 = run_frac(0.50);
    let a100 = run_frac(1.00);
    assert!(
        a10 > a100,
        "10% train ({a10:.4}) must be worse than 100% ({a100:.4})"
    );
    // Diminishing return: the 50%→100% gap is smaller than the 10%→50% gap.
    assert!(
        (a50 - a100) < (a10 - a50) + 0.01,
        "10%: {a10:.4}, 50%: {a50:.4}, 100%: {a100:.4}"
    );
}

/// Figure 15's shape: GREEDY freezes on 179CLASSIFIER while ROUNDROBIN
/// keeps improving, and HYBRID ends at or near the round-robin level.
#[test]
fn fig15_hybrid_tracks_the_better_strategy_late() {
    let dataset = DatasetKind::Classifier179.generate(20_180_801);
    let cfg = ExperimentConfig {
        test_users: 10,
        repetitions: 4,
        budget: Budget::FractionOfRuns(0.5),
        grid_points: 21,
        ..ExperimentConfig::default()
    };
    let hybrid = run_experiment(&dataset, SchedulerKind::Hybrid, &cfg, 4);
    let greedy = run_experiment(
        &dataset,
        SchedulerKind::Greedy(PickRule::MaxUcbGap),
        &cfg,
        4,
    );
    let rr = run_experiment(&dataset, SchedulerKind::RoundRobin, &cfg, 4);

    let last = cfg.grid_points - 1;
    // Greedy's endgame is worse than round robin's (the crossover).
    assert!(
        rr.mean_curve[last] < greedy.mean_curve[last],
        "rr {:.5} vs greedy {:.5} at 100%",
        rr.mean_curve[last],
        greedy.mean_curve[last]
    );
    // Hybrid is not meaningfully worse than round robin at the end.
    assert!(
        hybrid.mean_curve[last] <= rr.mean_curve[last] * 1.35 + 1e-4,
        "hybrid {:.5} vs rr {:.5} at 100%",
        hybrid.mean_curve[last],
        rr.mean_curve[last]
    );
}

/// Figure 12's shape: stronger model correlation (σ_M: 0.01 → 0.5) improves
/// the schedulers' losses at matched budgets, at both α levels.
#[test]
fn fig12_stronger_correlation_helps() {
    let cfg = ExperimentConfig {
        test_users: 10,
        repetitions: 4,
        budget: Budget::FractionOfRuns(0.5),
        grid_points: 21,
        ..ExperimentConfig::default()
    };
    let loss_at_half = |kind: DatasetKind| {
        let d = kind.generate(20_180_801);
        let r = run_experiment(&d, SchedulerKind::EaseMl, &cfg, 5);
        r.mean_curve[10] // 50% of the budget
    };
    let weak = loss_at_half(DatasetKind::Syn001_10);
    let strong = loss_at_half(DatasetKind::Syn05_10);
    assert!(
        strong <= weak + 1e-3,
        "strong correlation {strong:.4} should not lose to weak {weak:.4}"
    );
}
