//! Crash-point sweep: kill the WAL write path at **every** byte boundary
//! of a serial run (clean and under injected faults) and at a sampled set
//! of boundaries of a multi-device exec run, then recover from the
//! checkpoint + WAL pair and prove the two durability invariants:
//!
//! * **no committed round is ever lost** — recovery lands exactly on the
//!   last round whose commit record fit below the crash byte (or on the
//!   checkpoint, whichever is later), with a bit-identical state digest;
//! * **no uncommitted round is ever resurrected** — a partially written
//!   suffix never leaks into the recovered state, and the recovered
//!   server continued to the end reproduces the uninterrupted reference
//!   trajectory bit for bit.
//!
//! The crash model is [`easeml_wal::CrashPoint`]: the append crossing the
//! offset writes only the bytes below it and every later write silently
//! no-ops, exactly like a process dying mid-`write(2)`. Because the
//! workload is deterministic, the reference run's per-round stream
//! offsets tell the sweep which rounds *must* be recovered at each crash
//! byte.

use easeml::fault::{FaultConfig, FaultInjector};
use easeml::prelude::*;
use easeml_exec::{ExecEngine, Fleet};
use easeml_gp::ArmPrior;
use easeml_obs::RecorderHandle;
use easeml_wal::{sample_offsets, CrashPoint, FsyncPolicy, WalOptions};
use std::path::PathBuf;

const VISION_PROG: &str = "{input: {[Tensor[64, 64, 3]], []}, output: {[Tensor[5]], []}}";
const METEO_PROG: &str = "{input: {[Tensor[16]], [next]}, output: {[Tensor[3]], []}}";

/// Total rounds of the serial sweep workload and the mid-run checkpoint.
const TOTAL: usize = 8;
const CKPT_AT: usize = 3;

fn toy_oracle() -> QualityOracle {
    Box::new(|user, model| {
        let info = model.info();
        let base = if user % 2 == 0 { 0.66 } else { 0.48 };
        Ok(TrainingOutcome {
            accuracy: (base + 0.02 * (info.year as f64 - 2010.0)).min(0.99),
            cost: info.relative_cost,
        })
    })
}

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("easeml-crash-sweep-{}-{tag}", std::process::id()))
}

/// Tiny segments force rotations mid-sweep; `Always` keeps the stream
/// byte-deterministic so the reference offsets transfer to every crash
/// run.
fn wal_options() -> WalOptions {
    WalOptions {
        segment_bytes: 512,
        fsync: FsyncPolicy::Always,
    }
}

fn make_server(faulted: bool) -> EaseMl {
    let mut server = EaseMl::new(toy_oracle(), 77);
    if faulted {
        server.set_fault_injector(Some(FaultInjector::new(
            FaultConfig::new(5)
                .with_crash_rate(0.25)
                .with_stragglers(0.20, 2.5),
        )));
    }
    server.register_user("vision-lab", VISION_PROG).unwrap();
    server.register_user("meteo-lab", METEO_PROG).unwrap();
    server
}

/// The uninterrupted reference run: digest after every round and the
/// global stream offset of every round's commit record.
struct Reference {
    /// `digests[i]` = state digest after `i` rounds, `i` in `0..=TOTAL`.
    digests: Vec<String>,
    /// `offsets[i]` = stream offset right after round `i`'s commit append
    /// (`i` in `1..=TOTAL`); `offsets[0]` is the initial checkpoint mark.
    offsets: Vec<u64>,
    total_bytes: u64,
}

fn reference(faulted: bool) -> Reference {
    let base = scratch(&format!("serial-ref-{faulted}"));
    let _ = std::fs::remove_dir_all(&base);
    let wal_dir = base.join("wal");
    std::fs::create_dir_all(&wal_dir).unwrap();
    let ckpt = base.join("ckpt.json");

    let mut server = make_server(faulted);
    server.set_durability(Durability::open(&wal_dir, wal_options()).unwrap());
    server.checkpoint_to(&ckpt).unwrap();
    let mut digests = vec![server.state_digest()];
    let mut offsets = vec![server.durability().stream_offset()];
    for i in 1..=TOTAL {
        server.try_run_round().unwrap();
        digests.push(server.state_digest());
        offsets.push(server.durability().stream_offset());
        if i == CKPT_AT {
            server.checkpoint_to(&ckpt).unwrap();
        }
    }
    let total_bytes = server.durability().stream_offset();
    let _ = std::fs::remove_dir_all(&base);
    Reference {
        digests,
        offsets,
        total_bytes,
    }
}

/// Runs the serial workload with a crash point armed at byte `k`,
/// stopping (like a dead process) once the writer dies. Returns the
/// scratch base and the rounds covered by the last durable checkpoint
/// file.
fn crash_run(faulted: bool, k: u64, base: &PathBuf) -> usize {
    let _ = std::fs::remove_dir_all(base);
    let wal_dir = base.join("wal");
    std::fs::create_dir_all(&wal_dir).unwrap();
    let ckpt = base.join("ckpt.json");

    let mut server = make_server(faulted);
    let durability = Durability::open(&wal_dir, wal_options()).unwrap();
    durability.set_crash_point(Some(CrashPoint::at_byte(k)));
    server.set_durability(durability);
    // The deployment pattern: checkpoint at startup, so recovery always
    // has a document to anchor on. The file write precedes the WAL mark,
    // so it is durable even when the mark itself is torn.
    server.checkpoint_to(&ckpt).unwrap();
    let mut ckpt_rounds = 0usize;
    for i in 1..=TOTAL {
        if server.durability().is_dead() {
            break;
        }
        server.try_run_round().unwrap();
        if i == CKPT_AT && !server.durability().is_dead() {
            server.checkpoint_to(&ckpt).unwrap();
            ckpt_rounds = CKPT_AT;
        }
    }
    ckpt_rounds
}

fn serial_sweep(faulted: bool) {
    let reference = reference(faulted);
    assert!(reference.total_bytes > 0);
    let base = scratch(&format!("serial-run-{faulted}"));
    for k in 0..=reference.total_bytes {
        let ckpt_rounds = crash_run(faulted, k, &base);
        // Rounds whose commit record fit entirely below the crash byte.
        let committed = (1..=TOTAL).filter(|&i| reference.offsets[i] <= k).count();
        let expected = committed.max(ckpt_rounds);

        let (mut recovered, report) =
            EaseMl::recover(&base.join("ckpt.json"), &base.join("wal"), toy_oracle())
                .unwrap_or_else(|e| panic!("crash at byte {k}: recovery failed: {e}"));
        assert_eq!(
            report.final_rounds, expected as u64,
            "crash at byte {k}: recovered {} round(s), expected {expected} \
             (committed {committed}, checkpoint {ckpt_rounds}); report: {report:?}",
            report.final_rounds
        );
        assert_eq!(
            recovered.state_digest(),
            reference.digests[expected],
            "crash at byte {k}: digest diverged at round {expected}"
        );

        // Continuing the recovered server must reproduce the reference
        // tail bit for bit — nothing uncommitted leaked into its state.
        for _ in expected..TOTAL {
            recovered.try_run_round().unwrap();
        }
        assert_eq!(
            recovered.state_digest(),
            reference.digests[TOTAL],
            "crash at byte {k}: continuation diverged after recovery"
        );
    }
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn serial_sweep_every_byte_clean() {
    serial_sweep(false);
}

#[test]
fn serial_sweep_every_byte_under_fault_injection() {
    serial_sweep(true);
}

/// Satellite invariant: a quarantined arm re-enters probation at the same
/// round whether the state crossed a checkpoint/restore boundary or was
/// rebuilt by WAL replay — the release schedule is state, not an
/// in-memory accident.
#[test]
fn probation_reentry_is_identical_across_restore_and_replay() {
    use easeml::fault::FaultRates;
    use easeml::retry::RetryPolicy;

    const T: usize = 24;
    let make = || {
        let mut config = FaultConfig::new(41)
            .with_crash_rate(0.10)
            .with_stragglers(0.10, 2.0);
        // One brittle arm that always crashes, so quarantine (and then
        // probation re-entry) is guaranteed, not probabilistic.
        config.arm_overrides.insert(
            0,
            FaultRates {
                crash: 1.0,
                ..FaultRates::NONE
            },
        );
        let mut server = EaseMl::new(toy_oracle(), 23);
        server.set_fault_injector(Some(FaultInjector::new(config)));
        server.set_retry_policy(RetryPolicy {
            probation_rounds: 6,
            ..RetryPolicy::default()
        });
        server.register_user("vision-lab", VISION_PROG).unwrap();
        server.register_user("meteo-lab", METEO_PROG).unwrap();
        server
    };
    let masked = |server: &EaseMl| -> Vec<Vec<usize>> {
        (0..server.num_users())
            .map(|u| server.quarantined_arms(u))
            .collect()
    };

    let base = scratch("probation");
    let _ = std::fs::remove_dir_all(&base);
    let wal_dir = base.join("wal");
    std::fs::create_dir_all(&wal_dir).unwrap();
    let ckpt0 = base.join("ckpt0.json");

    // Reference run with a WAL and an initial (round 0) checkpoint, no
    // mid-run barrier: path B below must replay the *whole* history.
    let mut reference = make();
    reference.set_durability(Durability::open(&wal_dir, wal_options()).unwrap());
    reference.checkpoint_to(&ckpt0).unwrap();
    let mut ref_masks: Vec<Vec<Vec<usize>>> = Vec::new();
    let mut mid_snapshot: Option<(usize, String)> = None;
    for i in 1..=T {
        reference.try_run_round().unwrap();
        ref_masks.push(masked(&reference));
        // Snapshot mid-probation: something is masked, release is ahead.
        if mid_snapshot.is_none() && ref_masks.last().unwrap().iter().any(|m| !m.is_empty()) {
            mid_snapshot = Some((i, reference.checkpoint()));
        }
    }
    let (c, snapshot) = mid_snapshot.expect("the brittle arm must get quarantined");
    let release_after_c = (c..T).any(|i| {
        ref_masks[i]
            .iter()
            .zip(&ref_masks[i - 1])
            .any(|(now, before)| before.iter().any(|arm| !now.contains(arm)))
    });
    assert!(
        release_after_c,
        "probation must release inside the horizon: {ref_masks:?}"
    );
    let reference_digest = reference.state_digest();
    drop(reference);

    // Path A: restore the mid-probation checkpoint and continue.
    let mut restored = EaseMl::restore(&snapshot, toy_oracle()).unwrap();
    assert_eq!(masked(&restored), ref_masks[c - 1], "restore changed masks");
    for i in c + 1..=T {
        restored.try_run_round().unwrap();
        assert_eq!(
            masked(&restored),
            ref_masks[i - 1],
            "restore path diverged at round {i}"
        );
    }
    assert_eq!(restored.state_digest(), reference_digest);

    // Path B: rebuild the same T rounds purely by WAL replay from the
    // round-0 checkpoint — quarantine and release fold back identically.
    let (replayed, report) = EaseMl::recover(&ckpt0, &wal_dir, toy_oracle()).unwrap();
    assert_eq!(report.replayed_rounds, T as u64, "{report:?}");
    assert_eq!(replayed.state_digest(), reference_digest);
    assert_eq!(
        masked(&replayed),
        ref_masks[T - 1],
        "replay path ends with different quarantine masks"
    );
    let _ = std::fs::remove_dir_all(&base);
}

// ---------------------------------------------------------------------------
// Exec engine (D > 1): sampled crash offsets, clean and chaos.
// ---------------------------------------------------------------------------

fn exec_workload(chaos: bool) -> (easeml_data::Dataset, Vec<ArmPrior>, SimConfig) {
    let dataset = easeml_data::SynConfig {
        num_users: 4,
        num_models: 3,
        ..easeml_data::SynConfig::paper(0.5, 0.5)
    }
    .generate(1);
    let priors: Vec<ArmPrior> = (0..4).map(|_| ArmPrior::independent(3, 0.05)).collect();
    let mut cfg = SimConfig::new(6.0);
    if chaos {
        cfg.fault = Some(
            FaultConfig::new(99)
                .with_crash_rate(0.25)
                .with_stragglers(0.20, 2.5),
        );
    }
    (dataset, priors, cfg)
}

fn exec_sweep(chaos: bool) {
    const EXEC_CKPT_AT: usize = 5;
    let (dataset, priors, cfg) = exec_workload(chaos);
    let make = || {
        ExecEngine::new(
            &dataset,
            &priors,
            SchedulerKind::EaseMl,
            &cfg,
            Fleet::uniform(3),
            7,
            RecorderHandle::noop(),
        )
    };

    // Reference: digest + commit offset after every completion.
    let base = scratch(&format!("exec-ref-{chaos}"));
    let _ = std::fs::remove_dir_all(&base);
    let wal_dir = base.join("wal");
    std::fs::create_dir_all(&wal_dir).unwrap();
    let ckpt = base.join("ckpt.json");
    let mut engine = make();
    engine.set_durability(Durability::open(&wal_dir, wal_options()).unwrap());
    engine.checkpoint_to(&ckpt).unwrap();
    let mut digests = vec![engine.state_digest()];
    let mut offsets = vec![engine.durability().stream_offset()];
    let mut ticks = 0usize;
    while engine.tick() {
        ticks += 1;
        digests.push(engine.state_digest());
        offsets.push(engine.durability().stream_offset());
        if ticks == EXEC_CKPT_AT {
            engine.checkpoint_to(&ckpt).unwrap();
        }
    }
    let total_bytes = engine.durability().stream_offset();
    let final_digest = engine.state_digest();
    drop(engine);
    let _ = std::fs::remove_dir_all(&base);
    assert!(
        ticks > EXEC_CKPT_AT + 2,
        "workload too small: {ticks} ticks"
    );

    let base = scratch(&format!("exec-run-{chaos}"));
    for k in sample_offsets(0xc0ffee ^ u64::from(chaos), total_bytes, 48) {
        let _ = std::fs::remove_dir_all(&base);
        let wal_dir = base.join("wal");
        std::fs::create_dir_all(&wal_dir).unwrap();
        let ckpt = base.join("ckpt.json");
        let mut engine = make();
        let durability = Durability::open(&wal_dir, wal_options()).unwrap();
        durability.set_crash_point(Some(CrashPoint::at_byte(k)));
        engine.set_durability(durability);
        engine.checkpoint_to(&ckpt).unwrap();
        let mut ckpt_ticks = 0usize;
        let mut t = 0usize;
        while !engine.durability().is_dead() && engine.tick() {
            t += 1;
            if t == EXEC_CKPT_AT && !engine.durability().is_dead() {
                engine.checkpoint_to(&ckpt).unwrap();
                ckpt_ticks = EXEC_CKPT_AT;
            }
        }
        drop(engine);

        let committed = (1..=ticks).filter(|&i| offsets[i] <= k).count();
        let expected = committed.max(ckpt_ticks);
        let doc = std::fs::read_to_string(&ckpt).unwrap();
        let ck = easeml_exec::ExecCheckpoint::from_json(&doc)
            .unwrap_or_else(|e| panic!("crash at byte {k}: checkpoint unreadable: {e}"));
        let (mut recovered, report) = easeml_exec::recover_engine(&dataset, &priors, &ck, &wal_dir)
            .unwrap_or_else(|e| panic!("crash at byte {k}: exec recovery failed: {e}"));
        assert_eq!(
            report.final_rounds, expected as u64,
            "crash at byte {k}: recovered {} completion(s), expected {expected}; {report:?}",
            report.final_rounds
        );
        assert_eq!(
            recovered.state_digest(),
            digests[expected],
            "crash at byte {k}: exec digest diverged at completion {expected}"
        );
        while recovered.tick() {}
        assert_eq!(
            recovered.state_digest(),
            final_digest,
            "crash at byte {k}: exec continuation diverged after recovery"
        );
    }
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn exec_sweep_sampled_bytes_clean() {
    exec_sweep(false);
}

#[test]
fn exec_sweep_sampled_bytes_under_chaos() {
    exec_sweep(true);
}
