//! Offline vendored stand-in for `criterion`.
//!
//! Provides the `criterion_group!` / `criterion_main!` / `bench_function`
//! surface this workspace uses, backed by a plain wall-clock loop instead
//! of criterion's statistical machinery: each benchmark is warmed up,
//! auto-calibrated to a sensible iteration count, then timed, and the
//! mean/min per-iteration times are printed. Positional CLI arguments act
//! as substring filters on benchmark names; `--bench`/`--test` harness
//! flags from cargo are accepted and ignored.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::hint::black_box;
use std::time::{Duration, Instant};

/// How batched inputs are grouped. Only the variants used in-tree exist,
/// and the shim times one input per measurement regardless.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup cost; inputs are created one at a time.
    SmallInput,
    /// Larger setup cost; treated the same as `SmallInput` here.
    LargeInput,
}

/// Target wall-clock time for the measurement loop of one benchmark.
const MEASURE_TARGET: Duration = Duration::from_millis(300);
/// Target wall-clock time for warm-up/calibration.
const WARMUP_TARGET: Duration = Duration::from_millis(100);

/// The benchmark registry/driver handed to `criterion_group!` functions.
#[derive(Debug, Default)]
pub struct Criterion {
    filters: Vec<String>,
}

impl Criterion {
    /// Applies CLI arguments: positional arguments become name filters;
    /// cargo's harness flags are ignored.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--bench" | "--test" | "--exact" | "--nocapture" | "--quiet" => {}
                "--save-baseline" | "--baseline" | "--measurement-time" | "--warm-up-time"
                | "--sample-size" => {
                    let _ = args.next(); // flag value, irrelevant here
                }
                other if other.starts_with('-') => {}
                filter => self.filters.push(filter.to_string()),
            }
        }
        self
    }

    /// Runs `f` as a named benchmark unless it is filtered out.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        if !self.filters.is_empty() && !self.filters.iter().any(|p| name.contains(p)) {
            return self;
        }
        let mut bencher = Bencher {
            report: Report::default(),
        };
        f(&mut bencher);
        let r = &bencher.report;
        println!(
            "{name:<44} {:>12}/iter  (min {:>12}, {} iters)",
            format_ns(r.mean_ns),
            format_ns(r.min_ns),
            r.iters
        );
        self
    }

    /// Prints a trailing newline; kept for call-compatibility with
    /// criterion's summary step in `criterion_main!`.
    pub fn final_summary(&mut self) {
        println!();
    }
}

#[derive(Debug, Default, Clone, Copy)]
struct Report {
    mean_ns: f64,
    min_ns: f64,
    iters: u64,
}

/// Times closures for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    report: Report,
}

impl Bencher {
    /// Times `routine`, called back-to-back in a calibrated loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: find an iteration count that fills the warm-up target.
        let mut n: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= WARMUP_TARGET || n >= 1 << 30 {
                let per_iter = elapsed.as_nanos().max(1) as f64 / n as f64;
                let total =
                    ((MEASURE_TARGET.as_nanos() as f64 / per_iter) as u64).clamp(n, 1 << 32);
                self.measure_iters(total, &mut routine);
                return;
            }
            n = n.saturating_mul(4);
        }
    }

    fn measure_iters<O, R: FnMut() -> O>(&mut self, total: u64, routine: &mut R) {
        // Split the budget into batches so `min` reflects a best batch, not
        // a single (possibly timer-resolution-limited) call.
        let batches = 10u64;
        let per_batch = (total / batches).max(1);
        let mut sum_ns = 0f64;
        let mut min_ns = f64::INFINITY;
        let mut iters = 0u64;
        for _ in 0..batches {
            let start = Instant::now();
            for _ in 0..per_batch {
                black_box(routine());
            }
            let ns = start.elapsed().as_nanos() as f64 / per_batch as f64;
            sum_ns += ns * per_batch as f64;
            min_ns = min_ns.min(ns);
            iters += per_batch;
        }
        self.report = Report {
            mean_ns: sum_ns / iters as f64,
            min_ns,
            iters,
        };
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Calibrate on timed sections only.
        let mut n: u64 = 1;
        let per_iter = loop {
            let mut timed = Duration::ZERO;
            for _ in 0..n {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                timed += start.elapsed();
            }
            if timed >= WARMUP_TARGET || n >= 1 << 24 {
                break timed.as_nanos().max(1) as f64 / n as f64;
            }
            n = n.saturating_mul(4);
        };
        let total = ((MEASURE_TARGET.as_nanos() as f64 / per_iter) as u64).clamp(n, 1 << 28);
        let mut sum_ns = 0f64;
        let mut min_ns = f64::INFINITY;
        for _ in 0..total {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            let ns = start.elapsed().as_nanos() as f64;
            sum_ns += ns;
            min_ns = min_ns.min(ns);
        }
        self.report = Report {
            mean_ns: sum_ns / total as f64,
            min_ns,
            iters: total,
        };
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Bundles benchmark functions into a single group function, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut ran = 0u64;
        c.bench_function("shim/self_test", |b| {
            b.iter(|| {
                ran += 1;
                std::hint::black_box(ran)
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut c = Criterion::default();
        c.bench_function("shim/batched", |b| {
            b.iter_batched(
                || vec![1u64; 8],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
    }

    #[test]
    fn filters_skip_non_matching() {
        let mut c = Criterion {
            filters: vec!["only_this".into()],
        };
        let mut ran = false;
        c.bench_function("something_else", |b| {
            ran = true;
            b.iter(|| 1u8)
        });
        assert!(!ran);
    }

    #[test]
    fn format_ns_units() {
        assert_eq!(format_ns(12.0), "12.0 ns");
        assert_eq!(format_ns(12_000.0), "12.00 µs");
        assert_eq!(format_ns(12_000_000.0), "12.00 ms");
    }
}
