//! Offline vendored stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API —
//! `lock()`, `read()`, and `write()` return guards directly. A poisoned
//! std lock (a panic while held) is treated as still-valid data, exactly
//! like parking_lot, which has no poisoning at all.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt;
use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion primitive (no poisoning).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// A reader-writer lock (no poisoning).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            Err(_) => f.write_str("RwLock { <locked> }"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn mutex_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot has no poisoning: the data is still reachable.
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
