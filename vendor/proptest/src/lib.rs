//! Offline vendored stand-in for `proptest`.
//!
//! Random-sampling property testing with the `proptest!` surface this
//! workspace uses: range/`Just`/tuple strategies, `prop_map` /
//! `prop_flat_map`, `prop::collection::vec`, `prop::option::of`,
//! `prop::sample::select`, regex-string strategies, `prop_assert*!` and
//! `prop_assume!`. Differences from upstream: cases are sampled from a
//! deterministic per-test seed (derived from the test path, so runs are
//! reproducible), and failing inputs are **not shrunk** — the panic reports
//! the case number instead.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;

mod regex;
mod strategy;

pub use strategy::{FlatMap, Just, Map, OptionStrategy, Select, Strategy, VecStrategy};

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` and is not counted.
    Reject(String),
    /// A `prop_assert*!` failed.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Result type of one property-test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Drives the accepted-case loop for one `proptest!` test.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    name: &'static str,
    rng: TestRng,
}

impl TestRunner {
    /// Creates a runner with a seed derived deterministically from `name`.
    pub fn new(config: ProptestConfig, name: &'static str) -> Self {
        // FNV-1a over the test path: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRunner {
            config,
            name,
            rng: TestRng::seed_from_u64(h),
        }
    }

    /// Runs `case` until `config.cases` cases are accepted.
    ///
    /// # Panics
    ///
    /// Panics on the first failing case, or when rejections
    /// (`prop_assume!`) exceed a generous multiple of the case budget.
    pub fn run(&mut self, mut case: impl FnMut(&mut TestRng) -> TestCaseResult) {
        let max_rejects = self.config.cases as u64 * 64 + 256;
        let mut rejects = 0u64;
        let mut accepted = 0u32;
        while accepted < self.config.cases {
            match case(&mut self.rng) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejects += 1;
                    assert!(
                        rejects <= max_rejects,
                        "{}: too many prop_assume! rejections ({rejects}) — \
                         strategy rarely satisfies the assumption",
                        self.name
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "{}: property failed at accepted case #{accepted}: {msg}",
                        self.name
                    );
                }
            }
        }
    }
}

/// Namespaced strategy constructors, mirroring upstream's `prop::` paths.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::{SizeRange, Strategy, VecStrategy};

        /// A `Vec` whose length is drawn from `size` and whose elements are
        /// drawn from `element`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy::new(element, size.into())
        }
    }

    /// Option strategies.
    pub mod option {
        use crate::strategy::{OptionStrategy, Strategy};

        /// `None` about a quarter of the time, `Some(inner)` otherwise.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy::new(inner)
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use crate::strategy::Select;

        /// Uniformly selects one of the given values.
        ///
        /// # Panics
        ///
        /// Panics (on first use) if `values` is empty.
        pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
            Select::new(values)
        }
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

/// Declares property tests. See the crate docs for supported shapes.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut runner = $crate::TestRunner::new(
                    config,
                    concat!(module_path!(), "::", stringify!($name)),
                );
                runner.run(|__rng| {
                    $(
                        let $pat = {
                            let __strategy = $strat;
                            $crate::Strategy::generate(&__strategy, __rng)
                        };
                    )+
                    $body
                    Ok(())
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l,
                    r
                );
            }
        }
    };
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l != *r,
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l
                );
            }
        }
    };
}

/// Rejects the current case (not counted) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds((a, b, c) in (0usize..5, -1.0f64..1.0, 10u64..20)) {
            prop_assert!(a < 5);
            prop_assert!((-1.0..1.0).contains(&b));
            prop_assert!((10..20).contains(&c));
        }

        #[test]
        fn vec_respects_size_range(v in prop::collection::vec(0usize..3, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 3));
        }

        #[test]
        fn flat_map_threads_values((n, v) in (1usize..5).prop_flat_map(|n| {
            (Just(n), prop::collection::vec(0.0f64..1.0, n))
        })) {
            prop_assert_eq!(v.len(), n);
        }

        #[test]
        fn map_transforms(x in (0usize..10).prop_map(|x| x * 2)) {
            prop_assert_eq!(x % 2, 0);
            prop_assert!(x < 20);
        }

        #[test]
        fn regex_strings_match_shape(s in "[a-z][a-z0-9_]{0,8}") {
            prop_assert!(!s.is_empty() && s.len() <= 9);
            let mut chars = s.chars();
            prop_assert!(chars.next().unwrap().is_ascii_lowercase());
            prop_assert!(chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }

        #[test]
        fn select_picks_members(k in prop::sample::select(vec![2usize, 3, 5, 7])) {
            prop_assert!([2, 3, 5, 7].contains(&k));
        }

        #[test]
        fn option_of_produces_both(o in prop::option::of(0usize..10)) {
            if let Some(x) = o {
                prop_assert!(x < 10);
            }
        }

        #[test]
        fn assume_rejects_without_failing(x in 0usize..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn runner_is_deterministic() {
        use crate::Strategy;
        let collect = || {
            let mut runner = crate::TestRunner::new(ProptestConfig::with_cases(10), "det");
            let mut seen = Vec::new();
            runner.run(|rng| {
                seen.push((0usize..1000).generate(rng));
                Ok(())
            });
            seen
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_panic_with_context() {
        let mut runner = crate::TestRunner::new(ProptestConfig::with_cases(5), "fail");
        runner.run(|_| Err(TestCaseError::fail("boom")));
    }
}
