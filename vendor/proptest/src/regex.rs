//! A tiny regex *generator*: turns a pattern into random matching strings.
//!
//! Supports the subset of regex syntax used as string strategies in this
//! workspace: literal characters, `\`-escaped metacharacters, `.` (any
//! printable ASCII), character classes `[...]` with ranges and escapes, and
//! the quantifiers `{m}`, `{m,n}`, `*`, `+`, `?`. Unbounded quantifiers are
//! capped at 8 repetitions. Unsupported syntax (alternation, groups,
//! anchors) panics with the offending pattern so the test author notices.

use crate::TestRng;
use rand::Rng;

/// One generatable unit of the pattern.
#[derive(Debug, Clone)]
enum Atom {
    /// A fixed character.
    Literal(char),
    /// Any printable ASCII character (what `.` means here).
    Any,
    /// One of an explicit set of characters (expanded from `[...]`).
    Class(Vec<char>),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize, // inclusive
}

/// Generates a random string matching `pattern`.
pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let pieces = parse(pattern);
    let mut out = String::new();
    for piece in &pieces {
        let reps = if piece.min == piece.max {
            piece.min
        } else {
            rng.gen_range(piece.min..piece.max + 1)
        };
        for _ in 0..reps {
            out.push(sample_atom(&piece.atom, rng));
        }
    }
    out
}

fn sample_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Literal(c) => *c,
        // Printable ASCII: 0x20 (space) through 0x7e (~).
        Atom::Any => char::from(rng.gen_range(0x20u32..0x7f) as u8),
        Atom::Class(chars) => chars[rng.gen_range(0..chars.len())],
    }
}

/// Cap for `*` and `+`, mirroring proptest's small default string sizes.
const UNBOUNDED_CAP: usize = 8;

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '.' => {
                i += 1;
                Atom::Any
            }
            '\\' => {
                i += 1;
                let c = *chars
                    .get(i)
                    .unwrap_or_else(|| panic!("dangling escape in regex {pattern:?}"));
                i += 1;
                Atom::Literal(unescape(c, pattern))
            }
            '[' => {
                let (class, next) = parse_class(&chars, i + 1, pattern);
                i = next;
                Atom::Class(class)
            }
            '(' | ')' | '|' | '^' | '$' | '*' | '+' | '?' => {
                panic!(
                    "unsupported regex syntax {:?} in pattern {pattern:?}",
                    chars[i]
                )
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        let (min, max, next) = parse_quantifier(&chars, i, pattern);
        i = next;
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn unescape(c: char, pattern: &str) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '{' | '}' | '[' | ']' | '(' | ')' | '.' | '*' | '+' | '?' | '|' | '^' | '$' | '\\'
        | '-' | ',' | ':' | '/' | ' ' => c,
        other => panic!("unsupported escape \\{other} in regex {pattern:?}"),
    }
}

/// Parses the body of a `[...]` class, starting just past the `[`.
/// Returns the expanded character set and the index past the closing `]`.
fn parse_class(chars: &[char], mut i: usize, pattern: &str) -> (Vec<char>, usize) {
    let mut set = Vec::new();
    while i < chars.len() && chars[i] != ']' {
        let lo = if chars[i] == '\\' {
            i += 1;
            let c = *chars
                .get(i)
                .unwrap_or_else(|| panic!("dangling escape in class in regex {pattern:?}"));
            i += 1;
            unescape(c, pattern)
        } else {
            let c = chars[i];
            i += 1;
            c
        };
        // A `-` between two class members denotes a range; a leading or
        // trailing `-` is a literal.
        if i + 1 < chars.len() && chars[i] == '-' && chars[i + 1] != ']' {
            let hi = if chars[i + 1] == '\\' {
                i += 2;
                let c = *chars
                    .get(i)
                    .unwrap_or_else(|| panic!("dangling escape in class in regex {pattern:?}"));
                i += 1;
                unescape(c, pattern)
            } else {
                let c = chars[i + 1];
                i += 2;
                c
            };
            assert!(lo <= hi, "inverted range {lo}-{hi} in regex {pattern:?}");
            for v in lo as u32..=hi as u32 {
                set.push(char::from_u32(v).unwrap());
            }
        } else {
            set.push(lo);
        }
    }
    assert!(
        i < chars.len(),
        "unterminated character class in regex {pattern:?}"
    );
    assert!(
        !set.is_empty(),
        "empty character class in regex {pattern:?}"
    );
    (set, i + 1) // skip the `]`
}

/// Parses an optional quantifier at `i`. Returns (min, max, next index).
fn parse_quantifier(chars: &[char], i: usize, pattern: &str) -> (usize, usize, usize) {
    match chars.get(i) {
        Some('*') => (0, UNBOUNDED_CAP, i + 1),
        Some('+') => (1, UNBOUNDED_CAP, i + 1),
        Some('?') => (0, 1, i + 1),
        Some('{') => {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unterminated {{...}} in regex {pattern:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            let (min, max) = match body.split_once(',') {
                None => {
                    let n = body
                        .trim()
                        .parse()
                        .unwrap_or_else(|_| panic!("bad repeat count in regex {pattern:?}"));
                    (n, n)
                }
                Some((lo, hi)) => {
                    let lo: usize = lo
                        .trim()
                        .parse()
                        .unwrap_or_else(|_| panic!("bad repeat bound in regex {pattern:?}"));
                    let hi: usize = if hi.trim().is_empty() {
                        lo.max(UNBOUNDED_CAP)
                    } else {
                        hi.trim()
                            .parse()
                            .unwrap_or_else(|_| panic!("bad repeat bound in regex {pattern:?}"))
                    };
                    assert!(lo <= hi, "inverted repeat {{{body}}} in regex {pattern:?}");
                    (lo, hi)
                }
            };
            (min, max, close + 1)
        }
        _ => (1, 1, i),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> TestRng {
        TestRng::seed_from_u64(7)
    }

    #[test]
    fn dot_quantified() {
        let mut r = rng();
        for _ in 0..50 {
            let s = generate_matching(".{0,120}", &mut r);
            assert!(s.len() <= 120);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn escaped_class_star() {
        let mut r = rng();
        for _ in 0..50 {
            let s = generate_matching(r"[\{\}\[\]:, a-z0-9]*", &mut r);
            assert!(s.len() <= UNBOUNDED_CAP);
            assert!(s.chars().all(|c| {
                "{}[]:, ".contains(c) || c.is_ascii_lowercase() || c.is_ascii_digit()
            }));
        }
    }

    #[test]
    fn identifier_shape() {
        let mut r = rng();
        let mut seen_multi = false;
        for _ in 0..100 {
            let s = generate_matching("[a-z][a-z0-9_]{0,8}", &mut r);
            assert!((1..=9).contains(&s.len()));
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            seen_multi |= s.len() > 1;
        }
        assert!(seen_multi);
    }

    #[test]
    fn literals_and_exact_repeats() {
        let mut r = rng();
        assert_eq!(generate_matching("abc", &mut r), "abc");
        assert_eq!(generate_matching("a{3}", &mut r), "aaa");
    }
}
