//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::TestRng;
use rand::Rng;
use std::ops::Range;

/// A recipe for generating random values of one type.
///
/// Unlike upstream proptest there is no shrinking tree: a strategy is just
/// a sampler. All combinator names match upstream so test files compile
/// unchanged.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Applies `f` to every generated value.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Uses every generated value to build a follow-up strategy and draws
    /// from that.
    fn prop_flat_map<U: Strategy, F: Fn(Self::Value) -> U>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { source: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, U: Strategy, F: Fn(S::Value) -> U> Strategy for FlatMap<S, F> {
    type Value = U::Value;

    fn generate(&self, rng: &mut TestRng) -> U::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(usize, u8, u16, u32, u64, isize, i8, i16, i32, i64, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
}

/// Collection length specification: a fixed size or a half-open range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// See [`crate::prop::collection::vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> VecStrategy<S> {
    pub(crate) fn new(element: S, size: SizeRange) -> Self {
        VecStrategy { element, size }
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..self.size.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// See [`crate::prop::option::of`].
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> OptionStrategy<S> {
    pub(crate) fn new(inner: S) -> Self {
        OptionStrategy { inner }
    }
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.gen_range(0..4usize) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

/// See [`crate::prop::sample::select`].
#[derive(Debug, Clone)]
pub struct Select<T: Clone> {
    values: Vec<T>,
}

impl<T: Clone> Select<T> {
    pub(crate) fn new(values: Vec<T>) -> Self {
        Select { values }
    }
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.values.is_empty(), "select over an empty list");
        self.values[rng.gen_range(0..self.values.len())].clone()
    }
}

/// Regex-shaped string strategy: `&'static str` patterns generate matching
/// strings, as in upstream proptest.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::regex::generate_matching(self, rng)
    }
}
