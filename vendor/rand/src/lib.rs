//! Offline vendored stand-in for the `rand` crate.
//!
//! This workspace builds in network-less containers, so instead of the
//! crates.io `rand` it vendors the small API subset it actually uses:
//! [`RngCore`], the [`Rng`] extension trait (`gen`, `gen_range`, `gen_bool`),
//! [`SeedableRng`], [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64),
//! [`rngs::mock::StepRng`], and [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! The streams are deterministic for a given seed but are **not** the same
//! streams as the upstream crate; tests in this workspace assert statistical
//! properties, never exact draws.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// The core source of randomness: 32/64-bit draws and byte filling.
///
/// Object safe: schedulers take `&mut dyn RngCore`.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that [`Rng::gen`] can produce from uniform bits.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn draw(rng: &mut (impl RngCore + ?Sized)) -> Self;
}

impl Standard for f64 {
    fn draw(rng: &mut (impl RngCore + ?Sized)) -> Self {
        // 53 uniform bits in [0, 1), the conventional mapping.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw(rng: &mut (impl RngCore + ?Sized)) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn draw(rng: &mut (impl RngCore + ?Sized)) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw(rng: &mut (impl RngCore + ?Sized)) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn draw(rng: &mut (impl RngCore + ?Sized)) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from(self, rng: &mut (impl RngCore + ?Sized)) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from(self, rng: &mut (impl RngCore + ?Sized)) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Multiply-shift bounded sampling; the bias over a u64 draw
                // is < 2^-64, far below anything these simulations resolve.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as $t;
                self.start + hi
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from(self, rng: &mut (impl RngCore + ?Sized)) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                (lo..hi + 1).sample_from(rng)
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8);

macro_rules! impl_signed_range {
    ($($t:ty : $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from(self, rng: &mut (impl RngCore + ?Sized)) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
    )*};
}

impl_signed_range!(i64: u64, i32: u32, i16: u16, i8: u8, isize: usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from(self, rng: &mut (impl RngCore + ?Sized)) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u = f64::draw(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_from(self, rng: &mut (impl RngCore + ?Sized)) -> f32 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u = f32::draw(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics on empty ranges.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Rngs constructible from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ (Blackman & Vigna).
    ///
    /// Statistically strong, tiny, and fully deterministic per seed. Not
    /// stream-compatible with the upstream crate's `StdRng` (ChaCha12) —
    /// this workspace never relies on exact draws.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }

        /// The raw xoshiro256++ state, for exact checkpoint/restore of a
        /// generator mid-stream.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state captured by [`StdRng::state`],
        /// continuing the exact same stream. An all-zero state (a xoshiro
        /// fixed point, never produced by a live generator) is nudged the
        /// same way [`SeedableRng::from_seed`] nudges it.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0; 4] {
                let mut seed = <Self as super::SeedableRng>::Seed::default();
                seed.as_mut().fill(0);
                return <Self as super::SeedableRng>::from_seed(seed);
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }

        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            StdRng { s }
        }
    }

    /// Deterministic mock generators for tests.
    pub mod mock {
        use super::super::RngCore;

        /// A "generator" that returns `initial`, `initial + increment`, …
        /// — used where an RNG argument is required but never meaningfully
        /// consumed.
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct StepRng {
            v: u64,
            increment: u64,
        }

        impl StepRng {
            /// Creates the mock with the given start and step.
            pub fn new(initial: u64, increment: u64) -> Self {
                StepRng {
                    v: initial,
                    increment,
                }
            }
        }

        impl RngCore for StepRng {
            fn next_u64(&mut self) -> u64 {
                let out = self.v;
                self.v = self.v.wrapping_add(self.increment);
                out
            }

            fn next_u32(&mut self) -> u32 {
                self.next_u64() as u32
            }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::mock::StepRng;
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn unit_interval_draws_stay_in_bounds_and_spread() {
        let mut r = StdRng::seed_from_u64(7);
        let draws: Vec<f64> = (0..10_000).map(|_| r.gen::<f64>()).collect();
        assert!(draws.iter().all(|&x| (0.0..1.0).contains(&x)));
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_covers_every_bucket() {
        let mut r = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[r.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let x = r.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = StdRng::seed_from_u64(3);
        let _ = r.gen_range(5..5usize);
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "a 50-element shuffle virtually never is identity"
        );
    }

    #[test]
    fn choose_stays_in_slice() {
        let mut r = StdRng::seed_from_u64(4);
        let v = [10, 20, 30];
        for _ in 0..20 {
            assert!(v.contains(v.choose(&mut r).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }

    #[test]
    fn state_round_trip_continues_the_exact_stream() {
        let mut a = StdRng::seed_from_u64(11);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // The zero state is nudged, not accepted verbatim.
        let mut z = StdRng::from_state([0; 4]);
        assert_ne!(z.state(), [0; 4]);
        let _ = z.next_u64();
    }

    #[test]
    fn step_rng_steps() {
        let mut r = StepRng::new(0, 1);
        assert_eq!(r.next_u64(), 0);
        assert_eq!(r.next_u64(), 1);
        assert_eq!(r.next_u64(), 2);
    }

    #[test]
    fn dyn_rng_core_works_through_references() {
        let mut r = StdRng::seed_from_u64(5);
        let dynr: &mut dyn RngCore = &mut r;
        let x = dynr.gen_range(0..100usize);
        assert!(x < 100);
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut r = StdRng::seed_from_u64(6);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
    }
}
