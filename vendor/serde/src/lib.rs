//! Offline vendored stand-in for `serde`.
//!
//! Provides the serialization half of serde's data model — the subset this
//! workspace uses: [`Serialize`] over primitives, strings, options,
//! sequences, maps, tuples, structs, and enum (unit / struct) variants,
//! driven by a [`Serializer`] trait with the upstream method names so that
//! both the vendored derive macro and hand-written impls read like ordinary
//! serde code. Concrete serializers (e.g. the JSON-Lines writer) live in
//! the crates that need them.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

#[cfg(feature = "derive")]
pub use serde_derive::Serialize;

pub mod ser;

pub use ser::{Serialize, Serializer};
