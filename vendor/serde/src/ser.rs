//! The serialization half of the data model.

use std::collections::{BTreeMap, HashMap};
use std::fmt::Display;

/// Errors producible by a [`Serializer`].
pub trait Error: Sized + std::fmt::Debug + Display {
    /// Builds an error from an arbitrary message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A data structure that can be serialized into any serde data format.
pub trait Serialize {
    /// Serializes `self` into the given serializer.
    ///
    /// # Errors
    ///
    /// Propagates whatever the serializer reports.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A data format that can serialize the serde data model.
pub trait Serializer: Sized {
    /// Value produced on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Sequence sub-serializer.
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    /// Map sub-serializer.
    type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;
    /// Struct sub-serializer.
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Struct-variant sub-serializer.
    type SerializeStructVariant: SerializeStructVariant<Ok = Self::Ok, Error = Self::Error>;

    /// Serializes a `bool`.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    /// Serializes a signed integer.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    /// Serializes an unsigned integer.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a floating-point number.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a string.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    /// Serializes a unit value.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes `Option::None`.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes `Option::Some(value)`.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error>;
    /// Begins serializing a variably sized sequence.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    /// Begins serializing a map.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
    /// Begins serializing a struct with a statically known shape.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
    /// Serializes a unit enum variant (e.g. `E::A`).
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn serialize_unit_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error>;
    /// Begins serializing a struct enum variant (e.g. `E::S { .. }`).
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn serialize_struct_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStructVariant, Self::Error>;
}

/// Sequence serialization, returned by [`Serializer::serialize_seq`].
pub trait SerializeSeq {
    /// Value produced on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serializes one element.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the sequence.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Map serialization, returned by [`Serializer::serialize_map`].
pub trait SerializeMap {
    /// Value produced on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serializes one `key: value` entry.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn serialize_entry<K: Serialize + ?Sized, V: Serialize + ?Sized>(
        &mut self,
        key: &K,
        value: &V,
    ) -> Result<(), Self::Error>;
    /// Finishes the map.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Struct serialization, returned by [`Serializer::serialize_struct`].
pub trait SerializeStruct {
    /// Value produced on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serializes one named field.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Finishes the struct.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Struct-variant serialization, returned by
/// [`Serializer::serialize_struct_variant`].
pub trait SerializeStructVariant {
    /// Value produced on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serializes one named field.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Finishes the variant.
    ///
    /// # Errors
    ///
    /// Format-defined.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

// ---------------------------------------------------------------------------
// Serialize impls for the std types the workspace serializes.
// ---------------------------------------------------------------------------

macro_rules! impl_serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_i64(*self as i64)
            }
        }
    )*};
}

macro_rules! impl_serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_u64(*self as u64)
            }
        }
    )*};
}

impl_serialize_signed!(i8, i16, i32, i64, isize);
impl_serialize_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bool(*self)
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self)
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(f64::from(*self))
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for char {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut buf = [0u8; 4];
        serializer.serialize_str(self.encode_utf8(&mut buf))
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}

fn serialize_slice<T: Serialize, S: Serializer>(
    slice: &[T],
    serializer: S,
) -> Result<S::Ok, S::Error> {
    let mut seq = serializer.serialize_seq(Some(slice.len()))?;
    for item in slice {
        seq.serialize_element(item)?;
    }
    seq.end()
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_slice(self, serializer)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_slice(self, serializer)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_slice(self, serializer)
    }
}

macro_rules! impl_serialize_tuple {
    ($($len:literal => ($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let mut seq = serializer.serialize_seq(Some($len))?;
                $(seq.serialize_element(&self.$idx)?;)+
                seq.end()
            }
        }
    )*};
}

impl_serialize_tuple! {
    1 => (A: 0)
    2 => (A: 0, B: 1)
    3 => (A: 0, B: 1, C: 2)
    4 => (A: 0, B: 1, C: 2, D: 3)
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_entry(k, v)?;
        }
        map.end()
    }
}

impl<K: Serialize, V: Serialize, H> Serialize for HashMap<K, V, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_entry(k, v)?;
        }
        map.end()
    }
}
