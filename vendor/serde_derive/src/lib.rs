//! Offline vendored stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` for the shapes this workspace
//! actually derives: non-generic structs with named fields, and non-generic
//! enums whose variants are unit or struct-like. The token stream is parsed
//! by hand (`syn`/`quote` are unavailable offline); anything outside the
//! supported shape produces a clear `compile_error!`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match generate(input) {
        Ok(code) => code.parse().expect("derive emitted invalid Rust"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

enum Shape {
    Struct { fields: Vec<String> },
    Enum { variants: Vec<Variant> },
}

struct Variant {
    name: String,
    /// `None` for unit variants, field names for struct variants.
    fields: Option<Vec<String>>,
}

fn generate(input: TokenStream) -> Result<String, String> {
    let (name, shape) = parse_item(input)?;
    let body = match &shape {
        Shape::Struct { fields } => {
            let mut b = String::new();
            b.push_str("use ::serde::ser::SerializeStruct as _;\n");
            b.push_str(&format!(
                "let mut st = serializer.serialize_struct({name:?}, {})?;\n",
                fields.len()
            ));
            for f in fields {
                b.push_str(&format!("st.serialize_field({f:?}, &self.{f})?;\n"));
            }
            b.push_str("st.end()");
            b
        }
        Shape::Enum { variants } => {
            let mut arms = String::new();
            for (idx, v) in variants.iter().enumerate() {
                let vname = &v.name;
                match &v.fields {
                    None => arms.push_str(&format!(
                        "{name}::{vname} => serializer.serialize_unit_variant({name:?}, {idx}u32, {vname:?}),\n"
                    )),
                    Some(fields) => {
                        let pat = fields.join(", ");
                        let mut arm = format!("{name}::{vname} {{ {pat} }} => {{\n");
                        arm.push_str("use ::serde::ser::SerializeStructVariant as _;\n");
                        arm.push_str(&format!(
                            "let mut sv = serializer.serialize_struct_variant({name:?}, {idx}u32, {vname:?}, {})?;\n",
                            fields.len()
                        ));
                        for f in fields {
                            arm.push_str(&format!("sv.serialize_field({f:?}, {f})?;\n"));
                        }
                        arm.push_str("sv.end()\n}\n");
                        arms.push_str(&arm);
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    Ok(format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
           fn serialize<S: ::serde::Serializer>(&self, serializer: S)\n\
             -> ::core::result::Result<S::Ok, S::Error> {{\n\
             {body}\n\
           }}\n\
         }}"
    ))
}

fn parse_item(input: TokenStream) -> Result<(String, Shape), String> {
    let mut iter = input.into_iter().peekable();
    skip_attrs_and_vis(&mut iter);
    let kind = match iter.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "the vendored serde derive does not support generic types ({name})"
            ));
        }
    }
    // The next (and for our shapes, only remaining) group is the body.
    let body = loop {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                return Err(format!("unit struct {name} has nothing to serialize"))
            }
            Some(_) => continue, // e.g. a `where`-less trailing token
            None => return Err(format!("missing body for {name}")),
        }
    };
    match kind.as_str() {
        "struct" => Ok((
            name,
            Shape::Struct {
                fields: parse_named_fields(body)?,
            },
        )),
        "enum" => Ok((
            name,
            Shape::Enum {
                variants: parse_variants(body)?,
            },
        )),
        other => Err(format!("cannot derive Serialize for `{other}` items")),
    }
}

/// Skips leading `#[...]` attributes (incl. doc comments) and visibility.
fn skip_attrs_and_vis(iter: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                iter.next(); // the [...] group
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next(); // pub(crate) etc.
                    }
                }
            }
            _ => return,
        }
    }
}

/// Splits a brace-group body on commas that sit outside nested `<...>`.
fn split_top_level(body: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle_depth = 0i32;
    for tt in body {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                out.push(std::mem::take(&mut cur));
                continue;
            }
            _ => {}
        }
        cur.push(tt);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// `name: Type` pairs → field names (attributes and visibility skipped).
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    for item in split_top_level(body) {
        let mut iter = item.into_iter().peekable();
        skip_attrs_and_vis(&mut iter);
        match iter.next() {
            Some(TokenTree::Ident(i)) => fields.push(i.to_string()),
            Some(other) => return Err(format!("unsupported field shape at {other:?}")),
            None => continue,
        }
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                return Err(format!(
                    "only named fields are supported (expected `:`, found {other:?})"
                ))
            }
        }
    }
    Ok(fields)
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    for item in split_top_level(body) {
        let mut iter = item.into_iter().peekable();
        skip_attrs_and_vis(&mut iter);
        let name = match iter.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            Some(other) => return Err(format!("unsupported variant shape at {other:?}")),
            None => continue,
        };
        let fields = match iter.next() {
            None => None,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Some(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!(
                    "tuple variant {name} is not supported by the vendored serde derive; \
                     use a struct variant"
                ))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                return Err(format!(
                    "explicit discriminant on {name} is not supported by the vendored serde derive"
                ))
            }
            Some(other) => {
                return Err(format!("unsupported token after variant {name}: {other:?}"))
            }
        };
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}
